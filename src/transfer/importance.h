#ifndef AUTOTUNE_TRANSFER_IMPORTANCE_H_
#define AUTOTUNE_TRANSFER_IMPORTANCE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/observation.h"
#include "space/config_space.h"

namespace autotune {
namespace transfer {

/// A knob with its importance score (higher = more influential).
struct KnobImportance {
  std::string name;
  double score = 0.0;
};

/// How importances are estimated.
enum class ImportanceMethod {
  /// OtterTune-style Lasso path: knobs entering the regularization path
  /// earlier matter more (tutorial slide 68).
  kLasso,
  /// Random-forest impurity-decrease importances.
  kRandomForest,
};

/// Ranks knobs by their influence on the observed objective, from tuning
/// history. Needs >= ~2x as many successful observations as knobs to be
/// meaningful. Failed observations are skipped.
[[nodiscard]] Result<std::vector<KnobImportance>> RankKnobImportance(
    const ConfigSpace& space, const std::vector<Observation>& history,
    ImportanceMethod method);

/// A reduced search space keeping only `keep` knobs of `target`, all other
/// knobs pinned at `base` (usually the default or the incumbent). "Focus
/// on the important knobs" (slide 68) made concrete: tune the top-k, freeze
/// the rest.
class SubsetSpace {
 public:
  /// Fails if any name in `keep` is unknown.
  [[nodiscard]] static Result<std::unique_ptr<SubsetSpace>> Create(
      const ConfigSpace* target, const std::vector<std::string>& keep,
      Configuration base);

  /// The reduced space (one parameter per kept knob, same domains).
  const ConfigSpace& low_space() const { return *low_space_; }

  /// Expands a reduced-space configuration to the full target space.
  [[nodiscard]] Result<Configuration> Lift(const Configuration& low_config) const;

 private:
  SubsetSpace(const ConfigSpace* target, Configuration base);

  const ConfigSpace* target_;
  Configuration base_;
  std::vector<std::string> keep_;
  std::unique_ptr<ConfigSpace> low_space_;
};

}  // namespace transfer
}  // namespace autotune

#endif  // AUTOTUNE_TRANSFER_IMPORTANCE_H_
