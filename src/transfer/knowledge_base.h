#ifndef AUTOTUNE_TRANSFER_KNOWLEDGE_BASE_H_
#define AUTOTUNE_TRANSFER_KNOWLEDGE_BASE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/observation.h"
#include "core/optimizer.h"
#include "math/matrix.h"

namespace autotune {
namespace transfer {

/// A recorded tuning session: where it ran (workload embedding) and what
/// was learned (the trial history). The repository behind knowledge
/// transfer (tutorial slide 67) and config reuse (slide 92).
struct TuningSession {
  std::string workload_label;
  Vector workload_embedding;       ///< May be empty if unknown.
  std::vector<Observation> trials; ///< Configs must outlive via the space.
};

/// Warm-start policy knobs, mirroring slide 67's sample taxonomy:
/// good samples -> reuse from similar workloads; bad (crashed) samples ->
/// reuse everywhere ("if it crashes the system, it probably always does");
/// poor samples -> keep exploring (not replayed).
struct WarmStartPolicy {
  /// Replay this many of the session's best trials.
  int good_samples = 10;

  /// Replay crashed trials with an imputed score derived from the worst
  /// good objective (see `ImputedBadObjective`) so the optimizer avoids
  /// the crash region without believing an exact value.
  bool replay_bad_samples = true;
  double bad_penalty = 3.0;

  /// Skip mid-quality trials (they may be good in the new context).
  double poor_quantile = 0.5;  ///< Trials worse than this quantile are
                               ///< "poor" and not replayed.
};

/// Imputed objective for a replayed crashed trial: `penalty_factor` worse
/// than the session's worst good objective. Sign-safe like
/// `TrialRunner`'s crash imputation: `worst + (factor - 1) * |worst|` is
/// strictly worse (higher, in the loop's minimize convention) even when
/// objectives are negative — a plain multiply would make crashes look
/// BETTER on maximize (negated-objective) environments.
double ImputedBadObjective(double worst_good, double penalty_factor);

/// Stores tuning sessions and serves warm starts for new contexts.
class KnowledgeBase {
 public:
  void AddSession(TuningSession session);

  size_t num_sessions() const { return sessions_.size(); }
  const TuningSession& session(size_t i) const;

  /// Index of the session whose workload embedding is nearest to `query`;
  /// NotFound when the base is empty or no session has an embedding.
  [[nodiscard]] Result<size_t> NearestSession(const Vector& query) const;

  /// Replays the chosen session's history into `optimizer` per `policy`
  /// (the configurations must belong to the optimizer's space). Returns
  /// the number of observations replayed.
  [[nodiscard]] Result<int> WarmStart(size_t session_index, const WarmStartPolicy& policy,
                        Optimizer* optimizer) const;

 private:
  std::vector<TuningSession> sessions_;
};

}  // namespace transfer
}  // namespace autotune

#endif  // AUTOTUNE_TRANSFER_KNOWLEDGE_BASE_H_
