#include "transfer/importance.h"

#include <algorithm>

#include "common/check.h"
#include "math/linear_model.h"
#include "space/encoding.h"
#include "surrogate/random_forest.h"

namespace autotune {
namespace transfer {

Result<std::vector<KnobImportance>> RankKnobImportance(
    const ConfigSpace& space, const std::vector<Observation>& history,
    ImportanceMethod method) {
  SpaceEncoder encoder(&space, SpaceEncoder::CategoricalMode::kOrdinal);
  std::vector<Vector> xs;
  Vector ys;
  for (const Observation& obs : history) {
    if (obs.failed) continue;
    AUTOTUNE_ASSIGN_OR_RETURN(Vector x, encoder.Encode(obs.config));
    xs.push_back(std::move(x));
    ys.push_back(obs.objective);
  }
  if (xs.size() < 3) {
    return Status::FailedPrecondition(
        "need >= 3 successful observations to rank knobs");
  }

  std::vector<KnobImportance> ranking;
  ranking.reserve(space.size());
  switch (method) {
    case ImportanceMethod::kLasso: {
      AUTOTUNE_ASSIGN_OR_RETURN(std::vector<size_t> order,
                                LassoImportanceOrder(xs, ys));
      // Score by entry order: first entrant gets the top score.
      for (size_t rank = 0; rank < order.size(); ++rank) {
        KnobImportance k;
        k.name = space.param(order[rank]).name();
        k.score = static_cast<double>(order.size() - rank) /
                  static_cast<double>(order.size());
        ranking.push_back(std::move(k));
      }
      break;
    }
    case ImportanceMethod::kRandomForest: {
      // One-shot batch analysis: the forest is fitted once on the full
      // history and discarded, so `Fit` (not `Observe`) is the right call.
      RandomForestSurrogate forest;
      AUTOTUNE_RETURN_IF_ERROR(forest.Fit(xs, ys));
      Vector importances = forest.FeatureImportances();
      std::vector<size_t> order(importances.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&importances](size_t a, size_t b) {
                  return importances[a] > importances[b];
                });
      for (size_t index : order) {
        KnobImportance k;
        k.name = space.param(index).name();
        k.score = importances[index];
        ranking.push_back(std::move(k));
      }
      break;
    }
  }
  return ranking;
}

SubsetSpace::SubsetSpace(const ConfigSpace* target, Configuration base)
    : target_(target),
      base_(std::move(base)),
      low_space_(std::make_unique<ConfigSpace>()) {}

Result<std::unique_ptr<SubsetSpace>> SubsetSpace::Create(
    const ConfigSpace* target, const std::vector<std::string>& keep,
    Configuration base) {
  if (target == nullptr) return Status::InvalidArgument("null target");
  if (keep.empty()) return Status::InvalidArgument("keep set is empty");
  if (&base.space() != target) {
    return Status::InvalidArgument("base config from a different space");
  }
  std::unique_ptr<SubsetSpace> subset(
      new SubsetSpace(target, std::move(base)));
  for (const std::string& name : keep) {
    AUTOTUNE_ASSIGN_OR_RETURN(size_t index, target->Index(name));
    ParameterSpec spec = target->param(index);
    // Conditions reference parents that may not be in the subset; the
    // lifted configuration re-establishes them, so strip conditions here.
    if (spec.is_conditional()) {
      ParameterSpec stripped = spec;  // Copy keeps domain/defaults.
      // Rebuild without the condition by re-creating from the original
      // fields: simplest is to keep it and rely on Add()'s parent check —
      // instead, only allow unconditional knobs in subsets.
      return Status::InvalidArgument(
          "conditional knob '" + name +
          "' cannot be tuned in a subset space; include its parent "
          "instead");
    }
    AUTOTUNE_RETURN_IF_ERROR(subset->low_space_->Add(std::move(spec)));
    subset->keep_.push_back(name);
  }
  return subset;
}

Result<Configuration> SubsetSpace::Lift(
    const Configuration& low_config) const {
  if (&low_config.space() != low_space_.get()) {
    return Status::InvalidArgument("config not from this subset space");
  }
  std::vector<std::pair<std::string, ParamValue>> values;
  // Start from the base assignment...
  for (size_t i = 0; i < target_->size(); ++i) {
    values.emplace_back(target_->param(i).name(), base_.ValueAt(i));
  }
  // ...then overlay the tuned knobs.
  for (size_t i = 0; i < keep_.size(); ++i) {
    for (auto& [name, value] : values) {
      if (name == keep_[i]) {
        value = low_config.ValueAt(i);
        break;
      }
    }
  }
  return target_->Make(values);
}

}  // namespace transfer
}  // namespace autotune
