#include "transfer/knowledge_base.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "math/stats.h"

namespace autotune {
namespace transfer {

void KnowledgeBase::AddSession(TuningSession session) {
  sessions_.push_back(std::move(session));
}

const TuningSession& KnowledgeBase::session(size_t i) const {
  AUTOTUNE_CHECK(i < sessions_.size());
  return sessions_[i];
}

double ImputedBadObjective(double worst_good, double penalty_factor) {
  return worst_good + (penalty_factor - 1.0) * std::abs(worst_good);
}

Result<size_t> KnowledgeBase::NearestSession(const Vector& query) const {
  double best_distance = std::numeric_limits<double>::infinity();
  size_t best = 0;
  bool found = false;
  for (size_t i = 0; i < sessions_.size(); ++i) {
    const Vector& embedding = sessions_[i].workload_embedding;
    if (embedding.size() != query.size() || embedding.empty()) continue;
    const double d = std::sqrt(SquaredDistance(query, embedding));
    // Strict < keeps the LOWEST session index on equal distances, so the
    // warm-start donor is deterministic across runs and resumes.
    if (d < best_distance) {
      best_distance = d;
      best = i;
      found = true;
    }
  }
  if (!found) return Status::NotFound("no session with a matching embedding");
  return best;
}

Result<int> KnowledgeBase::WarmStart(size_t session_index,
                                     const WarmStartPolicy& policy,
                                     Optimizer* optimizer) const {
  if (session_index >= sessions_.size()) {
    return Status::OutOfRange("no session " + std::to_string(session_index));
  }
  AUTOTUNE_CHECK(optimizer != nullptr);
  const TuningSession& session = sessions_[session_index];

  // Partition successful trials by quality.
  std::vector<const Observation*> good;
  std::vector<const Observation*> bad;
  std::vector<double> objectives;
  for (const Observation& obs : session.trials) {
    if (obs.failed) {
      bad.push_back(&obs);
    } else {
      objectives.push_back(obs.objective);
    }
  }
  if (!objectives.empty()) {
    const double poor_cut = Quantile(objectives, policy.poor_quantile);
    for (const Observation& obs : session.trials) {
      if (!obs.failed && obs.objective <= poor_cut) good.push_back(&obs);
    }
    std::sort(good.begin(), good.end(),
              [](const Observation* a, const Observation* b) {
                return a->objective < b->objective;
              });
    if (good.size() > static_cast<size_t>(policy.good_samples)) {
      good.resize(static_cast<size_t>(policy.good_samples));
    }
  }

  int replayed = 0;
  for (const Observation* obs : good) {
    Observation replay = *obs;
    AUTOTUNE_RETURN_IF_ERROR(optimizer->Observe(replay));
    ++replayed;
  }
  if (policy.replay_bad_samples && !bad.empty()) {
    const double worst_good =
        objectives.empty() ? 1e6 : Max(objectives);
    for (const Observation* obs : bad) {
      Observation replay = *obs;
      replay.objective =
          ImputedBadObjective(worst_good, policy.bad_penalty);
      replay.failed = true;
      AUTOTUNE_RETURN_IF_ERROR(optimizer->Observe(replay));
      ++replayed;
    }
  }
  return replayed;
}

}  // namespace transfer
}  // namespace autotune
