#ifndef AUTOTUNE_ENV_WORKLOAD_H_
#define AUTOTUNE_ENV_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace autotune {
namespace workload {

/// A synthetic workload descriptor — the "workload" leg of the tutorial's
/// context triple (slide 8: execution environment x workload x metrics).
/// The fields are the latent characteristics the simulators' performance
/// models respond to; the named factories approximate the standard
/// benchmarks the tutorial lists (YCSB, TPC-C, TPC-H).
struct Workload {
  std::string name;

  /// Fraction of read operations (rest are writes).
  double read_ratio = 0.5;

  /// Fraction of operations that are large scans (vs point accesses).
  double scan_ratio = 0.0;

  /// Hot working-set size the buffer pool competes for.
  double working_set_mb = 1024.0;

  /// Total data size (scans touch this).
  double data_size_mb = 10240.0;

  /// Offered load, operations (or transactions) per second.
  double arrival_rate = 2000.0;

  /// Zipfian access skew (0 = uniform; ~1 = heavily skewed).
  double skew = 0.8;

  /// Mean concurrent client sessions.
  double clients = 32.0;

  /// Fraction of operations inside multi-statement transactions.
  double transactional = 0.0;
};

/// YCSB-A: 50/50 read/update, zipfian point accesses.
Workload YcsbA();
/// YCSB-B: 95/5 read/update.
Workload YcsbB();
/// YCSB-C: read-only point lookups.
Workload YcsbC();
/// TPC-C-like: write-heavy transactional OLTP.
Workload TpcC();
/// TPC-H-like: read-only analytical scans.
Workload TpcH();
/// Web-app-like mixed load.
Workload WebApp();

/// All the predefined workload families.
std::vector<Workload> StandardWorkloads();

/// A perturbed copy of `base`: each characteristic jittered by up to
/// `relative_spread` (multiplicative), modeling "customer workloads similar
/// to but not exactly a benchmark" (slide 88). Deterministic given `rng`.
Workload PerturbWorkload(const Workload& base, double relative_spread,
                         Rng* rng);

/// Linear interpolation between two workloads (drift/shift modeling):
/// t = 0 -> a, t = 1 -> b.
Workload BlendWorkloads(const Workload& a, const Workload& b, double t);

}  // namespace workload
}  // namespace autotune

#endif  // AUTOTUNE_ENV_WORKLOAD_H_
