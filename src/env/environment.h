#ifndef AUTOTUNE_ENV_ENVIRONMENT_H_
#define AUTOTUNE_ENV_ENVIRONMENT_H_

#include <map>
#include <string>

#include "common/rng.h"
#include "space/config_space.h"

namespace autotune {

/// When a knob change takes effect (tutorial slide 19: "Autotuning in
/// practice — how to deploy?").
enum class KnobScope {
  kRuntime,    ///< Adjustable online (ALTER SYSTEM ... SET).
  kRestart,    ///< Needs a service restart (e.g. shared_buffers).
  kProvision,  ///< Needs re-provisioning (e.g. filesystem block size).
};

/// Raw result of one benchmark execution.
struct BenchmarkResult {
  /// Metric name -> value, e.g. {"latency_p99_ms": 1.9, "throughput_ops":
  /// 52000, "cost_usd": 0.12}. Empty if `crashed` or `hung`.
  std::map<std::string, double> metrics;

  /// The system failed to start or died under this configuration.
  bool crashed = false;

  /// The run never completed: the system wedged (deadlock, livelock, a VM
  /// that stopped responding — tutorial slides 26-31) and the execution
  /// harness had to kill it at its deadline. Distinct from `crashed` so the
  /// trial runner can charge the configured timeout rather than the crash
  /// cost, and so retry policies can treat hangs and crashes differently.
  bool hung = false;
};

/// The target system + workload + benchmark, as one black box (tutorial
/// slide 26's "system-specific scripts" box). Implementations live in
/// `src/sim` (simulated DBMS / Redis / Spark) but the interface is what a
/// real deployment would implement with ssh scripts and a load generator.
/// Decorators (e.g. `fault::FaultInjectingEnvironment`) wrap one
/// `Environment` in another; this header is the dependency-light interface
/// layer both sides build against.
class Environment {
 public:
  virtual ~Environment() = default;

  /// Human-readable name, e.g. "simdb-tpcc".
  virtual std::string name() const = 0;

  /// The tunable-parameter space this environment exposes.
  virtual const ConfigSpace& space() const = 0;

  /// Executes the benchmark under `config` at the given `fidelity` in
  /// (0, 1] (1 = full benchmark; lower = cheaper, noisier, possibly
  /// shifted — tutorial slide 66's multi-fidelity caveats). Randomness
  /// (noise, arrival jitter) is drawn from `rng` so trials are reproducible
  /// and duet runs can share noise.
  virtual BenchmarkResult Run(const Configuration& config, double fidelity,
                              Rng* rng) = 0;

  /// Name of the metric being optimized, which must appear in
  /// `BenchmarkResult::metrics` of successful runs.
  virtual std::string objective_metric() const = 0;

  /// True if the objective is minimized (latency); false to maximize
  /// (throughput).
  virtual bool minimize() const { return true; }

  /// Simulated execution cost (seconds) of one run at `fidelity`.
  virtual double RunCost(double fidelity) const { return fidelity * 60.0; }

  /// Deployment scope of a knob (default: runtime-adjustable).
  virtual KnobScope knob_scope(const std::string& /*name*/) const {
    return KnobScope::kRuntime;
  }

  /// Extra cost (seconds) incurred when a new configuration changes any
  /// restart-scoped knob (lost caches, downtime — tutorial slide 19).
  virtual double RestartCost() const { return 0.0; }
};

}  // namespace autotune

#endif  // AUTOTUNE_ENV_ENVIRONMENT_H_
