#include "env/env_observer.h"

namespace autotune {
namespace env {

namespace {

std::atomic<EnvObserver*>& GlobalObserver() {
  static std::atomic<EnvObserver*> observer{nullptr};
  return observer;
}

}  // namespace

void SetEnvObserver(EnvObserver* observer) {
  GlobalObserver().store(observer, std::memory_order_release);
}

EnvObserver* GetEnvObserver() {
  return GlobalObserver().load(std::memory_order_acquire);
}

void EnvCount(const char* name, double delta) {
  EnvObserver* observer = GetEnvObserver();
  if (observer != nullptr) observer->IncrementCounter(name, delta);
}

}  // namespace env
}  // namespace autotune
