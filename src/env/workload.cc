#include "env/workload.h"

#include <algorithm>

#include "common/check.h"

namespace autotune {
namespace workload {

Workload YcsbA() {
  Workload w;
  w.name = "ycsb-a";
  w.read_ratio = 0.5;
  w.scan_ratio = 0.0;
  w.working_set_mb = 2048.0;
  w.data_size_mb = 10240.0;
  w.arrival_rate = 4000.0;
  w.skew = 0.99;
  w.clients = 64.0;
  w.transactional = 0.0;
  return w;
}

Workload YcsbB() {
  Workload w = YcsbA();
  w.name = "ycsb-b";
  w.read_ratio = 0.95;
  return w;
}

Workload YcsbC() {
  Workload w = YcsbA();
  w.name = "ycsb-c";
  w.read_ratio = 1.0;
  return w;
}

Workload TpcC() {
  Workload w;
  w.name = "tpcc";
  w.read_ratio = 0.35;
  w.scan_ratio = 0.04;
  w.working_set_mb = 4096.0;
  w.data_size_mb = 20480.0;
  w.arrival_rate = 1500.0;
  w.skew = 0.6;
  w.clients = 96.0;
  w.transactional = 0.9;
  return w;
}

Workload TpcH() {
  Workload w;
  w.name = "tpch";
  w.read_ratio = 1.0;
  w.scan_ratio = 0.85;
  w.working_set_mb = 8192.0;
  w.data_size_mb = 102400.0;
  w.arrival_rate = 8.0;
  w.skew = 0.1;
  w.clients = 4.0;
  w.transactional = 0.0;
  return w;
}

Workload WebApp() {
  Workload w;
  w.name = "webapp";
  w.read_ratio = 0.85;
  w.scan_ratio = 0.1;
  w.working_set_mb = 1024.0;
  w.data_size_mb = 4096.0;
  w.arrival_rate = 2500.0;
  w.skew = 0.9;
  w.clients = 48.0;
  w.transactional = 0.3;
  return w;
}

std::vector<Workload> StandardWorkloads() {
  return {YcsbA(), YcsbB(), YcsbC(), TpcC(), TpcH(), WebApp()};
}

Workload PerturbWorkload(const Workload& base, double relative_spread,
                         Rng* rng) {
  AUTOTUNE_CHECK(rng != nullptr);
  AUTOTUNE_CHECK(relative_spread >= 0.0 && relative_spread < 1.0);
  auto jitter = [&](double value) {
    return value * (1.0 + rng->Uniform(-relative_spread, relative_spread));
  };
  Workload w = base;
  w.name = base.name + "*";
  w.read_ratio = std::clamp(jitter(base.read_ratio), 0.0, 1.0);
  w.scan_ratio = std::clamp(jitter(base.scan_ratio), 0.0, 1.0);
  w.working_set_mb = std::max(64.0, jitter(base.working_set_mb));
  w.data_size_mb = std::max(w.working_set_mb, jitter(base.data_size_mb));
  w.arrival_rate = std::max(1.0, jitter(base.arrival_rate));
  w.skew = std::clamp(jitter(base.skew), 0.0, 1.5);
  w.clients = std::max(1.0, jitter(base.clients));
  w.transactional = std::clamp(jitter(base.transactional), 0.0, 1.0);
  return w;
}

Workload BlendWorkloads(const Workload& a, const Workload& b, double t) {
  t = std::clamp(t, 0.0, 1.0);
  auto mix = [t](double x, double y) { return x + t * (y - x); };
  Workload w;
  w.name = a.name + "->" + b.name;
  w.read_ratio = mix(a.read_ratio, b.read_ratio);
  w.scan_ratio = mix(a.scan_ratio, b.scan_ratio);
  w.working_set_mb = mix(a.working_set_mb, b.working_set_mb);
  w.data_size_mb = mix(a.data_size_mb, b.data_size_mb);
  w.arrival_rate = mix(a.arrival_rate, b.arrival_rate);
  w.skew = mix(a.skew, b.skew);
  w.clients = mix(a.clients, b.clients);
  w.transactional = mix(a.transactional, b.transactional);
  return w;
}

}  // namespace workload
}  // namespace autotune
