#ifndef AUTOTUNE_ENV_ENV_OBSERVER_H_
#define AUTOTUNE_ENV_ENV_OBSERVER_H_

#include <atomic>

namespace autotune {
namespace env {

/// Narrow observability sink for environment implementations. Simulators
/// live below the observability layer in the module graph, so they cannot
/// (and should not) talk to `obs::Span` / `obs::MetricsRegistry` directly;
/// instead they emit through this interface, and the obs layer installs a
/// bridge (`obs::InstallEnvObserver`) that forwards spans to the trace
/// buffer and counters to the metrics registry. With no observer installed
/// every call is a no-op, so environments stay usable in minimal binaries.
///
/// Implementations must be thread-safe: environments run concurrently on
/// the worker pool. They must not introduce ambient nondeterminism into the
/// environment itself (timing happens behind the interface, in the obs
/// layer).
class EnvObserver {
 public:
  virtual ~EnvObserver() = default;

  /// Begins a named span. The returned opaque token is handed back to
  /// `EndSpan` exactly once. `name` must outlive the span (string
  /// literals).
  virtual void* BeginSpan(const char* name) = 0;
  virtual void EndSpan(void* token) = 0;

  /// Adds `delta` to a named counter.
  virtual void IncrementCounter(const char* name, double delta) = 0;
};

/// Installs the process-global observer (nullptr to uninstall). The
/// observer must outlive every environment run that may emit through it.
void SetEnvObserver(EnvObserver* observer);
EnvObserver* GetEnvObserver();

/// RAII span through the installed observer; no-op when none is installed.
/// The observer is captured at construction so an install/uninstall racing
/// with a live span still pairs Begin/End on the same observer.
class EnvSpanScope {
 public:
  explicit EnvSpanScope(const char* name) : observer_(GetEnvObserver()) {
    if (observer_ != nullptr) token_ = observer_->BeginSpan(name);
  }
  ~EnvSpanScope() {
    if (observer_ != nullptr) observer_->EndSpan(token_);
  }

  EnvSpanScope(const EnvSpanScope&) = delete;
  EnvSpanScope& operator=(const EnvSpanScope&) = delete;

 private:
  EnvObserver* observer_;
  void* token_ = nullptr;
};

/// Counter increment through the installed observer; no-op when none.
void EnvCount(const char* name, double delta = 1.0);

}  // namespace env
}  // namespace autotune

#endif  // AUTOTUNE_ENV_ENV_OBSERVER_H_
