#ifndef AUTOTUNE_REPORT_BENCH_COMPARE_H_
#define AUTOTUNE_REPORT_BENCH_COMPARE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace autotune {
namespace report {

using obs::Json;

/// Bench-regression gate: diffs a freshly produced `BENCH_<id>.json`
/// (the MetricsRegistry snapshot bench binaries write when
/// AUTOTUNE_BENCH_JSON_DIR is set) against a checked-in baseline from
/// `bench/baselines/`, and flags regressions. Counters are expected to be
/// near-deterministic (same seeds, same trial counts); histogram means are
/// wall-clock and get a generous tolerance plus an absolute noise floor so
/// CI machine jitter does not flap the gate.

struct BenchCompareOptions {
  /// Max relative drift for counters before they are flagged
  /// (|current - baseline| / max(|baseline|, 1)).
  double counter_tolerance = 0.10;
  /// Max relative increase for histogram means before they are flagged
  /// ((current - baseline) / baseline). Only slowdowns are regressions;
  /// speedups are reported but never fail the gate.
  double latency_tolerance = 1.00;
  /// Histogram means below this (seconds) are never flagged — the signal
  /// is smaller than scheduler noise.
  double latency_floor_s = 50e-6;
};

/// One compared metric.
struct BenchDelta {
  std::string kind;  ///< "counter" | "gauge" | "histogram_mean".
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  /// Signed relative change; for counters relative to max(|baseline|, 1).
  double relative = 0.0;
  bool regressed = false;
  bool missing = false;  ///< Present in baseline, absent in current run.
};

struct BenchComparison {
  std::string baseline_path;
  std::string current_path;
  std::vector<BenchDelta> deltas;
  int64_t regressions = 0;

  [[nodiscard]] bool ok() const { return regressions == 0; }
};

/// Compares two already-parsed metrics snapshots.
[[nodiscard]] BenchComparison CompareBenchSnapshots(
    const Json& baseline, const Json& current,
    const BenchCompareOptions& options = {});

/// Reads both files and compares them.
[[nodiscard]] Result<BenchComparison> CompareBenchFiles(
    const std::string& baseline_path, const std::string& current_path,
    const BenchCompareOptions& options = {});

/// Human-readable diff table; regressions are marked.
std::string RenderComparisonText(const BenchComparison& comparison);

/// Machine-readable diff ({"baseline", "current", "regressions", "deltas"}).
Json ComparisonToJson(const BenchComparison& comparison);

}  // namespace report
}  // namespace autotune

#endif  // AUTOTUNE_REPORT_BENCH_COMPARE_H_
