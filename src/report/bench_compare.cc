#include "report/bench_compare.h"

#include <algorithm>
#include <cmath>

#include "common/table.h"
#include "obs/journal.h"

namespace autotune {
namespace report {

namespace {

Result<Json> ReadJsonFile(const std::string& path) {
  AUTOTUNE_ASSIGN_OR_RETURN(std::string text, obs::ReadJournalText(path));
  auto parsed = Json::Parse(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument("'" + path +
                                   "': " + parsed.status().message());
  }
  return *parsed;
}

/// Walks the members of `section` ("counters"/"gauges") in both snapshots;
/// baseline drives the iteration so removed metrics surface as `missing`.
void CompareScalarSection(const Json& baseline, const Json& current,
                          const std::string& section, const char* kind,
                          double tolerance, bool gate,
                          BenchComparison* out) {
  auto base_section = baseline.Get(section);
  if (!base_section.ok() || !base_section->is_object()) return;
  auto cur_section = current.Get(section);
  for (const auto& [name, base_value] : base_section->AsObject()) {
    BenchDelta delta;
    delta.kind = kind;
    delta.name = name;
    delta.baseline = base_value.AsDouble();
    auto cur_value = cur_section.ok() ? cur_section->Get(name)
                                      : Result<Json>(cur_section.status());
    if (!cur_value.ok()) {
      delta.missing = true;
      delta.regressed = gate;
    } else {
      delta.current = cur_value->AsDouble();
      const double denom = std::max(std::fabs(delta.baseline), 1.0);
      delta.relative = (delta.current - delta.baseline) / denom;
      delta.regressed = gate && std::fabs(delta.relative) > tolerance;
    }
    if (delta.regressed) ++out->regressions;
    out->deltas.push_back(std::move(delta));
  }
}

void CompareHistogramMeans(const Json& baseline, const Json& current,
                           const BenchCompareOptions& options,
                           BenchComparison* out) {
  auto base_section = baseline.Get("histograms");
  if (!base_section.ok() || !base_section->is_object()) return;
  auto cur_section = current.Get("histograms");
  for (const auto& [name, base_hist] : base_section->AsObject()) {
    BenchDelta delta;
    delta.kind = "histogram_mean";
    delta.name = name;
    delta.baseline = base_hist.GetDouble("mean", 0.0);
    auto cur_hist = cur_section.ok() ? cur_section->Get(name)
                                     : Result<Json>(cur_section.status());
    if (!cur_hist.ok()) {
      delta.missing = true;
      delta.regressed = true;
    } else {
      delta.current = cur_hist->GetDouble("mean", 0.0);
      if (delta.baseline > 0.0) {
        delta.relative = (delta.current - delta.baseline) / delta.baseline;
      }
      // Only slowdowns gate, and only above the noise floor: a mean that
      // went from 2us to 6us is 3x "worse" but still pure scheduler noise.
      delta.regressed = delta.relative > options.latency_tolerance &&
                        delta.current > options.latency_floor_s &&
                        delta.baseline > 0.0;
    }
    if (delta.regressed) ++out->regressions;
    out->deltas.push_back(std::move(delta));
  }
}

}  // namespace

BenchComparison CompareBenchSnapshots(const Json& baseline,
                                      const Json& current,
                                      const BenchCompareOptions& options) {
  BenchComparison out;
  CompareScalarSection(baseline, current, "counters", "counter",
                       options.counter_tolerance, /*gate=*/true, &out);
  // Gauges (final objectives, incumbents) are workload outcomes, not
  // performance: report the drift but never fail the gate on it.
  CompareScalarSection(baseline, current, "gauges", "gauge",
                       /*tolerance=*/0.0, /*gate=*/false, &out);
  CompareHistogramMeans(baseline, current, options, &out);
  return out;
}

Result<BenchComparison> CompareBenchFiles(const std::string& baseline_path,
                                          const std::string& current_path,
                                          const BenchCompareOptions& options) {
  AUTOTUNE_ASSIGN_OR_RETURN(Json baseline, ReadJsonFile(baseline_path));
  AUTOTUNE_ASSIGN_OR_RETURN(Json current, ReadJsonFile(current_path));
  BenchComparison comparison =
      CompareBenchSnapshots(baseline, current, options);
  comparison.baseline_path = baseline_path;
  comparison.current_path = current_path;
  return comparison;
}

std::string RenderComparisonText(const BenchComparison& comparison) {
  std::string out = "bench compare: " + comparison.current_path + " vs " +
                    comparison.baseline_path + "\n";
  Table table({"kind", "metric", "baseline", "current", "delta", "verdict"});
  for (const BenchDelta& delta : comparison.deltas) {
    // Unchanged scalars are noise in a terminal; show changes, histograms,
    // and anything regressed.
    if (!delta.regressed && !delta.missing && delta.relative == 0.0 &&
        delta.kind == "counter") {
      continue;
    }
    Status status = table.AppendRow(
        {delta.kind, delta.name, FormatDouble(delta.baseline, 6),
         delta.missing ? "MISSING" : FormatDouble(delta.current, 6),
         FormatDouble(delta.relative * 100.0, 2) + "%",
         delta.regressed ? "REGRESSED" : "ok"});
    if (!status.ok()) break;
  }
  out += table.ToPrettyString();
  out += comparison.ok()
             ? "PASS: no regressions\n"
             : "FAIL: " + std::to_string(comparison.regressions) +
                   " regression(s)\n";
  return out;
}

Json ComparisonToJson(const BenchComparison& comparison) {
  Json::Object object;
  object["baseline"] = Json(comparison.baseline_path);
  object["current"] = Json(comparison.current_path);
  object["regressions"] = Json(comparison.regressions);
  object["pass"] = Json(comparison.ok());
  Json::Array deltas;
  deltas.reserve(comparison.deltas.size());
  for (const BenchDelta& delta : comparison.deltas) {
    Json::Object d;
    d["kind"] = Json(delta.kind);
    d["name"] = Json(delta.name);
    d["baseline"] = Json(delta.baseline);
    if (delta.missing) {
      d["missing"] = Json(true);
    } else {
      d["current"] = Json(delta.current);
      d["relative"] = Json(delta.relative);
    }
    d["regressed"] = Json(delta.regressed);
    deltas.push_back(Json(std::move(d)));
  }
  object["deltas"] = Json(std::move(deltas));
  return Json(std::move(object));
}

}  // namespace report
}  // namespace autotune
