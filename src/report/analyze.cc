#include "report/analyze.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.h"
#include "common/table.h"
#include "obs/journal.h"

namespace autotune {
namespace report {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void AccumulatePhase(PhaseLatency* phase, double seconds) {
  ++phase->count;
  phase->total_s += seconds;
  phase->max_s = std::max(phase->max_s, seconds);
}

Json PhaseToJson(const PhaseLatency& phase) {
  Json::Object object;
  object["count"] = Json(phase.count);
  object["total_s"] = Json(phase.total_s);
  object["mean_s"] = Json(phase.mean_s());
  object["max_s"] = Json(phase.max_s);
  return Json(std::move(object));
}

/// +inf is not representable in JSON; encode pre-success curve points as
/// null so consumers can distinguish "no incumbent yet" from a value.
Json CurvePointToJson(double value) {
  return std::isfinite(value) ? Json(value) : Json();
}

}  // namespace

Result<JournalAnalysis> AnalyzeJournal(const std::string& path,
                                       const AnalyzeOptions& /*options*/) {
  AUTOTUNE_ASSIGN_OR_RETURN(std::string text, obs::ReadJournalText(path));

  JournalAnalysis analysis;
  analysis.path = path;

  double best = kInf;
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    auto parsed = Json::Parse(line);
    if (!parsed.ok()) {
      // Truncated tail of a killed process, or corruption: analysis is a
      // diagnostic tool, so keep going either way.
      ++analysis.skipped_lines;
      continue;
    }
    const Json& event = *parsed;
    const std::string kind = event.GetString("event", "");

    if (kind == "journal_header") {
      analysis.schema_version =
          event.GetInt("schema_version", obs::kJournalSchemaVersion);
      if (analysis.schema_version > obs::kJournalSchemaVersion) {
        analysis.future_schema = true;
        AUTOTUNE_LOG(kWarning)
            << "journal '" << path << "' has schema_version "
            << analysis.schema_version << " but this build understands "
            << obs::kJournalSchemaVersion << "; analysis is best-effort";
      }
    } else if (kind == "experiment_started") {
      if (analysis.experiment.empty()) {
        analysis.experiment = event.GetString("name", "");
      }
      if (analysis.environment.empty()) {
        // "env" from the CLI, "environment" from the service.
        analysis.environment = event.GetString("env", "");
        if (analysis.environment.empty()) {
          analysis.environment = event.GetString("environment", "");
        }
      }
      if (analysis.optimizer.empty()) {
        analysis.optimizer = event.GetString("optimizer", "");
      }
    } else if (kind == "loop_started") {
      analysis.optimizer =
          event.GetString("optimizer", analysis.optimizer);
      analysis.max_trials = event.GetInt("max_trials", analysis.max_trials);
      analysis.batch_size = event.GetInt("batch_size", analysis.batch_size);
      analysis.resumed_trials =
          event.GetInt("resumed_trials", analysis.resumed_trials);
    } else if (kind == "trial_completed") {
      auto observation = event.Get("observation");
      if (!observation.ok()) {
        ++analysis.skipped_lines;
        continue;
      }
      const double objective = observation->GetDouble("objective", 0.0);
      const bool failed = observation->GetBool("failed", false);
      analysis.objectives.push_back(objective);
      analysis.failed.push_back(failed);
      ++analysis.trials;
      if (failed) ++analysis.failures;
      analysis.total_cost += observation->GetDouble("cost", 0.0);
      if (!failed && objective < best) best = objective;
      analysis.best_so_far.push_back(best);
      auto metrics = observation->Get("metrics");
      if (metrics.ok() && metrics->is_object()) {
        analysis.fault_retries += static_cast<int64_t>(
            metrics->GetDouble("fault_retries", 0.0));
        analysis.fault_timeouts += static_cast<int64_t>(
            metrics->GetDouble("fault_timeouts", 0.0));
      }
    } else if (kind == "trial_decision") {
      auto latency = event.Get("latency");
      if (latency.ok() && latency->is_object()) {
        AccumulatePhase(&analysis.suggest,
                        latency->GetDouble("suggest_s", 0.0));
        AccumulatePhase(&analysis.evaluate,
                        latency->GetDouble("evaluate_s", 0.0));
        AccumulatePhase(&analysis.update,
                        latency->GetDouble("update_s", 0.0));
      }
      analysis.decisions.push_back(event);
    } else if (kind == "incumbent_updated") {
      ++analysis.incumbent_updates;
      analysis.last_incumbent_trial =
          event.GetInt("trial", analysis.last_incumbent_trial);
    } else if (kind == "optimizer_snapshot") {
      ++analysis.snapshots;
    } else if (kind == "worker_quarantined") {
      ++analysis.workers_quarantined;
    } else if (kind == "worker_replaced") {
      ++analysis.workers_replaced;
    } else if (kind == "degraded") {
      analysis.degraded = true;
    } else if (kind == "experiment_finished") {
      analysis.finished = true;
      analysis.converged_early =
          event.GetBool("converged_early", analysis.converged_early);
      analysis.degraded = event.GetBool("degraded", analysis.degraded);
      // Prefer the loop's own cost accounting (includes retry backoff and
      // imputed timeout charges) over the per-observation sum.
      analysis.total_cost = event.GetDouble("total_cost",
                                            analysis.total_cost);
    }
    // Unknown kinds (including ones from future schema versions) are
    // skipped silently: the journal is designed to be forward-readable.
  }

  analysis.has_success = std::isfinite(best);
  analysis.final_best = analysis.has_success ? best : 0.0;
  analysis.regret_proxy.reserve(analysis.best_so_far.size());
  for (const double value : analysis.best_so_far) {
    analysis.regret_proxy.push_back(
        std::isfinite(value) && analysis.has_success
            ? value - analysis.final_best
            : kInf);
  }
  return analysis;
}

std::vector<Json> ExplainTopN(const JournalAnalysis& analysis, int top_n) {
  // Index decisions by trial number for the join with trial outcomes.
  std::vector<const Json*> decision_by_trial;
  for (const Json& decision : analysis.decisions) {
    const int64_t trial = decision.GetInt("trial", -1);
    if (trial < 0) continue;
    if (decision_by_trial.size() <= static_cast<size_t>(trial)) {
      decision_by_trial.resize(static_cast<size_t>(trial) + 1, nullptr);
    }
    decision_by_trial[static_cast<size_t>(trial)] = &decision;
  }

  std::vector<size_t> successful;
  for (size_t i = 0; i < analysis.objectives.size(); ++i) {
    if (!analysis.failed[i]) successful.push_back(i);
  }
  std::sort(successful.begin(), successful.end(),
            [&analysis](size_t a, size_t b) {
              if (analysis.objectives[a] != analysis.objectives[b]) {
                return analysis.objectives[a] < analysis.objectives[b];
              }
              return a < b;
            });
  if (top_n >= 0 && successful.size() > static_cast<size_t>(top_n)) {
    successful.resize(static_cast<size_t>(top_n));
  }

  std::vector<Json> rows;
  rows.reserve(successful.size());
  for (const size_t trial : successful) {
    Json::Object row;
    row["trial"] = Json(static_cast<int64_t>(trial));
    row["objective"] = Json(analysis.objectives[trial]);
    const Json* decision = trial < decision_by_trial.size()
                               ? decision_by_trial[trial]
                               : nullptr;
    if (decision != nullptr) {
      auto delta = decision->Get("incumbent_delta");
      if (delta.ok()) row["incumbent_delta"] = *delta;
      auto record = decision->Get("decision");
      if (record.ok() && record->is_object()) {
        row["phase"] = Json(record->GetString("phase", ""));
        row["candidates"] = Json(record->GetInt("candidates", 0));
        auto chosen = record->Get("chosen");
        if (chosen.ok() && chosen->Has("score")) {
          row["score"] = Json(chosen->GetDouble("score", 0.0));
          row["mean"] = Json(chosen->GetDouble("mean", 0.0));
          row["variance"] = Json(chosen->GetDouble("variance", 0.0));
        }
      }
    }
    rows.push_back(Json(std::move(row)));
  }
  return rows;
}

Json AnalysisToJson(const JournalAnalysis& analysis, int top_n) {
  Json::Object object;
  object["path"] = Json(analysis.path);
  object["schema_version"] = Json(analysis.schema_version);
  object["future_schema"] = Json(analysis.future_schema);
  if (!analysis.experiment.empty()) {
    object["experiment"] = Json(analysis.experiment);
  }
  if (!analysis.environment.empty()) {
    object["environment"] = Json(analysis.environment);
  }
  object["optimizer"] = Json(analysis.optimizer);
  object["trials"] = Json(analysis.trials);
  object["failures"] = Json(analysis.failures);
  object["resumed_trials"] = Json(analysis.resumed_trials);
  object["total_cost"] = Json(analysis.total_cost);
  object["finished"] = Json(analysis.finished);
  object["converged_early"] = Json(analysis.converged_early);
  object["degraded"] = Json(analysis.degraded);
  if (analysis.has_success) {
    object["best_objective"] = Json(analysis.final_best);
  }
  object["incumbent_updates"] = Json(analysis.incumbent_updates);
  object["last_incumbent_trial"] = Json(analysis.last_incumbent_trial);
  object["snapshots"] = Json(analysis.snapshots);
  object["skipped_lines"] = Json(analysis.skipped_lines);

  Json::Array curve;
  curve.reserve(analysis.best_so_far.size());
  for (const double value : analysis.best_so_far) {
    curve.push_back(CurvePointToJson(value));
  }
  object["best_so_far"] = Json(std::move(curve));
  Json::Array regret;
  regret.reserve(analysis.regret_proxy.size());
  for (const double value : analysis.regret_proxy) {
    regret.push_back(CurvePointToJson(value));
  }
  object["regret_proxy"] = Json(std::move(regret));

  Json::Object phases;
  phases["suggest"] = PhaseToJson(analysis.suggest);
  phases["evaluate"] = PhaseToJson(analysis.evaluate);
  phases["update"] = PhaseToJson(analysis.update);
  object["phase_latency"] = Json(std::move(phases));

  Json::Object faults;
  faults["fault_retries"] = Json(analysis.fault_retries);
  faults["fault_timeouts"] = Json(analysis.fault_timeouts);
  faults["workers_quarantined"] = Json(analysis.workers_quarantined);
  faults["workers_replaced"] = Json(analysis.workers_replaced);
  object["faults"] = Json(std::move(faults));

  Json::Array explain;
  for (Json& row : ExplainTopN(analysis, top_n)) {
    explain.push_back(std::move(row));
  }
  object["explain"] = Json(std::move(explain));
  return Json(std::move(object));
}

std::string RenderAnalysisText(const JournalAnalysis& analysis, int top_n) {
  std::string out;
  out += "journal: " + analysis.path + " (schema v" +
         std::to_string(analysis.schema_version) + ")\n";
  if (analysis.future_schema) {
    out += "  WARNING: written by a newer format than this build "
           "understands; report is best-effort\n";
  }
  if (analysis.skipped_lines > 0) {
    out += "  note: skipped " + std::to_string(analysis.skipped_lines) +
           " unparseable line(s)\n";
  }
  out += "session: ";
  if (!analysis.experiment.empty()) {
    out += "name=" + analysis.experiment + " ";
  }
  if (!analysis.environment.empty()) {
    out += "env=" + analysis.environment + " ";
  }
  out += "optimizer=" + analysis.optimizer +
         " batch=" + std::to_string(analysis.batch_size) + "\n";
  out += "trials: " + std::to_string(analysis.trials) + " (" +
         std::to_string(analysis.failures) + " failed, " +
         std::to_string(analysis.resumed_trials) + " resumed), cost " +
         FormatDouble(analysis.total_cost, 6) + "s, ";
  if (analysis.degraded) {
    out += "DEGRADED";
  } else if (analysis.converged_early) {
    out += "converged early";
  } else if (analysis.finished) {
    out += "finished";
  } else {
    out += "in progress / interrupted";
  }
  out += "\n";
  if (analysis.has_success) {
    out += "best objective: " + FormatDouble(analysis.final_best, 9) +
           " (" + std::to_string(analysis.incumbent_updates) +
           " incumbent updates, last at trial " +
           std::to_string(analysis.last_incumbent_trial) + ")\n";
  } else {
    out += "best objective: none (no successful trial)\n";
  }

  if (!analysis.best_so_far.empty()) {
    out += "best-so-far curve (trial: best, regret):\n";
    Table curve({"trial", "best", "regret"});
    const size_t n = analysis.best_so_far.size();
    std::vector<size_t> points = {0, n / 4, n / 2, 3 * n / 4, n - 1};
    points.erase(std::unique(points.begin(), points.end()), points.end());
    for (const size_t i : points) {
      const double value = analysis.best_so_far[i];
      Status status = curve.AppendRow(
          {std::to_string(i),
           std::isfinite(value) ? FormatDouble(value, 9) : "-",
           std::isfinite(analysis.regret_proxy[i])
               ? FormatDouble(analysis.regret_proxy[i], 6)
               : "-"});
      if (!status.ok()) break;
    }
    out += curve.ToPrettyString();
  }

  if (analysis.suggest.count > 0) {
    out += "phase latency (live trials):\n";
    Table phases({"phase", "count", "mean_ms", "max_ms", "total_s"});
    const auto row = [&phases](const char* name,
                               const PhaseLatency& phase) {
      Status status = phases.AppendRow(
          {name, std::to_string(phase.count),
           FormatDouble(phase.mean_s() * 1e3, 4),
           FormatDouble(phase.max_s * 1e3, 4),
           FormatDouble(phase.total_s, 4)});
      if (!status.ok()) AUTOTUNE_LOG(kWarning) << status.ToString();
    };
    row("suggest", analysis.suggest);
    row("evaluate", analysis.evaluate);
    row("update", analysis.update);
    out += phases.ToPrettyString();
  }

  out += "faults: retries " + std::to_string(analysis.fault_retries) +
         ", timeouts " + std::to_string(analysis.fault_timeouts) +
         ", workers quarantined " +
         std::to_string(analysis.workers_quarantined) + ", replaced " +
         std::to_string(analysis.workers_replaced) + "\n";

  const std::vector<Json> explain = ExplainTopN(analysis, top_n);
  if (!explain.empty()) {
    out += "why chosen (top " + std::to_string(explain.size()) +
           " by objective):\n";
    Table table(
        {"trial", "objective", "delta", "phase", "pool", "score", "mean",
         "variance"});
    for (const Json& row : explain) {
      const bool scored = row.Has("score");
      Status status = table.AppendRow(
          {std::to_string(row.GetInt("trial", -1)),
           FormatDouble(row.GetDouble("objective", 0.0), 9),
           row.Has("incumbent_delta")
               ? FormatDouble(row.GetDouble("incumbent_delta", 0.0), 4)
               : "-",
           row.GetString("phase", "-"),
           row.Has("candidates")
               ? std::to_string(row.GetInt("candidates", 0))
               : "-",
           scored ? FormatDouble(row.GetDouble("score", 0.0), 4) : "-",
           scored ? FormatDouble(row.GetDouble("mean", 0.0), 4) : "-",
           scored ? FormatDouble(row.GetDouble("variance", 0.0), 4) : "-"});
      if (!status.ok()) break;
    }
    out += table.ToPrettyString();
  }
  return out;
}

}  // namespace report
}  // namespace autotune
