#ifndef AUTOTUNE_REPORT_ANALYZE_H_
#define AUTOTUNE_REPORT_ANALYZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace autotune {
namespace report {

using obs::Json;

/// Offline journal analysis — the consumer side of the experiment journal
/// (`obs::Journal` transport, `record::codec` schemas): reads a JSONL
/// journal and derives the convergence report behind `autotune_cli analyze`.
/// Works on raw events, so it needs no ConfigSpace and can analyze journals
/// from environments this binary cannot construct.

/// Aggregated wall-clock latency of one loop phase, from the non-
/// deterministic `latency` member of trial_decision events.
struct PhaseLatency {
  int64_t count = 0;
  double total_s = 0.0;
  double max_s = 0.0;

  [[nodiscard]] double mean_s() const {
    return count > 0 ? total_s / static_cast<double>(count) : 0.0;
  }
};

/// Everything `AnalyzeJournal` derives from one journal file.
struct JournalAnalysis {
  std::string path;

  /// From the journal_header event (defaults to 1 for pre-header files).
  int64_t schema_version = 1;
  /// True when the file was written by a NEWER format than this build
  /// understands — the analysis is best-effort in that case.
  bool future_schema = false;

  /// Session metadata (experiment_started / loop_started, when present).
  std::string experiment;   ///< Service tenant name, if any.
  std::string environment;  ///< CLI env id, if any.
  std::string optimizer;
  int64_t max_trials = 0;
  int64_t batch_size = 1;
  int64_t resumed_trials = 0;

  /// Trial outcomes, in journal order (trial_completed events).
  std::vector<double> objectives;
  std::vector<bool> failed;
  /// Incumbent (best successful) objective after each trial — the
  /// convergence curve. Entries before the first success are +inf.
  std::vector<double> best_so_far;
  /// best_so_far minus the final best — a regret proxy against the best
  /// configuration this run ever found (+inf before the first success).
  std::vector<double> regret_proxy;

  int64_t trials = 0;
  int64_t failures = 0;
  double total_cost = 0.0;
  double final_best = 0.0;       ///< Valid iff `has_success`.
  bool has_success = false;
  int64_t incumbent_updates = 0;
  int64_t last_incumbent_trial = -1;

  /// Terminal state (experiment_finished / degraded events).
  bool finished = false;
  bool converged_early = false;
  bool degraded = false;

  /// Phase latency breakdown (live trials only; replayed trials re-journal
  /// nothing).
  PhaseLatency suggest;
  PhaseLatency evaluate;
  PhaseLatency update;

  /// Fault/retry summary: per-trial fault metrics summed over observations
  /// plus runner-level quarantine/replacement events.
  int64_t fault_retries = 0;
  int64_t fault_timeouts = 0;
  int64_t workers_quarantined = 0;
  int64_t workers_replaced = 0;

  int64_t snapshots = 0;       ///< optimizer_snapshot events seen.
  int64_t skipped_lines = 0;   ///< Unparseable (truncated/corrupt) lines.

  /// Raw trial_decision events, in journal order — provenance for the
  /// explain table ("why was this configuration chosen?").
  std::vector<Json> decisions;
};

struct AnalyzeOptions {
  /// Rows in the explain-top-N table (best objectives first).
  int top_n = 5;
};

/// Parses `path` and derives the analysis. Unknown event kinds and
/// unparseable lines are skipped (counted in `skipped_lines`), so journals
/// from future schema versions degrade gracefully instead of failing.
[[nodiscard]] Result<JournalAnalysis> AnalyzeJournal(
    const std::string& path, const AnalyzeOptions& options = {});

/// Machine-readable report: summary fields + convergence curve + phase
/// latencies + fault summary + the explain-top-N rows.
Json AnalysisToJson(const JournalAnalysis& analysis, int top_n = 5);

/// Human-readable report (the `autotune_cli analyze` default output).
std::string RenderAnalysisText(const JournalAnalysis& analysis,
                               int top_n = 5);

/// The explain-top-N rows: for the `top_n` best successful trials (by
/// objective, ascending), the matching trial_decision provenance as flat
/// objects {"trial", "objective", "incumbent_delta"?, "phase"?,
/// "candidates"?, "score"?, "mean"?, "variance"?}. Trials without a
/// journaled decision still appear (objective only).
std::vector<Json> ExplainTopN(const JournalAnalysis& analysis, int top_n);

}  // namespace report
}  // namespace autotune

#endif  // AUTOTUNE_REPORT_ANALYZE_H_
