#ifndef AUTOTUNE_KB_WARMSTART_H_
#define AUTOTUNE_KB_WARMSTART_H_

#include "common/status.h"
#include "core/optimizer.h"
#include "obs/json.h"
#include "space/config_space.h"

namespace autotune {
namespace kb {

/// Replays a warm-start payload (`KnowledgeStore::WarmStartJson` shape, or
/// the journaled `warmstart_applied` event, which carries the same
/// "good_samples"/"bad_samples" arrays) into `optimizer`: each sample's
/// config is decoded against `space` and fed through `Observe` before the
/// first suggest. Samples whose config does not decode against the space
/// (schema drift between fleet members) are skipped — a foreign sample
/// must not sink the new experiment. Returns the number of observations
/// actually replayed.
[[nodiscard]] Result<int> ApplyWarmStartSamples(const obs::Json& payload,
                                                const ConfigSpace* space,
                                                Optimizer* optimizer);

}  // namespace kb
}  // namespace autotune

#endif  // AUTOTUNE_KB_WARMSTART_H_
