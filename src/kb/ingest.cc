#include "kb/ingest.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "env/workload.h"
#include "math/stats.h"
#include "obs/journal.h"
#include "workload/embedding.h"

namespace autotune {
namespace kb {

namespace {

using obs::Json;

/// "dir/name.jsonl" -> "name".
std::string FileStem(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string stem =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem = stem.substr(0, dot);
  return stem;
}

}  // namespace

std::string ResolveWorkloadName(const std::string& workload_field,
                                const std::string& environment_field) {
  std::string candidate = workload_field;
  if (candidate.empty()) {
    // Service journals record only the environment name; the simulated DB
    // encodes its workload there as "simdb-<workload>".
    const std::string prefix = "simdb-";
    if (environment_field.rfind(prefix, 0) == 0) {
      candidate = environment_field.substr(prefix.size());
    }
  }
  if (candidate.empty()) return "";
  for (const workload::Workload& w : workload::StandardWorkloads()) {
    if (w.name == candidate) return candidate;
  }
  return "";
}

Result<SessionSummary> SummarizeJournal(const std::string& path,
                                        const IngestOptions& options) {
  AUTOTUNE_ASSIGN_OR_RETURN(std::string text, obs::ReadJournalText(path));

  SessionSummary summary;
  summary.source_path = path;
  std::string workload_field;

  struct Trial {
    Json config;
    double objective = 0.0;
    bool failed = false;
  };
  std::vector<Trial> trials;

  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    auto parsed = Json::Parse(line);
    if (!parsed.ok()) {
      // Mid-write truncation or corruption — tolerated, counted.
      ++summary.skipped_lines;
      continue;
    }
    const Json& event = *parsed;
    const std::string kind = event.GetString("event", "");

    if (kind == "experiment_started") {
      if (summary.session_id.empty()) {
        summary.session_id = event.GetString("name", "");
      }
      if (summary.environment.empty()) {
        // "env" from the CLI, "environment" from the service.
        summary.environment = event.GetString("env", "");
        if (summary.environment.empty()) {
          summary.environment = event.GetString("environment", "");
        }
      }
      if (workload_field.empty()) {
        workload_field = event.GetString("workload", "");
      }
      summary.maximize = event.GetBool("maximize", summary.maximize);
      if (summary.optimizer.empty()) {
        summary.optimizer = event.GetString("optimizer", "");
      }
    } else if (kind == "loop_started") {
      summary.optimizer = event.GetString("optimizer", summary.optimizer);
    } else if (kind == "trial_completed") {
      auto observation = event.Get("observation");
      if (!observation.ok() || !observation->is_object()) {
        ++summary.skipped_lines;
        continue;
      }
      auto config = observation->Get("config");
      if (!config.ok() || !config->is_object()) {
        ++summary.skipped_lines;
        continue;
      }
      Trial trial;
      trial.config = std::move(*config);
      trial.objective = observation->GetDouble("objective", 0.0);
      trial.failed = observation->GetBool("failed", false);
      summary.total_cost += observation->GetDouble("cost", 0.0);
      trials.push_back(std::move(trial));
    } else if (kind == "worker_quarantined") {
      ++summary.workers_quarantined;
    } else if (kind == "degraded") {
      summary.degraded = true;
    } else if (kind == "experiment_finished") {
      summary.finished = true;
      summary.degraded = event.GetBool("degraded", summary.degraded);
      summary.total_cost =
          event.GetDouble("total_cost", summary.total_cost);
    }
    // Unknown kinds (trial_started, snapshots, decisions, future events)
    // carry nothing the knowledge base needs.
  }

  if (trials.empty()) {
    return Status::FailedPrecondition(
        "journal '" + path + "' has no decodable trials (" +
        std::to_string(summary.skipped_lines) + " unparseable line(s))");
  }

  if (summary.session_id.empty()) summary.session_id = FileStem(path);
  summary.workload = ResolveWorkloadName(workload_field, summary.environment);
  if (!summary.workload.empty()) {
    for (const workload::Workload& w : workload::StandardWorkloads()) {
      if (w.name == summary.workload) {
        summary.embedding =
            workload::ComputeEmbedding(w, options.embedding_seed);
        break;
      }
    }
  }

  summary.trials = static_cast<int64_t>(trials.size());
  std::vector<double> objectives;
  std::vector<size_t> successes;
  for (size_t i = 0; i < trials.size(); ++i) {
    if (trials[i].failed) {
      ++summary.failures;
      if (summary.crash_samples.size() <
          static_cast<size_t>(std::max(0, options.max_crash_samples))) {
        summary.crash_samples.push_back(
            {trials[i].config, trials[i].objective, true});
      }
    } else {
      objectives.push_back(trials[i].objective);
      successes.push_back(i);
    }
  }

  if (!objectives.empty()) {
    summary.best_objective = Min(objectives);
    summary.objective_quantiles.reserve(11);
    for (int q = 0; q <= 10; ++q) {
      summary.objective_quantiles.push_back(
          Quantile(objectives, static_cast<double>(q) / 10.0));
    }
    // Best-k successful configs, ascending objective; ties broken by
    // journal order so the stored set is deterministic.
    std::sort(successes.begin(), successes.end(),
              [&trials](size_t a, size_t b) {
                if (trials[a].objective != trials[b].objective) {
                  return trials[a].objective < trials[b].objective;
                }
                return a < b;
              });
    const size_t keep =
        std::min(successes.size(),
                 static_cast<size_t>(std::max(0, options.max_good_samples)));
    summary.good_samples.reserve(keep);
    for (size_t i = 0; i < keep; ++i) {
      const Trial& trial = trials[successes[i]];
      summary.good_samples.push_back(
          {trial.config, trial.objective, false});
    }
  }
  return summary;
}

}  // namespace kb
}  // namespace autotune
