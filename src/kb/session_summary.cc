#include "kb/session_summary.h"

#include <utility>

namespace autotune {
namespace kb {

namespace {

using obs::Json;

Json EncodeSample(const StoredSample& sample) {
  return Json(Json::Object{{"config", sample.config},
                           {"objective", Json(sample.objective)},
                           {"failed", Json(sample.failed)}});
}

Result<StoredSample> DecodeSample(const Json& encoded) {
  if (!encoded.is_object()) {
    return Status::InvalidArgument("stored sample is not an object");
  }
  StoredSample sample;
  AUTOTUNE_ASSIGN_OR_RETURN(sample.config, encoded.Get("config"));
  if (!sample.config.is_object()) {
    return Status::InvalidArgument("stored sample config is not an object");
  }
  sample.objective = encoded.GetDouble("objective", 0.0);
  sample.failed = encoded.GetBool("failed", false);
  return sample;
}

Json EncodeDoubles(const std::vector<double>& values) {
  Json::Array array;
  array.reserve(values.size());
  for (const double v : values) array.push_back(Json(v));
  return Json(std::move(array));
}

Result<std::vector<double>> DecodeDoubles(const Json& encoded) {
  if (!encoded.is_array()) {
    return Status::InvalidArgument("expected a JSON array of numbers");
  }
  std::vector<double> values;
  values.reserve(encoded.AsArray().size());
  for (const Json& v : encoded.AsArray()) {
    if (!v.is_number()) {
      return Status::InvalidArgument("non-numeric array element");
    }
    values.push_back(v.AsDouble());
  }
  return values;
}

}  // namespace

Json EncodeSessionSummary(const SessionSummary& summary) {
  Json::Object object;
  object["session_id"] = Json(summary.session_id);
  object["source_path"] = Json(summary.source_path);
  object["source_size"] = Json(summary.source_size);
  object["source_mtime"] = Json(summary.source_mtime);
  object["environment"] = Json(summary.environment);
  object["workload"] = Json(summary.workload);
  object["optimizer"] = Json(summary.optimizer);
  object["maximize"] = Json(summary.maximize);
  object["finished"] = Json(summary.finished);
  object["degraded"] = Json(summary.degraded);
  object["trials"] = Json(summary.trials);
  object["failures"] = Json(summary.failures);
  object["workers_quarantined"] = Json(summary.workers_quarantined);
  object["skipped_lines"] = Json(summary.skipped_lines);
  object["total_cost"] = Json(summary.total_cost);
  object["embedding"] = EncodeDoubles(summary.embedding);
  if (summary.best_objective.has_value()) {
    object["best_objective"] = Json(*summary.best_objective);
  }
  object["objective_quantiles"] = EncodeDoubles(summary.objective_quantiles);
  Json::Array good;
  good.reserve(summary.good_samples.size());
  for (const StoredSample& sample : summary.good_samples) {
    good.push_back(EncodeSample(sample));
  }
  object["good_samples"] = Json(std::move(good));
  Json::Array crash;
  crash.reserve(summary.crash_samples.size());
  for (const StoredSample& sample : summary.crash_samples) {
    crash.push_back(EncodeSample(sample));
  }
  object["crash_samples"] = Json(std::move(crash));
  return Json(std::move(object));
}

Result<SessionSummary> DecodeSessionSummary(const Json& encoded) {
  if (!encoded.is_object()) {
    return Status::InvalidArgument("session summary is not an object");
  }
  SessionSummary summary;
  summary.session_id = encoded.GetString("session_id", "");
  summary.source_path = encoded.GetString("source_path", "");
  summary.source_size = encoded.GetInt("source_size", 0);
  summary.source_mtime = encoded.GetInt("source_mtime", 0);
  summary.environment = encoded.GetString("environment", "");
  summary.workload = encoded.GetString("workload", "");
  summary.optimizer = encoded.GetString("optimizer", "");
  summary.maximize = encoded.GetBool("maximize", false);
  summary.finished = encoded.GetBool("finished", false);
  summary.degraded = encoded.GetBool("degraded", false);
  summary.trials = encoded.GetInt("trials", 0);
  summary.failures = encoded.GetInt("failures", 0);
  summary.workers_quarantined = encoded.GetInt("workers_quarantined", 0);
  summary.skipped_lines = encoded.GetInt("skipped_lines", 0);
  summary.total_cost = encoded.GetDouble("total_cost", 0.0);
  if (summary.session_id.empty()) {
    return Status::InvalidArgument("session summary has no session_id");
  }
  auto embedding = encoded.Get("embedding");
  if (embedding.ok()) {
    AUTOTUNE_ASSIGN_OR_RETURN(summary.embedding, DecodeDoubles(*embedding));
  }
  if (encoded.Has("best_objective")) {
    summary.best_objective = encoded.GetDouble("best_objective", 0.0);
  }
  auto quantiles = encoded.Get("objective_quantiles");
  if (quantiles.ok()) {
    AUTOTUNE_ASSIGN_OR_RETURN(summary.objective_quantiles,
                              DecodeDoubles(*quantiles));
  }
  auto good = encoded.Get("good_samples");
  if (good.ok() && good->is_array()) {
    for (const Json& sample : good->AsArray()) {
      AUTOTUNE_ASSIGN_OR_RETURN(StoredSample decoded, DecodeSample(sample));
      summary.good_samples.push_back(std::move(decoded));
    }
  }
  auto crash = encoded.Get("crash_samples");
  if (crash.ok() && crash->is_array()) {
    for (const Json& sample : crash->AsArray()) {
      AUTOTUNE_ASSIGN_OR_RETURN(StoredSample decoded, DecodeSample(sample));
      summary.crash_samples.push_back(std::move(decoded));
    }
  }
  return summary;
}

}  // namespace kb
}  // namespace autotune
