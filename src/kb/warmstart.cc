#include "kb/warmstart.h"

#include "common/check.h"
#include "common/log.h"
#include "record/codec.h"

namespace autotune {
namespace kb {

namespace {

using obs::Json;

/// Replays one sample array ("good_samples" or "bad_samples"). Absent or
/// non-array members are treated as empty.
Result<int> ApplyArray(const Json& payload, const std::string& key,
                       const ConfigSpace* space, Optimizer* optimizer) {
  auto array = payload.Get(key);
  if (!array.ok() || !array->is_array()) return 0;
  int replayed = 0;
  for (const Json& sample : array->AsArray()) {
    if (!sample.is_object()) continue;
    // The sample is already DecodeObservation-shaped: {"config",
    // "objective", "failed"} — cost/fidelity default sensibly.
    auto observation = record::DecodeObservation(space, sample);
    if (!observation.ok()) {
      AUTOTUNE_LOG(kWarning) << "kb: skipping warm-start sample from '" << key
                             << "': " << observation.status().message();
      continue;
    }
    AUTOTUNE_RETURN_IF_ERROR(optimizer->Observe(*observation));
    ++replayed;
  }
  return replayed;
}

}  // namespace

Result<int> ApplyWarmStartSamples(const obs::Json& payload,
                                  const ConfigSpace* space,
                                  Optimizer* optimizer) {
  AUTOTUNE_CHECK(space != nullptr);
  AUTOTUNE_CHECK(optimizer != nullptr);
  if (!payload.is_object()) {
    return Status::InvalidArgument("warm-start payload is not a JSON object");
  }
  AUTOTUNE_ASSIGN_OR_RETURN(
      int good, ApplyArray(payload, "good_samples", space, optimizer));
  AUTOTUNE_ASSIGN_OR_RETURN(
      int bad, ApplyArray(payload, "bad_samples", space, optimizer));
  return good + bad;
}

}  // namespace kb
}  // namespace autotune
