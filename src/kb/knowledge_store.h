#ifndef AUTOTUNE_KB_KNOWLEDGE_STORE_H_
#define AUTOTUNE_KB_KNOWLEDGE_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "kb/ingest.h"
#include "kb/session_summary.h"
#include "obs/json.h"
#include "transfer/knowledge_base.h"

namespace autotune {
namespace kb {

/// Version of the durable store file format (`Save`/`Load`). Bump on
/// incompatible schema changes; `Load` rejects mismatches.
inline constexpr int64_t kStoreVersion = 1;

/// Durable fleet knowledge base: per-session summaries distilled from
/// experiment journals, indexed by workload embedding for nearest-neighbor
/// warm-start lookups (tutorial slides 67/92 at fleet scale).
///
/// Sessions are keyed by journal path in a sorted map, so iteration order —
/// and therefore every tie-break below — is deterministic. Thread-safe: the
/// service queries a store concurrently with CLI-triggered rescans.
class KnowledgeStore {
 public:
  explicit KnowledgeStore(IngestOptions options = IngestOptions())
      : options_(options) {}

  /// What one `ScanDirectory` pass did.
  struct ScanReport {
    int ingested = 0;   ///< New journals summarized.
    int refreshed = 0;  ///< Known journals whose size/mtime changed.
    int unchanged = 0;  ///< Known journals skipped (same size/mtime).
    int skipped = 0;    ///< Unreadable/foreign files, warned and ignored.
    int evicted = 0;    ///< Stored sessions whose journal file vanished.
  };

  /// Incrementally ingests every `*.jsonl` under `dir` (sorted name
  /// order). A journal already in the store with unchanged size+mtime is
  /// not re-read; one that fails to summarize (truncated beyond repair,
  /// foreign file) is skipped with a logged warning — a bad file never
  /// aborts the scan. Sessions previously ingested from `dir` whose
  /// journal file has since been deleted are evicted, so `NearestSessions`
  /// never serves warm-start donors that no longer exist on disk.
  /// NotFound when `dir` cannot be opened.
  [[nodiscard]] Result<ScanReport> ScanDirectory(const std::string& dir)
      EXCLUDES(mutex_);

  /// Adds or replaces one summary directly (tests, programmatic feeds).
  void AddSession(SessionSummary summary) EXCLUDES(mutex_);

  /// Durable single-file JSON round trip: {"kb_version", "sessions": [...]}.
  /// `Save` output is deterministic (sorted sessions, sorted keys).
  [[nodiscard]] Status Save(const std::string& path) const EXCLUDES(mutex_);
  [[nodiscard]] Status Load(const std::string& path) EXCLUDES(mutex_);

  /// One nearest-neighbor hit: a copy of the stored summary plus its
  /// embedding distance to the query.
  struct Match {
    SessionSummary summary;
    double distance = 0.0;
  };

  /// Up to `k` stored sessions nearest to `embedding` by Euclidean
  /// distance. Sessions with an empty or dimension-mismatched embedding
  /// are never matched. Equal distances tie-break on journal path
  /// (ascending), so results are stable across processes and rescans.
  [[nodiscard]] std::vector<Match> NearestSessions(
      const std::vector<double>& embedding, int k) const EXCLUDES(mutex_);

  /// The warm-start payload served over `GET /warmstart` and printed by
  /// `autotune_cli kb query`: nearest matches, good samples to replay
  /// (nearest session's best configs under the policy's poor-quantile
  /// cut), and bad samples to avoid — the nearest session's crash configs
  /// plus, fleet-wide, crash configs from every session that quarantined a
  /// worker ("if it crashes the system, it probably always does"). Bad
  /// sample objectives are imputed sign-safely via
  /// `transfer::ImputedBadObjective`. NotFound when no stored session has
  /// a matching embedding.
  [[nodiscard]] Result<obs::Json> WarmStartJson(
      const std::vector<double>& embedding,
      const transfer::WarmStartPolicy& policy, int k) const EXCLUDES(mutex_);

  /// Store-wide inventory for `autotune_cli kb inspect`.
  obs::Json InspectJson() const EXCLUDES(mutex_);

  size_t num_sessions() const EXCLUDES(mutex_);

 private:
  std::vector<Match> NearestSessionsLocked(
      const std::vector<double>& embedding, int k) const REQUIRES(mutex_);

  const IngestOptions options_;
  mutable Mutex mutex_{"kb.knowledge_store"};
  /// Keyed by source journal path — sorted, so iteration (and tie-breaks)
  /// are deterministic.
  std::map<std::string, SessionSummary> sessions_ GUARDED_BY(mutex_);
};

/// Canonical query embedding for a standard workload name (the
/// `?workload=` form of the warm-start endpoint). NotFound for names
/// outside `workload::StandardWorkloads`.
[[nodiscard]] Result<std::vector<double>> EmbeddingForWorkload(
    const std::string& name, uint64_t seed = 0);

}  // namespace kb
}  // namespace autotune

#endif  // AUTOTUNE_KB_KNOWLEDGE_STORE_H_
