#ifndef AUTOTUNE_KB_INGEST_H_
#define AUTOTUNE_KB_INGEST_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "kb/session_summary.h"

namespace autotune {
namespace kb {

/// Knobs for turning one journal into a `SessionSummary`.
struct IngestOptions {
  /// Best-k successful configs kept per session (ascending objective).
  int max_good_samples = 16;

  /// Failed-trial configs kept per session (journal order).
  int max_crash_samples = 16;

  /// Seed for `workload::ComputeEmbedding`; must match the seed used at
  /// query time for distances to be meaningful.
  uint64_t embedding_seed = 0;
};

/// Distills one JSONL experiment journal into a `SessionSummary`.
///
/// Parsing is deliberately tolerant — the mirror image of
/// `record::ReplayJournal`'s strictness: a resume must not hallucinate
/// state, but a fleet scan must survive whatever half-written or corrupt
/// files a journal directory accumulates. Unparseable lines (truncated
/// tails, corruption) are skipped and counted in
/// `SessionSummary::skipped_lines`; unknown event kinds are ignored.
///
/// Errors: NotFound when the file cannot be read; FailedPrecondition when
/// no decodable `trial_completed` event survives (a truncated or foreign
/// file) — callers skip such files with a warning and keep scanning.
[[nodiscard]] Result<SessionSummary> SummarizeJournal(
    const std::string& path, const IngestOptions& options = IngestOptions());

/// Resolves the workload name a journal's session ran on: the
/// `experiment_started` event's "workload" field (CLI journals) or the
/// "simdb-<workload>" environment-name convention (service journals).
/// Empty when neither form matches a standard workload.
std::string ResolveWorkloadName(const std::string& workload_field,
                                const std::string& environment_field);

}  // namespace kb
}  // namespace autotune

#endif  // AUTOTUNE_KB_INGEST_H_
