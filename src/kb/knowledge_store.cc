#include "kb/knowledge_store.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <utility>

#include "common/log.h"
#include "env/workload.h"
#include "math/matrix.h"
#include "obs/journal.h"
#include "workload/embedding.h"

namespace autotune {
namespace kb {

namespace {

using obs::Json;

/// Linear interpolation into the 11-point quantile sketch (q = 0..1.0 in
/// steps of 0.1). Falls back to the sketch max when the sketch is short.
double SketchQuantile(const std::vector<double>& sketch, double q) {
  if (sketch.empty()) return 0.0;
  if (sketch.size() < 11 || q <= 0.0) return sketch.front();
  if (q >= 1.0) return sketch.back();
  const double pos = q * 10.0;
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min<size_t>(lo + 1, 10);
  const double frac = pos - static_cast<double>(lo);
  return sketch[lo] + frac * (sketch[hi] - sketch[lo]);
}

Json EncodeMatch(const KnowledgeStore::Match& match) {
  Json::Object object;
  object["session"] = Json(match.summary.session_id);
  object["source_path"] = Json(match.summary.source_path);
  object["workload"] = Json(match.summary.workload);
  object["environment"] = Json(match.summary.environment);
  object["optimizer"] = Json(match.summary.optimizer);
  object["distance"] = Json(match.distance);
  object["trials"] = Json(match.summary.trials);
  object["failures"] = Json(match.summary.failures);
  object["workers_quarantined"] = Json(match.summary.workers_quarantined);
  if (match.summary.best_objective.has_value()) {
    object["best_objective"] = Json(*match.summary.best_objective);
  }
  return Json(std::move(object));
}

}  // namespace

Result<KnowledgeStore::ScanReport> KnowledgeStore::ScanDirectory(
    const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return Status::NotFound("cannot open journal directory '" + dir + "'");
  }
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    const std::string suffix = ".jsonl";
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      names.push_back(name);
    }
  }
  ::closedir(handle);
  // Sorted order keeps ingest (and any first-writer-wins fields)
  // deterministic regardless of directory enumeration order.
  std::sort(names.begin(), names.end());

  ScanReport report;
  MutexLock lock(mutex_);

  // Evict ghosts first: sessions keyed by a path under `dir` whose journal
  // is no longer in the directory listing (deleted, renamed away). Without
  // this, a rescan keeps serving warm starts from tenants that were
  // evicted on disk. Keys from other directories (or programmatic
  // AddSession ids) are not touched.
  const std::string prefix = dir.empty() || dir.back() == '/' ? dir
                                                              : dir + "/";
  std::set<std::string> present;
  for (const std::string& name : names) present.insert(prefix + name);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const std::string& key = it->first;
    const bool under_dir =
        key.size() > prefix.size() && key.compare(0, prefix.size(), prefix) ==
                                          0 &&
        key.find('/', prefix.size()) == std::string::npos;
    if (under_dir && present.count(key) == 0) {
      AUTOTUNE_LOG(kInfo) << "kb: evicting '" << key
                          << "' (journal deleted)";
      it = sessions_.erase(it);
      ++report.evicted;
    } else {
      ++it;
    }
  }

  for (const std::string& name : names) {
    const std::string path = dir + "/" + name;
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      AUTOTUNE_LOG(kWarning) << "kb: cannot stat '" << path << "', skipping";
      ++report.skipped;
      continue;
    }
    auto it = sessions_.find(path);
    if (it != sessions_.end() &&
        it->second.source_size == static_cast<int64_t>(st.st_size) &&
        it->second.source_mtime == static_cast<int64_t>(st.st_mtime)) {
      ++report.unchanged;
      continue;
    }
    auto summary = SummarizeJournal(path, options_);
    if (!summary.ok()) {
      // A half-written or foreign file must never abort a fleet scan.
      AUTOTUNE_LOG(kWarning)
          << "kb: skipping journal '" << path
          << "': " << summary.status().message();
      ++report.skipped;
      continue;
    }
    summary->source_size = static_cast<int64_t>(st.st_size);
    summary->source_mtime = static_cast<int64_t>(st.st_mtime);
    if (it == sessions_.end()) {
      sessions_.emplace(path, std::move(*summary));
      ++report.ingested;
    } else {
      it->second = std::move(*summary);
      ++report.refreshed;
    }
  }
  return report;
}

void KnowledgeStore::AddSession(SessionSummary summary) {
  MutexLock lock(mutex_);
  const std::string key = summary.source_path.empty()
                              ? summary.session_id
                              : summary.source_path;
  sessions_[key] = std::move(summary);
}

Status KnowledgeStore::Save(const std::string& path) const {
  Json::Array sessions;
  {
    MutexLock lock(mutex_);
    sessions.reserve(sessions_.size());
    for (const auto& [key, summary] : sessions_) {
      sessions.push_back(EncodeSessionSummary(summary));
    }
  }
  const Json store(Json::Object{{"kb_version", Json(kStoreVersion)},
                                {"sessions", Json(std::move(sessions))}});
  const std::string text = store.Pretty() + "\n";
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != text.size() || !closed) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Status KnowledgeStore::Load(const std::string& path) {
  AUTOTUNE_ASSIGN_OR_RETURN(std::string text, obs::ReadJournalText(path));
  AUTOTUNE_ASSIGN_OR_RETURN(Json store, Json::Parse(text));
  if (!store.is_object()) {
    return Status::InvalidArgument("store file is not a JSON object");
  }
  const int64_t version = store.GetInt("kb_version", -1);
  if (version != kStoreVersion) {
    return Status::InvalidArgument(
        "unsupported kb_version " + std::to_string(version) + " in '" + path +
        "' (this build reads version " + std::to_string(kStoreVersion) + ")");
  }
  AUTOTUNE_ASSIGN_OR_RETURN(Json sessions, store.Get("sessions"));
  if (!sessions.is_array()) {
    return Status::InvalidArgument("store 'sessions' is not an array");
  }
  std::map<std::string, SessionSummary> loaded;
  for (const Json& encoded : sessions.AsArray()) {
    AUTOTUNE_ASSIGN_OR_RETURN(SessionSummary summary,
                              DecodeSessionSummary(encoded));
    const std::string key = summary.source_path.empty()
                                ? summary.session_id
                                : summary.source_path;
    loaded[key] = std::move(summary);
  }
  MutexLock lock(mutex_);
  for (auto& [key, summary] : loaded) {
    sessions_[key] = std::move(summary);
  }
  return Status::OK();
}

std::vector<KnowledgeStore::Match> KnowledgeStore::NearestSessions(
    const std::vector<double>& embedding, int k) const {
  MutexLock lock(mutex_);
  return NearestSessionsLocked(embedding, k);
}

std::vector<KnowledgeStore::Match> KnowledgeStore::NearestSessionsLocked(
    const std::vector<double>& embedding, int k) const {
  std::vector<Match> matches;
  if (embedding.empty() || k <= 0) return matches;
  for (const auto& [key, summary] : sessions_) {
    // Sessions whose workload could not be resolved have no embedding and
    // are never nearest-neighbor donors (their crash samples still travel
    // through the fleet-wide bad-sample channel).
    if (summary.embedding.empty() ||
        summary.embedding.size() != embedding.size()) {
      continue;
    }
    Match match;
    match.summary = summary;
    match.distance = std::sqrt(SquaredDistance(embedding, summary.embedding));
    matches.push_back(std::move(match));
  }
  // Tie-break on journal path: the map iteration above already visits
  // paths in ascending order, and the explicit comparator makes the
  // ordering self-documenting rather than an artifact of sort stability.
  std::sort(matches.begin(), matches.end(), [](const Match& a,
                                               const Match& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.summary.source_path < b.summary.source_path;
  });
  if (matches.size() > static_cast<size_t>(k)) {
    matches.resize(static_cast<size_t>(k));
  }
  return matches;
}

Result<obs::Json> KnowledgeStore::WarmStartJson(
    const std::vector<double>& embedding,
    const transfer::WarmStartPolicy& policy, int k) const {
  MutexLock lock(mutex_);
  const std::vector<Match> matches = NearestSessionsLocked(embedding, k);
  if (matches.empty()) {
    return Status::NotFound(
        "no stored session matches the query embedding (store has " +
        std::to_string(sessions_.size()) + " session(s))");
  }
  const SessionSummary& donor = matches.front().summary;

  Json::Array match_array;
  match_array.reserve(matches.size());
  for (const Match& match : matches) {
    match_array.push_back(EncodeMatch(match));
  }

  // Good samples: the donor's best configs, filtered by the policy's
  // poor-quantile cut ("mid-quality trials may be good in the new
  // context — keep exploring them instead").
  const double poor_cut =
      SketchQuantile(donor.objective_quantiles, policy.poor_quantile);
  Json::Array good_array;
  for (const StoredSample& sample : donor.good_samples) {
    if (static_cast<int>(good_array.size()) >= policy.good_samples) break;
    if (!donor.objective_quantiles.empty() && sample.objective > poor_cut) {
      continue;
    }
    good_array.push_back(Json(Json::Object{
        {"config", sample.config},
        {"objective", Json(sample.objective)},
        {"failed", Json(false)},
        {"session", Json(donor.session_id)},
    }));
  }

  // Bad samples: the donor's own crash regions, plus — fleet-wide — crash
  // regions from any session that quarantined a worker: a config that took
  // a worker down is worth avoiding under every workload. Objectives are
  // imputed relative to the donor's worst good objective, sign-safely.
  Json::Array bad_array;
  if (policy.replay_bad_samples) {
    double worst_good = 1e6;
    if (!donor.objective_quantiles.empty()) {
      worst_good = donor.objective_quantiles.back();
    }
    const double imputed =
        transfer::ImputedBadObjective(worst_good, policy.bad_penalty);
    std::set<std::string> seen;
    auto add_bad = [&](const SessionSummary& source, bool fleet) {
      for (const StoredSample& sample : source.crash_samples) {
        const std::string key = sample.config.Dump();
        if (!seen.insert(key).second) continue;
        bad_array.push_back(Json(Json::Object{
            {"config", sample.config},
            {"objective", Json(imputed)},
            {"failed", Json(true)},
            {"session", Json(source.session_id)},
            {"fleet", Json(fleet)},
        }));
      }
    };
    add_bad(donor, false);
    for (const auto& [key, summary] : sessions_) {
      if (summary.session_id == donor.session_id) continue;
      if (summary.workers_quarantined > 0) add_bad(summary, true);
    }
  }

  Json::Object payload;
  payload["query"] = Json(Json::Object{
      {"embedding_dims", Json(static_cast<int64_t>(embedding.size()))},
      {"k", Json(int64_t{static_cast<int64_t>(k)})},
      {"sessions_in_store", Json(static_cast<int64_t>(sessions_.size()))},
  });
  payload["matches"] = Json(std::move(match_array));
  payload["good_samples"] = Json(std::move(good_array));
  payload["bad_samples"] = Json(std::move(bad_array));
  payload["policy"] = Json(Json::Object{
      {"good_samples", Json(int64_t{policy.good_samples})},
      {"replay_bad_samples", Json(policy.replay_bad_samples)},
      {"bad_penalty", Json(policy.bad_penalty)},
      {"poor_quantile", Json(policy.poor_quantile)},
  });
  return Json(std::move(payload));
}

obs::Json KnowledgeStore::InspectJson() const {
  MutexLock lock(mutex_);
  Json::Array sessions;
  sessions.reserve(sessions_.size());
  int64_t total_trials = 0;
  int64_t total_failures = 0;
  int64_t with_embedding = 0;
  for (const auto& [key, summary] : sessions_) {
    total_trials += summary.trials;
    total_failures += summary.failures;
    if (!summary.embedding.empty()) ++with_embedding;
    Json::Object row;
    row["session"] = Json(summary.session_id);
    row["source_path"] = Json(summary.source_path);
    row["workload"] = Json(summary.workload);
    row["environment"] = Json(summary.environment);
    row["optimizer"] = Json(summary.optimizer);
    row["finished"] = Json(summary.finished);
    row["trials"] = Json(summary.trials);
    row["failures"] = Json(summary.failures);
    row["workers_quarantined"] = Json(summary.workers_quarantined);
    row["skipped_lines"] = Json(summary.skipped_lines);
    row["good_samples"] =
        Json(static_cast<int64_t>(summary.good_samples.size()));
    row["crash_samples"] =
        Json(static_cast<int64_t>(summary.crash_samples.size()));
    if (summary.best_objective.has_value()) {
      row["best_objective"] = Json(*summary.best_objective);
    }
    sessions.push_back(Json(std::move(row)));
  }
  return Json(Json::Object{
      {"kb_version", Json(kStoreVersion)},
      {"num_sessions", Json(static_cast<int64_t>(sessions_.size()))},
      {"sessions_with_embedding", Json(with_embedding)},
      {"total_trials", Json(total_trials)},
      {"total_failures", Json(total_failures)},
      {"sessions", Json(std::move(sessions))},
  });
}

size_t KnowledgeStore::num_sessions() const {
  MutexLock lock(mutex_);
  return sessions_.size();
}

Result<std::vector<double>> EmbeddingForWorkload(const std::string& name,
                                                 uint64_t seed) {
  for (const workload::Workload& w : workload::StandardWorkloads()) {
    if (w.name == name) return workload::ComputeEmbedding(w, seed);
  }
  return Status::NotFound("unknown workload '" + name +
                          "' (see workload::StandardWorkloads)");
}

}  // namespace kb
}  // namespace autotune
