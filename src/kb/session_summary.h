#ifndef AUTOTUNE_KB_SESSION_SUMMARY_H_
#define AUTOTUNE_KB_SESSION_SUMMARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace autotune {
namespace kb {

/// One journaled configuration the knowledge base keeps for replay: the
/// encoded config (`record::EncodeConfig` shape, {"param": value}), its
/// observed objective (minimize convention, like every journaled
/// observation) and whether the trial crashed.
struct StoredSample {
  obs::Json config;
  double objective = 0.0;
  bool failed = false;
};

/// Everything the fleet knowledge base remembers about one completed (or
/// partially journaled) tuning session — the per-session distillate of a
/// JSONL experiment journal. Good samples are the session's best-k
/// successful configs (ascending objective); crash samples are the configs
/// of failed trials (the crash regions slide 67 replays everywhere).
struct SessionSummary {
  /// Experiment name from `experiment_started` when present, else the
  /// journal's file name stem.
  std::string session_id;

  /// Journal file the summary was built from, plus its size/mtime stamp at
  /// ingest time — the incremental-rescan key (`KnowledgeStore`).
  std::string source_path;
  int64_t source_size = 0;
  int64_t source_mtime = 0;

  std::string environment;  ///< e.g. "simdb-tpcc" (service) or "simdb".
  std::string workload;     ///< Resolved workload name; empty if unknown.
  std::string optimizer;
  bool maximize = false;

  bool finished = false;
  bool degraded = false;
  int64_t trials = 0;
  int64_t failures = 0;
  int64_t workers_quarantined = 0;
  int64_t skipped_lines = 0;
  double total_cost = 0.0;

  /// `workload::ComputeEmbedding` of the resolved workload; empty when the
  /// workload could not be resolved (such sessions are never matched by
  /// nearest-neighbor lookup, only their crash samples travel fleet-wide).
  std::vector<double> embedding;

  std::optional<double> best_objective;

  /// 11-point quantile sketch (q = 0, 0.1, ..., 1.0) of the successful
  /// objectives — lets a query-time `poor_quantile` cut be interpolated
  /// without storing the full history.
  std::vector<double> objective_quantiles;

  std::vector<StoredSample> good_samples;
  std::vector<StoredSample> crash_samples;
};

/// JSON codecs for the durable store file. Encoding is deterministic
/// (sorted keys via obs::Json), so `KnowledgeStore::Save` output diffs
/// cleanly.
obs::Json EncodeSessionSummary(const SessionSummary& summary);
[[nodiscard]] Result<SessionSummary> DecodeSessionSummary(
    const obs::Json& encoded);

}  // namespace kb
}  // namespace autotune

#endif  // AUTOTUNE_KB_SESSION_SUMMARY_H_
