#ifndef AUTOTUNE_RL_QLEARNING_H_
#define AUTOTUNE_RL_QLEARNING_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace autotune {
namespace rl {

/// Options for tabular TD agents.
struct TabularRlOptions {
  double alpha = 0.15;          ///< Learning rate.
  double gamma = 0.9;           ///< Discount.
  double epsilon = 0.3;         ///< Initial exploration rate.
  double epsilon_decay = 0.995; ///< Multiplied per update.
  double epsilon_min = 0.02;
  double initial_q = 0.0;       ///< Optimistic init > 0 boosts exploration.
};

/// Tabular Q-learning / SARSA (tutorial slides 79-80: "Q values Q(s,a) —
/// the expected reward when taking action a at state s"). The workhorse of
/// online knob tuning (CDBTune/QTune lineage): states are discretized
/// system conditions, actions are knob adjustments, rewards are performance
/// improvements.
class QLearningAgent {
 public:
  QLearningAgent(size_t num_states, size_t num_actions, uint64_t seed,
                 TabularRlOptions options = TabularRlOptions());

  /// Epsilon-greedy action for `state`; decays epsilon over time.
  int ChooseAction(size_t state);

  /// Greedy (exploitation-only) action.
  int GreedyAction(size_t state) const;

  /// Q-learning backup: off-policy max over next-state actions.
  void Update(size_t state, int action, double reward, size_t next_state);

  /// SARSA backup: on-policy with the actually chosen next action.
  void UpdateSarsa(size_t state, int action, double reward,
                   size_t next_state, int next_action);

  double Q(size_t state, int action) const;
  double epsilon() const { return epsilon_; }
  size_t num_states() const { return num_states_; }
  size_t num_actions() const { return num_actions_; }

 private:
  double& QRef(size_t state, int action);

  size_t num_states_;
  size_t num_actions_;
  TabularRlOptions options_;
  Rng rng_;
  double epsilon_;
  std::vector<double> table_;
};

/// Actor-critic with linear function approximation over a feature vector
/// (tutorial slide 79: policy pi(s, a) + value V(s)). Softmax policy over
/// discrete actions; TD(0) critic.
struct ActorCriticOptions {
  double actor_alpha = 0.05;
  double critic_alpha = 0.1;
  double gamma = 0.9;
};

class ActorCriticAgent {
 public:
  ActorCriticAgent(size_t feature_dim, size_t num_actions, uint64_t seed,
                   ActorCriticOptions options = ActorCriticOptions());

  /// Samples an action from the softmax policy at `features`.
  int ChooseAction(const std::vector<double>& features);

  /// Most probable action (deployment mode).
  int GreedyAction(const std::vector<double>& features) const;

  /// One TD(0) actor-critic update for the transition
  /// (features, action, reward, next_features).
  void Update(const std::vector<double>& features, int action, double reward,
              const std::vector<double>& next_features);

  /// State-value estimate.
  double Value(const std::vector<double>& features) const;

  /// Action probabilities at `features`.
  std::vector<double> Policy(const std::vector<double>& features) const;

 private:
  size_t feature_dim_;
  size_t num_actions_;
  ActorCriticOptions options_;
  Rng rng_;
  std::vector<double> critic_;                 // V weights.
  std::vector<std::vector<double>> actor_;     // Per-action preferences.
};

}  // namespace rl
}  // namespace autotune

#endif  // AUTOTUNE_RL_QLEARNING_H_
