#include "rl/online_tune.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "optimizers/acquisition.h"

namespace autotune {
namespace rl {

OnlineTuneOptimizer::OnlineTuneOptimizer(const ConfigSpace* space,
                                         uint64_t seed, size_t context_dim,
                                         OnlineTuneOptions options)
    : space_(space),
      rng_(seed),
      context_dim_(context_dim),
      options_(options),
      encoder_(space, SpaceEncoder::CategoricalMode::kOrdinal) {
  AUTOTUNE_CHECK(space != nullptr);
  AUTOTUNE_CHECK(options_.trust_region > 0.0);
  AUTOTUNE_CHECK(options_.safety_threshold > 1.0);
  AUTOTUNE_CHECK(options_.initial_samples >= 1);
}

void OnlineTuneOptimizer::SetBaseline(const Configuration& config,
                                      double objective) {
  AUTOTUNE_CHECK(&config.space() == space_);
  incumbent_ = config;
  incumbent_objective_ = objective;
  baseline_objective_ = objective;
  has_baseline_ = true;
}

const Configuration& OnlineTuneOptimizer::incumbent() const {
  AUTOTUNE_CHECK_MSG(incumbent_.has_value(), "SetBaseline first");
  return *incumbent_;
}

Vector OnlineTuneOptimizer::EncodeWithContext(const Configuration& config,
                                              const Vector& context) const {
  auto encoded = encoder_.Encode(config);
  AUTOTUNE_CHECK(encoded.ok());
  Vector out = std::move(encoded).value();
  AUTOTUNE_CHECK(context.size() == context_dim_);
  for (double c : context) out.push_back(std::clamp(c, 0.0, 1.0));
  return out;
}

Result<Configuration> OnlineTuneOptimizer::Suggest(const Vector& context) {
  if (!has_baseline_) {
    return Status::FailedPrecondition("SetBaseline before Suggest");
  }
  if (context.size() != context_dim_) {
    return Status::InvalidArgument("context has wrong dimension");
  }
  // Warm-up: small random steps around the incumbent (safe by locality).
  if (ys_.size() < static_cast<size_t>(options_.initial_samples)) {
    return space_->Neighbor(*incumbent_, options_.trust_region * 0.5,
                            &rng_);
  }

  // Fit the contextual GP.
  GaussianProcess gp(MakeMaternKernel(2.5, 0.3), GpOptions{});
  Status fit = gp.Fit(xs_, ys_);
  if (!fit.ok()) {
    ++fallbacks_;
    return *incumbent_;
  }

  // Candidates inside the trust region around the incumbent.
  auto incumbent_unit = space_->ToUnit(*incumbent_);
  AUTOTUNE_CHECK(incumbent_unit.ok());
  const double safety_cap =
      baseline_objective_ * options_.safety_threshold;

  double best_score = -std::numeric_limits<double>::infinity();
  std::optional<Configuration> best;
  for (int i = 0; i < options_.num_candidates; ++i) {
    Vector u = *incumbent_unit;
    for (double& coord : u) {
      coord = std::clamp(
          coord + rng_.Uniform(-options_.trust_region,
                               options_.trust_region),
          0.0, 1.0);
    }
    Configuration candidate = space_->FromUnit(u);
    if (!space_->IsFeasible(candidate)) continue;
    const Prediction p =
        gp.Predict(EncodeWithContext(candidate, context));
    // Safety gate: even the PESSIMISTIC estimate (mean + beta sigma) must
    // stay under the cap — the configuration is provably-ish safe.
    const double pessimistic = p.mean + options_.lcb_beta * p.stddev();
    if (pessimistic > safety_cap) {
      ++rejected_unsafe_;
      continue;
    }
    const double score =
        EvaluateAcquisition(AcquisitionKind::kExpectedImprovement,
                            AcquisitionParams{}, p, incumbent_objective_);
    if (score > best_score) {
      best_score = score;
      best = std::move(candidate);
    }
  }
  if (!best.has_value()) {
    ++fallbacks_;
    return *incumbent_;  // Nothing safe: hold position.
  }
  return *best;
}

Status OnlineTuneOptimizer::Observe(const Configuration& config,
                                    const Vector& context,
                                    double objective) {
  if (&config.space() != space_) {
    return Status::InvalidArgument("config from a different space");
  }
  if (context.size() != context_dim_) {
    return Status::InvalidArgument("context has wrong dimension");
  }
  xs_.push_back(EncodeWithContext(config, context));
  ys_.push_back(objective);
  if (!incumbent_.has_value()) {
    incumbent_ = config;
    incumbent_objective_ = objective;
    return Status::OK();
  }
  if (objective < incumbent_objective_) {
    incumbent_ = config;
    incumbent_objective_ = objective;
    options_.trust_region = std::min(
        options_.trust_region * options_.expand, options_.trust_region_max);
  } else if (objective > baseline_objective_ * options_.safety_threshold) {
    // A regression slipped through: shrink the region.
    options_.trust_region = std::max(
        options_.trust_region * options_.contract,
        options_.trust_region_min);
  }
  return Status::OK();
}

}  // namespace rl
}  // namespace autotune
