#include "rl/online_tune.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "optimizers/acquisition.h"

namespace autotune {
namespace rl {

OnlineTuneOptimizer::OnlineTuneOptimizer(const ConfigSpace* space,
                                         uint64_t seed, size_t context_dim,
                                         OnlineTuneOptions options)
    : space_(space),
      rng_(seed),
      context_dim_(context_dim),
      options_(options),
      encoder_(space, SpaceEncoder::CategoricalMode::kOrdinal) {
  AUTOTUNE_CHECK(space != nullptr);
  AUTOTUNE_CHECK(options_.trust_region > 0.0);
  AUTOTUNE_CHECK(options_.safety_threshold > 1.0);
  AUTOTUNE_CHECK(options_.initial_samples >= 1);
}

void OnlineTuneOptimizer::SetBaseline(const Configuration& config,
                                      double objective) {
  AUTOTUNE_CHECK(&config.space() == space_);
  incumbent_ = config;
  incumbent_objective_ = objective;
  baseline_objective_ = objective;
  has_baseline_ = true;
}

const Configuration& OnlineTuneOptimizer::incumbent() const {
  AUTOTUNE_CHECK_MSG(incumbent_.has_value(), "SetBaseline first");
  return *incumbent_;
}

Vector OnlineTuneOptimizer::EncodeWithContext(const Configuration& config,
                                              const Vector& context) const {
  auto encoded = encoder_.Encode(config);
  AUTOTUNE_CHECK(encoded.ok());
  Vector out = std::move(encoded).value();
  AUTOTUNE_CHECK(context.size() == context_dim_);
  for (double c : context) out.push_back(std::clamp(c, 0.0, 1.0));
  return out;
}

Result<Configuration> OnlineTuneOptimizer::Suggest(const Vector& context) {
  if (!has_baseline_) {
    return Status::FailedPrecondition("SetBaseline before Suggest");
  }
  if (context.size() != context_dim_) {
    return Status::InvalidArgument("context has wrong dimension");
  }
  // Warm-up: small random steps around the incumbent (safe by locality).
  if (ys_.size() < static_cast<size_t>(options_.initial_samples)) {
    return space_->Neighbor(*incumbent_, options_.trust_region * 0.5,
                            &rng_);
  }

  // Contextual GP: persistent across calls, fed incrementally in Observe;
  // (re)fit from scratch here only when no current model exists.
  if (gp_fitted_size_ == 0) {
    gp_ = std::make_unique<GaussianProcess>(MakeMaternKernel(2.5, 0.3),
                                            GpOptions{});
    Status fit = gp_->Fit(xs_, ys_);
    if (!fit.ok()) {
      gp_.reset();
      ++fallbacks_;
      return *incumbent_;
    }
    gp_fitted_size_ = ys_.size();
  }

  // Candidates inside the trust region around the incumbent.
  auto incumbent_unit = space_->ToUnit(*incumbent_);
  AUTOTUNE_CHECK(incumbent_unit.ok());
  const double safety_cap =
      baseline_objective_ * options_.safety_threshold;

  std::vector<Configuration> candidates;
  candidates.reserve(static_cast<size_t>(options_.num_candidates));
  for (int i = 0; i < options_.num_candidates; ++i) {
    Vector u = *incumbent_unit;
    for (double& coord : u) {
      coord = std::clamp(
          coord + rng_.Uniform(-options_.trust_region,
                               options_.trust_region),
          0.0, 1.0);
    }
    Configuration candidate = space_->FromUnit(u);
    if (!space_->IsFeasible(candidate)) continue;
    candidates.push_back(std::move(candidate));
  }
  if (candidates.empty()) {
    ++fallbacks_;
    return *incumbent_;  // Nothing safe: hold position.
  }
  // Batched posterior over the pool, then an allocation-free gate+score
  // loop (numerically identical to the old per-point path).
  candidate_features_.Resize(candidates.size(), xs_[0].size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    candidate_features_.SetRow(i, EncodeWithContext(candidates[i], context));
  }
  const PredictionBatch predictions =
      gp_->PredictBatch(candidate_features_);
  EvaluateAcquisitionBatch(AcquisitionKind::kExpectedImprovement,
                           AcquisitionParams{}, predictions,
                           incumbent_objective_, {}, &candidate_scores_);
  double best_score = -std::numeric_limits<double>::infinity();
  std::optional<size_t> best;
  for (size_t i = 0; i < candidates.size(); ++i) {
    // Safety gate: even the PESSIMISTIC estimate (mean + beta sigma) must
    // stay under the cap — the configuration is provably-ish safe.
    const Prediction p = predictions.At(i);
    const double pessimistic = p.mean + options_.lcb_beta * p.stddev();
    if (pessimistic > safety_cap) {
      ++rejected_unsafe_;
      continue;
    }
    if (candidate_scores_[i] > best_score) {
      best_score = candidate_scores_[i];
      best = i;
    }
  }
  if (!best.has_value()) {
    ++fallbacks_;
    return *incumbent_;  // Nothing safe: hold position.
  }
  return candidates[*best];
}

Status OnlineTuneOptimizer::Observe(const Configuration& config,
                                    const Vector& context,
                                    double objective) {
  if (&config.space() != space_) {
    return Status::InvalidArgument("config from a different space");
  }
  if (context.size() != context_dim_) {
    return Status::InvalidArgument("context has wrong dimension");
  }
  Vector x = EncodeWithContext(config, context);
  xs_.push_back(x);
  ys_.push_back(objective);
  // Keep the persistent GP current: incremental rank-1 absorb, with a full
  // refit (length-scale re-selection) on a geometric schedule.
  if (gp_fitted_size_ > 0) {
    const size_t next_full = std::max(
        static_cast<size_t>(static_cast<double>(gp_fitted_size_) *
                            options_.full_refit_growth),
        gp_fitted_size_ + static_cast<size_t>(options_.full_refit_min_gap));
    if (ys_.size() >= next_full) {
      if (gp_->Fit(xs_, ys_).ok()) {
        gp_fitted_size_ = ys_.size();
      } else {
        gp_.reset();
        gp_fitted_size_ = 0;  // Next Suggest refits from scratch.
      }
    } else if (!gp_->Observe(x, objective).ok()) {
      gp_.reset();
      gp_fitted_size_ = 0;
    }
  }
  if (!incumbent_.has_value()) {
    incumbent_ = config;
    incumbent_objective_ = objective;
    return Status::OK();
  }
  if (objective < incumbent_objective_) {
    incumbent_ = config;
    incumbent_objective_ = objective;
    options_.trust_region = std::min(
        options_.trust_region * options_.expand, options_.trust_region_max);
  } else if (objective > baseline_objective_ * options_.safety_threshold) {
    // A regression slipped through: shrink the region.
    options_.trust_region = std::max(
        options_.trust_region * options_.contract,
        options_.trust_region_min);
  }
  return Status::OK();
}

}  // namespace rl
}  // namespace autotune
