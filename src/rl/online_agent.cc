#include "rl/online_agent.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace autotune {
namespace rl {

OnlineTuningAgent::OnlineTuningAgent(Environment* env,
                                     OnlineAgentOptions options,
                                     uint64_t seed)
    : env_(env),
      options_(std::move(options)),
      rng_(seed),
      current_(env->space().Default()) {
  AUTOTUNE_CHECK(env != nullptr);
  AUTOTUNE_CHECK_MSG(!options_.knobs.empty(), "agent needs >= 1 knob");
  AUTOTUNE_CHECK(options_.step > 0.0 && options_.step < 1.0);
  AUTOTUNE_CHECK(options_.perf_buckets >= 2);
  for (const std::string& knob : options_.knobs) {
    auto index = env->space().Index(knob);
    AUTOTUNE_CHECK_MSG(index.ok(), knob.c_str());
    const ParameterType type = env->space().param(*index).type();
    AUTOTUNE_CHECK_MSG(
        type == ParameterType::kFloat || type == ParameterType::kInt,
        "agent knobs must be numeric");
  }
  const size_t num_states =
      static_cast<size_t>(options_.perf_buckets) *
      (options_.context_metric.empty()
           ? 1
           : static_cast<size_t>(options_.context_buckets));
  const size_t num_actions = 2 * options_.knobs.size() + 1;  // +/- per knob.
  agent_ = std::make_unique<QLearningAgent>(num_states, num_actions,
                                            seed ^ 0xabcdULL, options_.rl);
}

size_t OnlineTuningAgent::EncodeState(
    double objective, const std::map<std::string, double>& metrics) const {
  // Performance bucket: objective relative to the best seen.
  static const double kThresholds[] = {1.05, 1.2, 1.5, 2.0, 4.0, 8.0};
  const double ratio =
      has_best_ ? objective / std::max(best_objective_, 1e-12) : 1.0;
  int perf = 0;
  const int max_perf = options_.perf_buckets - 1;
  for (int i = 0; i < max_perf && i < 6; ++i) {
    if (ratio > kThresholds[i]) perf = i + 1;
  }
  size_t state = static_cast<size_t>(std::min(perf, max_perf));
  if (!options_.context_metric.empty()) {
    double signal = 0.0;
    auto it = metrics.find(options_.context_metric);
    if (it != metrics.end()) signal = it->second;
    signal = std::clamp(signal, 0.0, 1.0);
    int bucket = std::min(options_.context_buckets - 1,
                          static_cast<int>(signal *
                                           options_.context_buckets));
    state = state * static_cast<size_t>(options_.context_buckets) +
            static_cast<size_t>(bucket);
  }
  return state;
}

Configuration OnlineTuningAgent::ApplyAction(int action) const {
  if (action == 0) return current_;  // No-op.
  const size_t knob_index = static_cast<size_t>(action - 1) / 2;
  const bool increase = (action - 1) % 2 == 0;
  auto unit = env_->space().ToUnit(current_);
  AUTOTUNE_CHECK(unit.ok());
  Vector u = *unit;
  auto param_index = env_->space().Index(options_.knobs[knob_index]);
  AUTOTUNE_CHECK(param_index.ok());
  double& coord = u[*param_index];
  coord = std::clamp(coord + (increase ? options_.step : -options_.step),
                     0.0, 1.0);
  return env_->space().FromUnit(u);
}

OnlineTuningAgent::StepResult OnlineTuningAgent::Step() {
  StepResult result;
  ++steps_;
  BenchmarkResult bench = env_->Run(current_, 1.0, &rng_);
  double objective;
  if (bench.crashed) {
    // Crash in production: heavy penalty, fall back to the best seen x 4.
    objective = has_best_ ? best_objective_ * 4.0 : 1e9;
  } else {
    auto it = bench.metrics.find(env_->objective_metric());
    AUTOTUNE_CHECK(it != bench.metrics.end());
    objective = env_->minimize() ? it->second : -it->second;
  }
  result.objective = objective;

  if (!has_best_ || objective < best_objective_) {
    best_objective_ = objective;
    has_best_ = true;
  }
  const size_t state = EncodeState(objective, bench.metrics);
  result.state = static_cast<int>(state);

  // Learn from the previous transition.
  if (prev_state_ >= 0) {
    // Reward: relative improvement of the objective (positive = better).
    const double scale = std::max(std::abs(prev_objective_), 1e-12);
    const double reward = (prev_objective_ - objective) / scale;
    result.reward = reward;
    agent_->Update(static_cast<size_t>(prev_state_), prev_action_, reward,
                   state);
  }

  // Act.
  const int action = agent_->ChooseAction(state);
  result.action = action;
  Configuration next = ApplyAction(action);
  result.config_changed = !(next == current_);
  current_ = next;

  prev_state_ = static_cast<int>(state);
  prev_action_ = action;
  prev_objective_ = objective;
  return result;
}

void OnlineTuningAgent::ResetTo(const Configuration& config) {
  AUTOTUNE_CHECK(&config.space() == &env_->space());
  current_ = config;
  // The transition across a forced reset is not the agent's doing; do not
  // learn from it.
  prev_state_ = -1;
  prev_action_ = -1;
}

SafetyGuardrail::SafetyGuardrail(double baseline_objective,
                                 GuardrailOptions options)
    : options_(options), baseline_(baseline_objective) {
  AUTOTUNE_CHECK(options_.regression_threshold > 1.0);
  AUTOTUNE_CHECK(options_.window >= 1);
}

bool SafetyGuardrail::ShouldRollback(double objective) {
  if (objective > baseline_ * options_.regression_threshold) {
    ++regressions_;
    ++consecutive_;
    if (consecutive_ >= options_.window) {
      ++rollbacks_;
      consecutive_ = 0;
      return true;
    }
  } else {
    consecutive_ = 0;
  }
  return false;
}

void SafetyGuardrail::UpdateBaseline(double baseline_objective) {
  baseline_ = baseline_objective;
}

}  // namespace rl
}  // namespace autotune
