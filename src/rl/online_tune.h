#ifndef AUTOTUNE_RL_ONLINE_TUNE_H_
#define AUTOTUNE_RL_ONLINE_TUNE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "space/encoding.h"
#include "surrogate/gaussian_process.h"

namespace autotune {
namespace rl {

/// Options for `OnlineTuneOptimizer`.
struct OnlineTuneOptions {
  /// Initial unit-space radius of the trust region around the incumbent
  /// ("iteratively optimizes subspaces around the best-known
  /// configuration").
  double trust_region = 0.15;
  double trust_region_min = 0.03;
  double trust_region_max = 0.5;
  double expand = 1.3;    ///< On improvement.
  double contract = 0.7;  ///< On regression.

  /// Safety: a candidate is explored only if its LOWER confidence bound
  /// does not exceed `safety_threshold x baseline` ("assessing safety via
  /// lower-bound estimates"). Here higher objective = worse, so the bound
  /// checked is mean - beta * stddev <= threshold * baseline... see
  /// implementation note: we require the OPTIMISTIC bound to be safe AND
  /// use the pessimistic bound to quantify risk.
  double safety_threshold = 1.3;
  double lcb_beta = 1.0;

  /// Random (safe) warm-up suggestions near the incumbent before the model
  /// kicks in.
  int initial_samples = 5;
  int num_candidates = 256;

  /// The contextual GP absorbs observations incrementally; a full refit
  /// (length-scale re-selection) fires when the history reaches
  /// max(last_fit * full_refit_growth, last_fit + full_refit_min_gap),
  /// keeping per-step cost amortized O(n²) instead of O(n³).
  double full_refit_growth = 1.5;
  int full_refit_min_gap = 8;
};

/// OnlineTune-style safe contextual Bayesian optimization (tutorial slides
/// 82-84): tune a production system in place by (1) embedding contextual
/// workload features into the surrogate input, so one model serves a
/// changing workload, (2) searching only a trust region around the
/// best-known configuration, and (3) gating exploration with a
/// confidence-bound safety check against a trusted baseline, falling back
/// to the incumbent when nothing is provably safe.
class OnlineTuneOptimizer {
 public:
  /// `space` must outlive the optimizer. `context_dim` is the length of the
  /// context vector supplied at each step (0 = no context).
  OnlineTuneOptimizer(const ConfigSpace* space, uint64_t seed,
                      size_t context_dim,
                      OnlineTuneOptions options = OnlineTuneOptions());

  /// Proposes the next configuration to deploy given the current workload
  /// context. Returns the incumbent when no candidate passes the safety
  /// check (a safe no-op).
  [[nodiscard]] Result<Configuration> Suggest(const Vector& context);

  /// Records the outcome of deploying `config` under `context`.
  [[nodiscard]] Status Observe(const Configuration& config, const Vector& context,
                 double objective);

  /// Declares the trusted baseline objective (e.g. the default config's
  /// measured performance). Must be called before the first Suggest.
  void SetBaseline(const Configuration& config, double objective);

  /// Current incumbent (baseline until something safely better is found).
  const Configuration& incumbent() const;

  double trust_region() const { return options_.trust_region; }
  int suggestions_rejected_unsafe() const { return rejected_unsafe_; }
  int fallbacks_to_incumbent() const { return fallbacks_; }
  size_t num_observations() const { return ys_.size(); }

 private:
  Vector EncodeWithContext(const Configuration& config,
                           const Vector& context) const;

  const ConfigSpace* space_;
  Rng rng_;
  size_t context_dim_;
  OnlineTuneOptions options_;
  SpaceEncoder encoder_;

  std::optional<Configuration> incumbent_;
  double incumbent_objective_ = 0.0;
  double baseline_objective_ = 0.0;
  bool has_baseline_ = false;

  std::vector<Vector> xs_;
  Vector ys_;
  int rejected_unsafe_ = 0;
  int fallbacks_ = 0;

  /// Persistent contextual GP, fed incrementally via `Surrogate::Observe`;
  /// refit from scratch on the geometric schedule above. 0 = no model yet.
  std::unique_ptr<GaussianProcess> gp_;
  size_t gp_fitted_size_ = 0;

  /// Reused candidate buffers for batched prediction.
  Matrix candidate_features_{0, 0};
  Vector candidate_scores_;
};

}  // namespace rl
}  // namespace autotune

#endif  // AUTOTUNE_RL_ONLINE_TUNE_H_
