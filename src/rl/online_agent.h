#ifndef AUTOTUNE_RL_ONLINE_AGENT_H_
#define AUTOTUNE_RL_ONLINE_AGENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/environment.h"
#include "core/observation.h"
#include "rl/qlearning.h"

namespace autotune {
namespace rl {

/// Options for `OnlineTuningAgent`.
struct OnlineAgentOptions {
  /// Names of the numeric, runtime-adjustable knobs the agent controls.
  std::vector<std::string> knobs;

  /// Unit-space step applied by an up/down action.
  double step = 0.12;

  /// Perf-state discretization: buckets of objective relative to the best
  /// seen so far.
  int perf_buckets = 5;

  /// Secondary state signal: buckets of the `context_metric` (captures the
  /// workload; e.g. io_util distinguishes scan- from point-heavy loads).
  std::string context_metric;  ///< Empty = no context signal.
  int context_buckets = 3;

  TabularRlOptions rl;
};

/// The internal online-tuning architecture of tutorial slide 78: an agent
/// embedded with the system continually observes metrics and adjusts
/// runtime knobs. Tabular Q-learning over (performance bucket x workload
/// context bucket) states; actions nudge one knob up/down in unit space (or
/// no-op). Rewards are relative performance improvements, so the agent
/// tracks workload shifts that static offline configs cannot (slide 76).
class OnlineTuningAgent {
 public:
  /// `env` must outlive the agent. Starts at the environment default
  /// configuration.
  OnlineTuningAgent(Environment* env, OnlineAgentOptions options,
                    uint64_t seed);

  /// Outcome of one control step.
  struct StepResult {
    double objective = 0.0;   ///< Observed (minimize convention).
    int state = 0;
    int action = 0;
    double reward = 0.0;
    bool config_changed = false;
  };

  /// Runs one observe -> learn -> act cycle at the current configuration.
  StepResult Step();

  /// The configuration currently deployed.
  const Configuration& current_config() const { return current_; }

  /// Force-deploys a configuration (rollback, warm start).
  void ResetTo(const Configuration& config);

  /// Total control steps taken.
  int steps() const { return steps_; }

  const QLearningAgent& q_agent() const { return *agent_; }

 private:
  size_t EncodeState(double objective,
                     const std::map<std::string, double>& metrics) const;
  Configuration ApplyAction(int action) const;

  Environment* env_;
  OnlineAgentOptions options_;
  Rng rng_;
  std::unique_ptr<QLearningAgent> agent_;
  Configuration current_;
  double best_objective_ = 0.0;
  bool has_best_ = false;
  int prev_state_ = -1;
  int prev_action_ = -1;
  double prev_objective_ = 0.0;
  int steps_ = 0;
};

/// Safety guardrail for online exploration (tutorial slide 84): track the
/// live objective against a trusted baseline; after `window` consecutive
/// observations worse than `regression_threshold x baseline`, declare a
/// regression and demand rollback. Counts regressions and rollbacks so
/// benches can report the safety/optimality trade-off.
struct GuardrailOptions {
  double regression_threshold = 1.3;
  int window = 3;
};

class SafetyGuardrail {
 public:
  SafetyGuardrail(double baseline_objective,
                  GuardrailOptions options = GuardrailOptions());

  /// Feeds one observation; returns true when a rollback should happen
  /// (the consecutive-regression window filled). Resets the window after
  /// signaling.
  bool ShouldRollback(double objective);

  /// Updates the trusted baseline (e.g. after a verified improvement).
  void UpdateBaseline(double baseline_objective);

  int regressions() const { return regressions_; }
  int rollbacks() const { return rollbacks_; }
  double baseline() const { return baseline_; }

 private:
  GuardrailOptions options_;
  double baseline_;
  int consecutive_ = 0;
  int regressions_ = 0;
  int rollbacks_ = 0;
};

}  // namespace rl
}  // namespace autotune

#endif  // AUTOTUNE_RL_ONLINE_AGENT_H_
