#ifndef AUTOTUNE_RL_CONTEXTUAL_BANDIT_H_
#define AUTOTUNE_RL_CONTEXTUAL_BANDIT_H_

#include <memory>
#include <vector>

#include "optimizers/bandit.h"

namespace autotune {
namespace rl {

/// OPPerTune-style contextual hybrid bandit (tutorial slides 78, 82): a
/// context id (e.g. job type x request-rate bucket, produced by an
/// AutoScoper-like router) selects a dedicated bandit over the shared arm
/// set, so each context converges to its own best configuration while
/// contexts with the same optimum don't interfere.
class ContextualBandit {
 public:
  /// One bandit per context in [0, num_contexts), all over `arms`.
  ContextualBandit(const ConfigSpace* space, uint64_t seed,
                   std::vector<Configuration> arms, size_t num_contexts,
                   BanditOptions options = {});

  size_t num_contexts() const { return bandits_.size(); }
  size_t num_arms() const { return arms_.size(); }

  /// Suggests a configuration for the given context.
  [[nodiscard]] Result<Configuration> Suggest(size_t context);

  /// Reports the observed objective (minimize) for a configuration played
  /// in `context`.
  [[nodiscard]] Status Observe(size_t context, const Configuration& config,
                 double objective);

  /// The bandit serving `context` (diagnostics).
  const BanditOptimizer& bandit(size_t context) const;

 private:
  std::vector<Configuration> arms_;
  std::vector<std::unique_ptr<BanditOptimizer>> bandits_;
};

}  // namespace rl
}  // namespace autotune

#endif  // AUTOTUNE_RL_CONTEXTUAL_BANDIT_H_
