#include "rl/contextual_bandit.h"

#include "common/check.h"

namespace autotune {
namespace rl {

ContextualBandit::ContextualBandit(const ConfigSpace* space, uint64_t seed,
                                   std::vector<Configuration> arms,
                                   size_t num_contexts,
                                   BanditOptions options)
    : arms_(std::move(arms)) {
  AUTOTUNE_CHECK(num_contexts >= 1);
  AUTOTUNE_CHECK(!arms_.empty());
  bandits_.reserve(num_contexts);
  for (size_t c = 0; c < num_contexts; ++c) {
    bandits_.push_back(std::make_unique<BanditOptimizer>(
        space, seed + c * 7919ULL, arms_, options));
  }
}

Result<Configuration> ContextualBandit::Suggest(size_t context) {
  if (context >= bandits_.size()) {
    return Status::InvalidArgument("context out of range");
  }
  return bandits_[context]->Suggest();
}

Status ContextualBandit::Observe(size_t context, const Configuration& config,
                                 double objective) {
  if (context >= bandits_.size()) {
    return Status::InvalidArgument("context out of range");
  }
  return bandits_[context]->Observe(Observation(config, objective));
}

const BanditOptimizer& ContextualBandit::bandit(size_t context) const {
  AUTOTUNE_CHECK(context < bandits_.size());
  return *bandits_[context];
}

}  // namespace rl
}  // namespace autotune
