#include "rl/qlearning.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace autotune {
namespace rl {

QLearningAgent::QLearningAgent(size_t num_states, size_t num_actions,
                               uint64_t seed, TabularRlOptions options)
    : num_states_(num_states),
      num_actions_(num_actions),
      options_(options),
      rng_(seed),
      epsilon_(options.epsilon),
      table_(num_states * num_actions, options.initial_q) {
  AUTOTUNE_CHECK(num_states >= 1);
  AUTOTUNE_CHECK(num_actions >= 1);
}

double& QLearningAgent::QRef(size_t state, int action) {
  AUTOTUNE_CHECK(state < num_states_);
  AUTOTUNE_CHECK(action >= 0 && static_cast<size_t>(action) < num_actions_);
  return table_[state * num_actions_ + static_cast<size_t>(action)];
}

double QLearningAgent::Q(size_t state, int action) const {
  AUTOTUNE_CHECK(state < num_states_);
  AUTOTUNE_CHECK(action >= 0 && static_cast<size_t>(action) < num_actions_);
  return table_[state * num_actions_ + static_cast<size_t>(action)];
}

int QLearningAgent::GreedyAction(size_t state) const {
  int best = 0;
  double best_q = Q(state, 0);
  for (size_t a = 1; a < num_actions_; ++a) {
    const double q = Q(state, static_cast<int>(a));
    if (q > best_q) {
      best_q = q;
      best = static_cast<int>(a);
    }
  }
  return best;
}

int QLearningAgent::ChooseAction(size_t state) {
  if (rng_.Bernoulli(epsilon_)) {
    return static_cast<int>(
        rng_.UniformInt(0, static_cast<int64_t>(num_actions_) - 1));
  }
  return GreedyAction(state);
}

void QLearningAgent::Update(size_t state, int action, double reward,
                            size_t next_state) {
  double max_next = Q(next_state, 0);
  for (size_t a = 1; a < num_actions_; ++a) {
    max_next = std::max(max_next, Q(next_state, static_cast<int>(a)));
  }
  double& q = QRef(state, action);
  q += options_.alpha * (reward + options_.gamma * max_next - q);
  epsilon_ = std::max(options_.epsilon_min,
                      epsilon_ * options_.epsilon_decay);
}

void QLearningAgent::UpdateSarsa(size_t state, int action, double reward,
                                 size_t next_state, int next_action) {
  double& q = QRef(state, action);
  q += options_.alpha *
       (reward + options_.gamma * Q(next_state, next_action) - q);
  epsilon_ = std::max(options_.epsilon_min,
                      epsilon_ * options_.epsilon_decay);
}

ActorCriticAgent::ActorCriticAgent(size_t feature_dim, size_t num_actions,
                                   uint64_t seed,
                                   ActorCriticOptions options)
    : feature_dim_(feature_dim),
      num_actions_(num_actions),
      options_(options),
      rng_(seed),
      critic_(feature_dim, 0.0),
      actor_(num_actions, std::vector<double>(feature_dim, 0.0)) {
  AUTOTUNE_CHECK(feature_dim >= 1);
  AUTOTUNE_CHECK(num_actions >= 2);
}

double ActorCriticAgent::Value(const std::vector<double>& features) const {
  AUTOTUNE_CHECK(features.size() == feature_dim_);
  double value = 0.0;
  for (size_t i = 0; i < feature_dim_; ++i) {
    value += critic_[i] * features[i];
  }
  return value;
}

std::vector<double> ActorCriticAgent::Policy(
    const std::vector<double>& features) const {
  AUTOTUNE_CHECK(features.size() == feature_dim_);
  std::vector<double> preferences(num_actions_, 0.0);
  double max_pref = -1e300;
  for (size_t a = 0; a < num_actions_; ++a) {
    for (size_t i = 0; i < feature_dim_; ++i) {
      preferences[a] += actor_[a][i] * features[i];
    }
    max_pref = std::max(max_pref, preferences[a]);
  }
  double total = 0.0;
  for (auto& p : preferences) {
    p = std::exp(p - max_pref);
    total += p;
  }
  for (auto& p : preferences) p /= total;
  return preferences;
}

int ActorCriticAgent::ChooseAction(const std::vector<double>& features) {
  const std::vector<double> pi = Policy(features);
  return static_cast<int>(rng_.Categorical(pi));
}

int ActorCriticAgent::GreedyAction(
    const std::vector<double>& features) const {
  const std::vector<double> pi = Policy(features);
  size_t best = 0;
  for (size_t a = 1; a < pi.size(); ++a) {
    if (pi[a] > pi[best]) best = a;
  }
  return static_cast<int>(best);
}

void ActorCriticAgent::Update(const std::vector<double>& features,
                              int action, double reward,
                              const std::vector<double>& next_features) {
  AUTOTUNE_CHECK(action >= 0 && static_cast<size_t>(action) < num_actions_);
  const double td_error = reward + options_.gamma * Value(next_features) -
                          Value(features);
  for (size_t i = 0; i < feature_dim_; ++i) {
    critic_[i] += options_.critic_alpha * td_error * features[i];
  }
  const std::vector<double> pi = Policy(features);
  for (size_t a = 0; a < num_actions_; ++a) {
    const double grad = (static_cast<int>(a) == action ? 1.0 : 0.0) - pi[a];
    for (size_t i = 0; i < feature_dim_; ++i) {
      actor_[a][i] += options_.actor_alpha * td_error * grad * features[i];
    }
  }
}

}  // namespace rl
}  // namespace autotune
