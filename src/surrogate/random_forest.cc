#include "surrogate/random_forest.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace autotune {

namespace {

struct Moments {
  double mean = 0.0;
  double variance = 0.0;
};

Moments ComputeMoments(const Vector& ys, const std::vector<size_t>& indices,
                       size_t begin, size_t end) {
  Moments m;
  const double n = static_cast<double>(end - begin);
  for (size_t i = begin; i < end; ++i) m.mean += ys[indices[i]];
  m.mean /= n;
  for (size_t i = begin; i < end; ++i) {
    const double d = ys[indices[i]] - m.mean;
    m.variance += d * d;
  }
  m.variance /= n;
  return m;
}

double SseOf(const Vector& ys, const std::vector<size_t>& indices,
             size_t begin, size_t end) {
  const Moments m = ComputeMoments(ys, indices, begin, end);
  return m.variance * static_cast<double>(end - begin);
}

}  // namespace

RandomForestSurrogate::RandomForestSurrogate(RandomForestOptions options)
    : options_(options) {
  AUTOTUNE_CHECK(options_.num_trees >= 1);
  AUTOTUNE_CHECK(options_.min_samples_leaf >= 1);
  AUTOTUNE_CHECK(options_.feature_fraction > 0.0 &&
                 options_.feature_fraction <= 1.0);
  AUTOTUNE_CHECK(options_.max_thresholds >= 1);
}

int RandomForestSurrogate::BuildNode(Tree* tree, const std::vector<Vector>& xs,
                                     const Vector& ys,
                                     std::vector<size_t>* indices,
                                     size_t begin, size_t end, int depth,
                                     Rng* rng) {
  const int node_index = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();
  const Moments moments = ComputeMoments(ys, *indices, begin, end);
  tree->nodes[node_index].mean = moments.mean;
  tree->nodes[node_index].variance = moments.variance;

  const size_t count = end - begin;
  if (count < 2 * static_cast<size_t>(options_.min_samples_leaf) ||
      depth >= options_.max_depth || moments.variance <= 1e-14) {
    return node_index;  // Leaf.
  }

  // Random feature subset.
  const size_t num_try = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(options_.feature_fraction *
                                       static_cast<double>(num_features_))));
  std::vector<size_t> features =
      rng->SampleWithoutReplacement(num_features_, num_try);

  const double parent_sse = SseOf(ys, *indices, begin, end);
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<double> values;
  for (size_t feature : features) {
    values.clear();
    values.reserve(count);
    for (size_t i = begin; i < end; ++i) {
      values.push_back(xs[(*indices)[i]][feature]);
    }
    std::sort(values.begin(), values.end());
    if (values.front() == values.back()) continue;
    // Candidate thresholds: quantile cuts between distinct values.
    const int cuts = std::min<int>(options_.max_thresholds,
                                   static_cast<int>(count) - 1);
    for (int c = 1; c <= cuts; ++c) {
      const size_t pos = count * static_cast<size_t>(c) /
                         static_cast<size_t>(cuts + 1);
      if (pos == 0 || pos >= count) continue;
      const double threshold = 0.5 * (values[pos - 1] + values[pos]);
      if (values[pos - 1] == values[pos]) continue;
      // Partition in a scratch pass to evaluate the split.
      double left_sum = 0.0, left_sq = 0.0;
      double right_sum = 0.0, right_sq = 0.0;
      size_t left_n = 0;
      for (size_t i = begin; i < end; ++i) {
        const double y = ys[(*indices)[i]];
        if (xs[(*indices)[i]][feature] <= threshold) {
          left_sum += y;
          left_sq += y * y;
          ++left_n;
        } else {
          right_sum += y;
          right_sq += y * y;
        }
      }
      const size_t right_n = count - left_n;
      if (left_n < static_cast<size_t>(options_.min_samples_leaf) ||
          right_n < static_cast<size_t>(options_.min_samples_leaf)) {
        continue;
      }
      const double left_sse =
          left_sq - left_sum * left_sum / static_cast<double>(left_n);
      const double right_sse =
          right_sq - right_sum * right_sum / static_cast<double>(right_n);
      const double gain = parent_sse - (left_sse + right_sse);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(feature);
        best_threshold = threshold;
      }
    }
  }

  if (best_feature < 0) return node_index;  // No useful split: leaf.

  // Partition indices in place around the chosen split.
  size_t mid = begin;
  for (size_t i = begin; i < end; ++i) {
    if (xs[(*indices)[i]][static_cast<size_t>(best_feature)] <=
        best_threshold) {
      std::swap((*indices)[i], (*indices)[mid]);
      ++mid;
    }
  }
  if (mid == begin || mid == end) return node_index;  // Degenerate.

  importances_[static_cast<size_t>(best_feature)] += best_gain;
  tree->nodes[node_index].feature = best_feature;
  tree->nodes[node_index].threshold = best_threshold;
  const int left =
      BuildNode(tree, xs, ys, indices, begin, mid, depth + 1, rng);
  tree->nodes[node_index].left = left;
  const int right = BuildNode(tree, xs, ys, indices, mid, end, depth + 1, rng);
  tree->nodes[node_index].right = right;
  return node_index;
}

Status RandomForestSurrogate::FitImpl(const std::vector<Vector>& xs,
                                      const Vector& ys) {
  if (xs.empty()) return Status::InvalidArgument("no observations");
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("xs/ys size mismatch");
  }
  num_features_ = xs[0].size();
  if (num_features_ == 0) {
    return Status::InvalidArgument("zero-dimensional features");
  }
  for (const auto& x : xs) {
    if (x.size() != num_features_) {
      return Status::InvalidArgument("ragged features");
    }
  }
  num_observations_ = xs.size();
  importances_.assign(num_features_, 0.0);
  trees_.clear();
  trees_.resize(static_cast<size_t>(options_.num_trees));
  Rng rng(options_.seed);
  const size_t n = xs.size();
  for (auto& tree : trees_) {
    std::vector<size_t> indices(n);
    if (options_.bootstrap) {
      for (auto& idx : indices) {
        idx = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      }
    } else {
      for (size_t i = 0; i < n; ++i) indices[i] = i;
    }
    BuildNode(&tree, xs, ys, &indices, 0, n, 0, &rng);
  }
  return Status::OK();
}

double RandomForestSurrogate::PredictTree(const Tree& tree, const Vector& x,
                                          double* variance) const {
  int node = 0;
  for (;;) {
    const Node& n = tree.nodes[static_cast<size_t>(node)];
    if (n.feature < 0) {
      *variance = n.variance;
      return n.mean;
    }
    node = x[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                            : n.right;
  }
}

Prediction RandomForestSurrogate::Predict(const Vector& x) const {
  Prediction out;
  if (trees_.empty()) {
    out.mean = 0.0;
    out.variance = 1.0;
    return out;
  }
  AUTOTUNE_CHECK(x.size() == num_features_);
  // Law of total variance: Var = E[leaf var] + Var[leaf mean].
  double sum_mean = 0.0;
  double sum_mean_sq = 0.0;
  double sum_var = 0.0;
  for (const auto& tree : trees_) {
    double leaf_var = 0.0;
    const double leaf_mean = PredictTree(tree, x, &leaf_var);
    sum_mean += leaf_mean;
    sum_mean_sq += leaf_mean * leaf_mean;
    sum_var += leaf_var;
  }
  const double t = static_cast<double>(trees_.size());
  out.mean = sum_mean / t;
  out.variance = std::max(
      0.0, sum_var / t + sum_mean_sq / t - out.mean * out.mean);
  return out;
}

Vector RandomForestSurrogate::FeatureImportances() const {
  Vector normalized = importances_;
  double total = 0.0;
  for (double v : normalized) total += v;
  if (total <= 0.0) return Vector(num_features_, 0.0);
  for (double& v : normalized) v /= total;
  return normalized;
}

}  // namespace autotune
