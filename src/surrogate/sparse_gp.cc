#include "surrogate/sparse_gp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"
#include "math/kmeans.h"

namespace autotune {

namespace {
// Floor for the per-point FITC noise lambda_i = k_ii - q_ii + noise; exact
// arithmetic keeps it >= noise, but roundoff can push it negative when a
// training point coincides with an inducing point.
constexpr double kLambdaFloor = 1e-10;
}  // namespace

SparseGaussianProcess::SparseGaussianProcess(std::unique_ptr<Kernel> kernel,
                                             SparseGpOptions options)
    : kernel_(std::move(kernel)), options_(std::move(options)) {
  AUTOTUNE_CHECK(kernel_ != nullptr);
  AUTOTUNE_CHECK(options_.noise_variance > 0.0);
  AUTOTUNE_CHECK(options_.num_inducing >= 1);
}

std::unique_ptr<SparseGaussianProcess> SparseGaussianProcess::MakeDefault() {
  return std::make_unique<SparseGaussianProcess>(MakeMaternKernel(2.5, 0.3),
                                                 SparseGpOptions{});
}

Status SparseGaussianProcess::BuildModel(double noise_variance) {
  const size_t n = xs_.size();
  const size_t m = inducing_.size();
  // Kuu and its Cholesky factor.
  Matrix kuu(m, m);
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = a; b < m; ++b) {
      const double v = kernel_->Eval(inducing_[a], inducing_[b]);
      kuu(a, b) = v;
      kuu(b, a) = v;
    }
  }
  AUTOTUNE_ASSIGN_OR_RETURN(Matrix luu, CholeskyWithJitter(kuu));
  // Kfu rows, and V = Luu^-1 Kuf column-by-column (one batched solve).
  Matrix kfu(n, m);
  for (size_t i = 0; i < n; ++i) {
    double* row = kfu.RowPtr(i);
    for (size_t a = 0; a < m; ++a) row[a] = kernel_->Eval(xs_[i], inducing_[a]);
  }
  const Matrix v = SolveLowerTriangularBatch(luu, kfu);
  // FITC per-point noise: lambda_i = k_ii - q_ii + noise.
  Vector lambda(n);
  for (size_t i = 0; i < n; ++i) {
    const double* vi = v.RowPtr(i);
    double qff = 0.0;
    for (size_t a = 0; a < m; ++a) qff += vi[a] * vi[a];
    lambda[i] =
        std::max(kernel_->Eval(xs_[i], xs_[i]) - qff + noise_variance,
                 kLambdaFloor);
  }
  // Sigma = Kuu + Kuf diag(lambda)^-1 Kfu, b = Kuf diag(lambda)^-1 y.
  Matrix sigma = kuu;
  Vector b(m, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* ku = kfu.RowPtr(i);
    const double w = 1.0 / lambda[i];
    for (size_t a = 0; a < m; ++a) {
      const double wa = w * ku[a];
      double* srow = sigma.RowPtr(a);
      for (size_t c = 0; c <= a; ++c) srow[c] += wa * ku[c];
      b[a] += wa * ys_std_[i];
    }
  }
  for (size_t a = 0; a < m; ++a) {
    for (size_t c = a + 1; c < m; ++c) sigma(a, c) = sigma(c, a);
  }
  AUTOTUNE_ASSIGN_OR_RETURN(Matrix lsigma, CholeskyWithJitter(sigma));
  Vector beta = CholeskySolve(lsigma, b);
  // FITC LML = -1/2 (y^T Lambda^-1 y - b^T Sigma^-1 b
  //                  + log|Sigma| - log|Kuu| + sum log lambda + n log 2 pi).
  double quad = 0.0;
  double logdet_lambda = 0.0;
  for (size_t i = 0; i < n; ++i) {
    quad += ys_std_[i] * ys_std_[i] / lambda[i];
    logdet_lambda += std::log(lambda[i]);
  }
  lml_ = -0.5 * (quad - Dot(b, beta) + LogDetFromCholesky(lsigma) -
                 LogDetFromCholesky(luu) + logdet_lambda +
                 static_cast<double>(n) * std::log(2.0 * M_PI));
  luu_ = std::move(luu);
  lsigma_ = std::move(lsigma);
  b_ = std::move(b);
  beta_ = std::move(beta);
  fitted_noise_ = noise_variance;
  fitted_ = true;
  return Status::OK();
}

Status SparseGaussianProcess::FitImpl(const std::vector<Vector>& xs,
                                      const Vector& ys) {
  if (xs.empty()) return Status::InvalidArgument("no observations");
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("xs/ys size mismatch");
  }
  const size_t dim = xs[0].size();
  for (const auto& x : xs) {
    if (x.size() != dim) return Status::InvalidArgument("ragged features");
  }
  xs_ = xs;
  y_standardizer_ = FitStandardizer(ys);
  ys_std_.resize(ys.size());
  for (size_t i = 0; i < ys.size(); ++i) {
    ys_std_[i] = y_standardizer_.Apply(ys[i]);
  }

  // Inducing set: k-means centroids with a FIXED seed so the fit is a pure
  // function of the data (resume determinism).
  const size_t m = std::min(options_.num_inducing, xs_.size());
  if (!options_.inducing_override.empty()) {
    inducing_ = options_.inducing_override;
  } else if (m == xs_.size()) {
    inducing_ = xs_;
  } else {
    Rng rng(options_.kmeans_seed);
    KMeansOptions kopts;
    kopts.max_iterations = options_.kmeans_iterations;
    kopts.restarts = 1;
    AUTOTUNE_ASSIGN_OR_RETURN(KMeansResult clusters,
                              KMeans(xs_, m, kopts, &rng));
    inducing_ = std::move(clusters.centroids);
  }

  if (!options_.fit_length_scale || xs_.size() < 3 ||
      options_.length_scale_grid.empty()) {
    return BuildModel(options_.noise_variance);
  }
  double best_lml = -std::numeric_limits<double>::infinity();
  double best_ls = -1.0;
  for (double ls : options_.length_scale_grid) {
    kernel_->SetLengthScale(ls);
    if (!BuildModel(options_.noise_variance).ok()) continue;
    if (lml_ > best_lml) {
      best_lml = lml_;
      best_ls = ls;
    }
  }
  if (best_ls < 0.0) {
    return Status::Internal(
        "sparse GP fit failed for every length scale in the grid");
  }
  kernel_->SetLengthScale(best_ls);
  return BuildModel(options_.noise_variance);
}

Result<SurrogateUpdate> SparseGaussianProcess::Observe(const Vector& x,
                                                       double y) {
  if (!fitted_) return Surrogate::Observe(x, y);
  if (x.size() != xs_[0].size()) {
    return Status::InvalidArgument("dimension mismatch");
  }
  const size_t m = inducing_.size();
  Vector ku(m);
  for (size_t a = 0; a < m; ++a) ku[a] = kernel_->Eval(x, inducing_[a]);
  Vector w;
  SolveLowerTriangularInto(luu_, ku, &w);
  double qff = 0.0;
  for (size_t a = 0; a < m; ++a) qff += w[a] * w[a];
  const double lambda = std::max(
      kernel_->Eval(x, x) - qff + fitted_noise_, kLambdaFloor);
  const double y_std = y_standardizer_.Apply(y);
  // Sigma += lambda^-1 ku ku^T via rank-1 cholupdate; on numerical failure
  // refit from scratch (lsigma_ may be partially mutated, but the refit
  // rebuilds it wholesale).
  Vector update(m);
  const double inv_sqrt_lambda = 1.0 / std::sqrt(lambda);
  for (size_t a = 0; a < m; ++a) update[a] = ku[a] * inv_sqrt_lambda;
  Status rank1 = CholeskyRank1Update(&lsigma_, std::move(update));
  if (!rank1.ok()) {
    fitted_ = false;
    return Surrogate::Observe(x, y);
  }
  const double wy = y_std / lambda;
  for (size_t a = 0; a < m; ++a) b_[a] += wy * ku[a];
  beta_ = CholeskySolve(lsigma_, b_);
  xs_.push_back(x);
  ys_std_.push_back(y_std);
  AppendObservation(x, y);
  return SurrogateUpdate::kIncremental;
}

Prediction SparseGaussianProcess::Predict(const Vector& x) const {
  Prediction out;
  if (!fitted_) {
    out.mean = y_standardizer_.mean;
    out.variance = y_standardizer_.stddev * y_standardizer_.stddev;
    if (out.variance == 0.0) out.variance = 1.0;
    return out;
  }
  const size_t m = inducing_.size();
  Vector ku(m);
  for (size_t a = 0; a < m; ++a) ku[a] = kernel_->Eval(x, inducing_[a]);
  const double mean_std = Dot(ku, beta_);
  // var = k(x,x) - ||Luu^-1 ku||^2 + ||LSigma^-1 ku||^2.
  const Vector wu = SolveLowerTriangular(luu_, ku);
  const Vector ws = SolveLowerTriangular(lsigma_, ku);
  double var_std = kernel_->Eval(x, x) - Dot(wu, wu) + Dot(ws, ws);
  var_std = std::max(var_std, 0.0);
  out.mean = y_standardizer_.Invert(mean_std);
  out.variance = var_std * y_standardizer_.stddev * y_standardizer_.stddev;
  return out;
}

PredictionBatch SparseGaussianProcess::PredictBatch(const Matrix& xs) const {
  PredictionBatch batch;
  const size_t rows = xs.rows();
  batch.Resize(rows);
  if (!fitted_) {
    double prior_var = y_standardizer_.stddev * y_standardizer_.stddev;
    if (prior_var == 0.0) prior_var = 1.0;
    for (size_t r = 0; r < rows; ++r) {
      batch.mean[r] = y_standardizer_.mean;
      batch.variance[r] = prior_var;
    }
    return batch;
  }
  const size_t m = inducing_.size();
  Matrix ku(rows, m);
  Vector self_kernel(rows);
  for (size_t r = 0; r < rows; ++r) {
    const Vector query = xs.Row(r);
    double* row = ku.RowPtr(r);
    for (size_t a = 0; a < m; ++a) row[a] = kernel_->Eval(query, inducing_[a]);
    self_kernel[r] = kernel_->Eval(query, query);
  }
  // Two batched triangular solves cover every candidate.
  const Matrix wu = SolveLowerTriangularBatch(luu_, ku);
  const Matrix ws = SolveLowerTriangularBatch(lsigma_, ku);
  const double sd = y_standardizer_.stddev;
  for (size_t r = 0; r < rows; ++r) {
    // Same shared Dot kernel — and the same multiplication association —
    // as the scalar Predict path: bit-identical results.
    const double* ur = wu.RowPtr(r);
    const double* sr = ws.RowPtr(r);
    const double mean_std = Dot(ku.RowPtr(r), beta_.data(), m);
    const double var_std = std::max(
        self_kernel[r] - Dot(ur, ur, m) + Dot(sr, sr, m), 0.0);
    batch.mean[r] = y_standardizer_.Invert(mean_std);
    batch.variance[r] = var_std * sd * sd;
  }
  return batch;
}

}  // namespace autotune
