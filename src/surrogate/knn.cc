#include "surrogate/knn.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace autotune {

KnnSurrogate::KnnSurrogate(size_t k) : k_(k) { AUTOTUNE_CHECK(k >= 1); }

Status KnnSurrogate::FitImpl(const std::vector<Vector>& xs, const Vector& ys) {
  if (xs.empty()) return Status::InvalidArgument("no observations");
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("xs/ys size mismatch");
  }
  const size_t dim = xs[0].size();
  for (const auto& x : xs) {
    if (x.size() != dim) return Status::InvalidArgument("ragged features");
  }
  xs_ = xs;
  ys_ = ys;
  return Status::OK();
}

Result<SurrogateUpdate> KnnSurrogate::Observe(const Vector& x, double y) {
  if (!xs_.empty() && x.size() != xs_[0].size()) {
    return Status::InvalidArgument("dimension mismatch");
  }
  xs_.push_back(x);
  ys_.push_back(y);
  AppendObservation(x, y);
  return SurrogateUpdate::kIncremental;
}

Prediction KnnSurrogate::Predict(const Vector& x) const {
  Prediction out;
  if (xs_.empty()) {
    out.variance = 1.0;
    return out;
  }
  const size_t k = std::min(k_, xs_.size());
  // Partial selection of the k nearest.
  std::vector<std::pair<double, size_t>> dist(xs_.size());
  for (size_t i = 0; i < xs_.size(); ++i) {
    dist[i] = {SquaredDistance(x, xs_[i]), i};
  }
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k),
                    dist.end());
  double weight_sum = 0.0;
  double mean = 0.0;
  for (size_t j = 0; j < k; ++j) {
    const double w = 1.0 / (1e-9 + std::sqrt(dist[j].first));
    weight_sum += w;
    mean += w * ys_[dist[j].second];
  }
  mean /= weight_sum;
  double spread = 0.0;
  for (size_t j = 0; j < k; ++j) {
    const double d = ys_[dist[j].second] - mean;
    spread += d * d;
  }
  spread /= static_cast<double>(k);
  out.mean = mean;
  // Uncertainty grows with distance to the nearest neighbor.
  out.variance = spread + dist[0].first;
  return out;
}

}  // namespace autotune
