#include "surrogate/gaussian_process.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace autotune {

double Prediction::stddev() const {
  return std::sqrt(std::max(variance, 0.0));
}

GaussianProcess::GaussianProcess(std::unique_ptr<Kernel> kernel,
                                 GpOptions options)
    : kernel_(std::move(kernel)), options_(std::move(options)) {
  AUTOTUNE_CHECK(kernel_ != nullptr);
  AUTOTUNE_CHECK(options_.noise_variance > 0.0);
}

std::unique_ptr<GaussianProcess> GaussianProcess::MakeDefault() {
  return std::make_unique<GaussianProcess>(MakeMaternKernel(2.5, 0.3),
                                           GpOptions{});
}

Status GaussianProcess::FitOnce(double noise_variance) {
  const size_t n = xs_.size();
  Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = kernel_->Eval(xs_[i], xs_[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  k.AddDiagonal(noise_variance);
  AUTOTUNE_ASSIGN_OR_RETURN(chol_, CholeskyWithJitter(k));
  alpha_ = CholeskySolve(chol_, ys_std_);
  // LML = -1/2 y^T alpha - 1/2 log|K| - n/2 log(2 pi).
  lml_ = -0.5 * Dot(ys_std_, alpha_) - 0.5 * LogDetFromCholesky(chol_) -
         0.5 * static_cast<double>(n) * std::log(2.0 * M_PI);
  fitted_noise_ = noise_variance;
  fitted_ = true;
  return Status::OK();
}

Vector GaussianProcess::ScaleInput(const Vector& x) const {
  if (ard_inv_scales_.empty()) return x;
  AUTOTUNE_CHECK(x.size() == ard_inv_scales_.size());
  Vector scaled(x.size());
  for (size_t d = 0; d < x.size(); ++d) {
    scaled[d] = x[d] * ard_inv_scales_[d];
  }
  return scaled;
}

Status GaussianProcess::FitArd(double noise_variance,
                               double base_length_scale) {
  // Work with kernel length scale 1 and fold the isotropic scale into the
  // per-dimension inverse scales, then coordinate-descend on the LML.
  const size_t dim = xs_raw_[0].size();
  ard_inv_scales_.assign(dim, 1.0 / base_length_scale);
  kernel_->SetLengthScale(1.0);
  auto rescale = [this]() {
    for (size_t i = 0; i < xs_raw_.size(); ++i) {
      xs_[i] = ScaleInput(xs_raw_[i]);
    }
  };
  rescale();
  AUTOTUNE_RETURN_IF_ERROR(FitOnce(noise_variance));
  double best_lml = lml_;
  for (int sweep = 0; sweep < options_.ard_sweeps; ++sweep) {
    for (size_t d = 0; d < dim; ++d) {
      const double current = ard_inv_scales_[d];
      double best_scale = current;
      for (double factor : {0.35, 0.6, 1.7, 3.0}) {
        ard_inv_scales_[d] = current * factor;
        rescale();
        if (!FitOnce(noise_variance).ok()) continue;
        if (lml_ > best_lml) {
          best_lml = lml_;
          best_scale = ard_inv_scales_[d];
        }
      }
      ard_inv_scales_[d] = best_scale;
    }
  }
  rescale();
  return FitOnce(noise_variance);
}

Status GaussianProcess::FitImpl(const std::vector<Vector>& xs,
                                const Vector& ys) {
  if (xs.empty()) return Status::InvalidArgument("no observations");
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("xs/ys size mismatch");
  }
  const size_t dim = xs[0].size();
  for (const auto& x : xs) {
    if (x.size() != dim) return Status::InvalidArgument("ragged features");
  }
  ard_inv_scales_.clear();
  xs_raw_ = xs;
  xs_ = xs;
  y_standardizer_ = FitStandardizer(ys);
  ys_std_.resize(ys.size());
  for (size_t i = 0; i < ys.size(); ++i) {
    ys_std_[i] = y_standardizer_.Apply(ys[i]);
  }

  if (!options_.fit_length_scale || xs_.size() < 3) {
    return FitOnce(options_.noise_variance);
  }

  // Model selection: maximize log marginal likelihood over the grids.
  std::vector<double> noise_candidates = options_.noise_grid;
  if (noise_candidates.empty()) {
    noise_candidates.push_back(options_.noise_variance);
  }
  double best_lml = -std::numeric_limits<double>::infinity();
  double best_ls = -1.0;
  double best_noise = options_.noise_variance;
  for (double ls : options_.length_scale_grid) {
    kernel_->SetLengthScale(ls);
    for (double noise : noise_candidates) {
      Status status = FitOnce(noise);
      if (!status.ok()) continue;
      if (lml_ > best_lml) {
        best_lml = lml_;
        best_ls = ls;
        best_noise = noise;
      }
    }
  }
  if (best_ls < 0.0) {
    return Status::Internal("GP fit failed for every hyperparameter choice");
  }
  kernel_->SetLengthScale(best_ls);
  if (options_.fit_ard && xs_.size() >= 8) {
    return FitArd(best_noise, best_ls);
  }
  return FitOnce(best_noise);
}

Result<SurrogateUpdate> GaussianProcess::Observe(const Vector& x, double y) {
  if (!fitted_) {
    // No factor to extend yet: take the base-class full-fit path.
    return Surrogate::Observe(x, y);
  }
  if (x.size() != xs_raw_[0].size()) {
    return Status::InvalidArgument("dimension mismatch");
  }
  const Vector scaled = ScaleInput(x);
  const size_t n = xs_.size();
  Vector k_star(n);
  for (size_t i = 0; i < n; ++i) k_star[i] = kernel_->Eval(scaled, xs_[i]);
  const double diag = kernel_->Eval(scaled, scaled) + fitted_noise_;
  // Hyperparameters and the target standardizer stay frozen between full
  // fits so the update is a pure extension of the existing model.
  Result<Matrix> extended = CholeskyAppendRow(chol_, k_star, diag, 1e-8);
  xs_raw_.push_back(x);
  xs_.push_back(scaled);
  ys_std_.push_back(y_standardizer_.Apply(y));
  if (!extended.ok()) {
    // Numerical drift: refactorize from scratch at the current
    // hyperparameters (jitter handles the near-singular diagonal).
    Status refit = FitOnce(fitted_noise_);
    if (!refit.ok()) {
      xs_raw_.pop_back();
      xs_.pop_back();
      ys_std_.pop_back();
      return refit;
    }
    AppendObservation(x, y);
    return SurrogateUpdate::kRefit;
  }
  chol_ = std::move(extended.value());
  alpha_ = CholeskySolve(chol_, ys_std_);
  lml_ = -0.5 * Dot(ys_std_, alpha_) - 0.5 * LogDetFromCholesky(chol_) -
         0.5 * static_cast<double>(n + 1) * std::log(2.0 * M_PI);
  AppendObservation(x, y);
  return SurrogateUpdate::kIncremental;
}

PredictionBatch GaussianProcess::PredictBatch(const Matrix& xs) const {
  PredictionBatch batch;
  const size_t m = xs.rows();
  batch.Resize(m);
  if (!fitted_) {
    double prior_var = y_standardizer_.stddev * y_standardizer_.stddev;
    if (prior_var == 0.0) prior_var = 1.0;
    for (size_t r = 0; r < m; ++r) {
      batch.mean[r] = y_standardizer_.mean;
      batch.variance[r] = prior_var;
    }
    return batch;
  }
  const size_t n = xs_.size();
  Matrix k_star(m, n);
  Vector self_kernel(m);
  for (size_t r = 0; r < m; ++r) {
    const Vector query = ScaleInput(xs.Row(r));
    double* row = k_star.RowPtr(r);
    for (size_t i = 0; i < n; ++i) row[i] = kernel_->Eval(query, xs_[i]);
    self_kernel[r] = kernel_->Eval(query, query);
  }
  // One batched triangular solve covers every candidate.
  const Matrix v = SolveLowerTriangularBatch(chol_, k_star);
  const double sd = y_standardizer_.stddev;
  for (size_t r = 0; r < m; ++r) {
    // Same shared Dot kernel — and the same multiplication association —
    // as the scalar Predict path: bit-identical results.
    const double* vr = v.RowPtr(r);
    const double mean_std = Dot(k_star.RowPtr(r), alpha_.data(), n);
    const double var_std =
        std::max(self_kernel[r] - Dot(vr, vr, n), 0.0);
    batch.mean[r] = y_standardizer_.Invert(mean_std);
    batch.variance[r] = var_std * sd * sd;
  }
  return batch;
}

Prediction GaussianProcess::Predict(const Vector& x) const {
  Prediction out;
  if (!fitted_) {
    // Weak prior in original units.
    out.mean = y_standardizer_.mean;
    out.variance = y_standardizer_.stddev * y_standardizer_.stddev;
    if (out.variance == 0.0) out.variance = 1.0;
    return out;
  }
  const size_t n = xs_.size();
  const Vector query = ScaleInput(x);
  Vector k_star(n);
  for (size_t i = 0; i < n; ++i) k_star[i] = kernel_->Eval(query, xs_[i]);
  const double mean_std = Dot(k_star, alpha_);
  // var = k(x,x) - ||L^-1 k*||^2.
  const Vector v = SolveLowerTriangular(chol_, k_star);
  double var_std = kernel_->Eval(query, query) - Dot(v, v);
  var_std = std::max(var_std, 0.0);
  out.mean = y_standardizer_.Invert(mean_std);
  out.variance = var_std * y_standardizer_.stddev * y_standardizer_.stddev;
  return out;
}

double GaussianProcess::log_marginal_likelihood() const {
  AUTOTUNE_CHECK_MSG(fitted_, "call Fit first");
  return lml_;
}

Result<Vector> GaussianProcess::SamplePosterior(
    const std::vector<Vector>& points, Rng* rng) const {
  if (!fitted_) return Status::FailedPrecondition("GP not fitted");
  if (points.empty()) return Status::InvalidArgument("no points");
  AUTOTUNE_CHECK(rng != nullptr);
  const size_t m = points.size();
  const size_t n = xs_.size();
  std::vector<Vector> queries;
  queries.reserve(m);
  for (const Vector& p : points) queries.push_back(ScaleInput(p));
  // Posterior mean and covariance at the query points (standardized space).
  Vector mean(m);
  Matrix cross(m, n);  // K(points, xs).
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      cross(i, j) = kernel_->Eval(queries[i], xs_[j]);
    }
    mean[i] = Dot(cross.Row(i), alpha_);
  }
  Matrix cov(m, m);
  // V = L^-1 K(xs, points): column i = L^-1 cross_row(i).
  std::vector<Vector> v_cols(m);
  for (size_t i = 0; i < m; ++i) {
    v_cols[i] = SolveLowerTriangular(chol_, cross.Row(i));
  }
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i; j < m; ++j) {
      const double prior = kernel_->Eval(queries[i], queries[j]);
      const double reduction = Dot(v_cols[i], v_cols[j]);
      const double value = prior - reduction;
      cov(i, j) = value;
      cov(j, i) = value;
    }
  }
  AUTOTUNE_ASSIGN_OR_RETURN(Matrix cov_chol, CholeskyWithJitter(cov, 1e-1));
  Vector z(m);
  for (auto& zi : z) zi = rng->Normal();
  Vector sample(m);
  for (size_t i = 0; i < m; ++i) {
    double s = mean[i];
    for (size_t j = 0; j <= i; ++j) s += cov_chol(i, j) * z[j];
    sample[i] = y_standardizer_.Invert(s);
  }
  return sample;
}

}  // namespace autotune
