#ifndef AUTOTUNE_SURROGATE_MULTI_TASK_GP_H_
#define AUTOTUNE_SURROGATE_MULTI_TASK_GP_H_

#include <memory>
#include <utility>
#include <vector>

#include "math/matrix.h"
#include "math/stats.h"
#include "surrogate/kernel.h"
#include "surrogate/surrogate.h"

namespace autotune {

/// Options for `MultiTaskGp`.
struct MultiTaskGpOptions {
  double noise_variance = 1e-4;
  /// Candidate task correlations for the LML fit (the intrinsic
  /// coregionalization model B = (1-rho) I + rho 11^T).
  std::vector<double> correlation_grid = {0.0, 0.3, 0.6, 0.9};
  /// Candidate length scales for the input kernel.
  std::vector<double> length_scale_grid = {0.1, 0.2, 0.3, 0.5, 0.8};
};

/// Multi-task Gaussian process with a separable (ICM) kernel
/// K((i, x), (j, x')) = B(i, j) * K_x(x, x')  (tutorial slide 59:
/// "exploit the correlations between f_1(x) ... f_k(x)" with separable
/// multi-output kernels). Observations from one task inform predictions
/// for the others in proportion to the learned task correlation, which is
/// selected — together with the input length scale — by maximizing the log
/// marginal likelihood. Targets are standardized per task.
class MultiTaskGp {
 public:
  MultiTaskGp(size_t num_tasks,
              MultiTaskGpOptions options = MultiTaskGpOptions());

  /// Fits to observations: `tasks[i]` is the task index of (`xs[i]`,
  /// `ys[i]`). Every task index must be < num_tasks; at least one
  /// observation overall is required (tasks may be empty).
  [[nodiscard]] Status Fit(const std::vector<size_t>& tasks, const std::vector<Vector>& xs,
             const Vector& ys);

  /// Posterior prediction for `task` at `x`.
  Prediction Predict(size_t task, const Vector& x) const;

  /// The fitted task correlation rho (0 = independent tasks).
  double task_correlation() const { return fitted_rho_; }

  /// Log marginal likelihood of the fitted model.
  double log_marginal_likelihood() const { return lml_; }

  size_t num_tasks() const { return num_tasks_; }
  size_t num_observations() const { return xs_.size(); }

 private:
  [[nodiscard]] Status FitOnce(double rho, double length_scale);
  double TaskCov(size_t a, size_t b, double rho) const;

  size_t num_tasks_;
  MultiTaskGpOptions options_;
  std::unique_ptr<Kernel> input_kernel_;

  std::vector<size_t> tasks_;
  std::vector<Vector> xs_;
  Vector ys_std_;
  std::vector<Standardizer> task_standardizers_;

  bool fitted_ = false;
  double fitted_rho_ = 0.0;
  Matrix chol_{0, 0};
  Vector alpha_;
  double lml_ = 0.0;
};

}  // namespace autotune

#endif  // AUTOTUNE_SURROGATE_MULTI_TASK_GP_H_
