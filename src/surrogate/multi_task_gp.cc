#include "surrogate/multi_task_gp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace autotune {

MultiTaskGp::MultiTaskGp(size_t num_tasks, MultiTaskGpOptions options)
    : num_tasks_(num_tasks),
      options_(options),
      input_kernel_(MakeMaternKernel(2.5, 0.3)) {
  AUTOTUNE_CHECK(num_tasks >= 1);
  AUTOTUNE_CHECK(options_.noise_variance > 0.0);
  AUTOTUNE_CHECK(!options_.correlation_grid.empty());
  AUTOTUNE_CHECK(!options_.length_scale_grid.empty());
}

double MultiTaskGp::TaskCov(size_t a, size_t b, double rho) const {
  return a == b ? 1.0 : rho;
}

Status MultiTaskGp::FitOnce(double rho, double length_scale) {
  input_kernel_->SetLengthScale(length_scale);
  const size_t n = xs_.size();
  Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = TaskCov(tasks_[i], tasks_[j], rho) *
                       input_kernel_->Eval(xs_[i], xs_[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  k.AddDiagonal(options_.noise_variance);
  AUTOTUNE_ASSIGN_OR_RETURN(chol_, CholeskyWithJitter(k));
  alpha_ = CholeskySolve(chol_, ys_std_);
  lml_ = -0.5 * Dot(ys_std_, alpha_) - 0.5 * LogDetFromCholesky(chol_) -
         0.5 * static_cast<double>(n) * std::log(2.0 * M_PI);
  fitted_rho_ = rho;
  fitted_ = true;
  return Status::OK();
}

Status MultiTaskGp::Fit(const std::vector<size_t>& tasks,
                        const std::vector<Vector>& xs, const Vector& ys) {
  if (xs.empty()) return Status::InvalidArgument("no observations");
  if (tasks.size() != xs.size() || xs.size() != ys.size()) {
    return Status::InvalidArgument("tasks/xs/ys size mismatch");
  }
  const size_t dim = xs[0].size();
  for (const auto& x : xs) {
    if (x.size() != dim) return Status::InvalidArgument("ragged features");
  }
  for (size_t task : tasks) {
    if (task >= num_tasks_) {
      return Status::OutOfRange("task index " + std::to_string(task) +
                                " >= num_tasks");
    }
  }
  tasks_ = tasks;
  xs_ = xs;
  // Per-task standardization so tasks with different scales coexist.
  task_standardizers_.assign(num_tasks_, Standardizer{});
  for (size_t t = 0; t < num_tasks_; ++t) {
    std::vector<double> task_ys;
    for (size_t i = 0; i < ys.size(); ++i) {
      if (tasks[i] == t) task_ys.push_back(ys[i]);
    }
    if (!task_ys.empty()) {
      task_standardizers_[t] = FitStandardizer(task_ys);
    }
  }
  ys_std_.resize(ys.size());
  for (size_t i = 0; i < ys.size(); ++i) {
    ys_std_[i] = task_standardizers_[tasks[i]].Apply(ys[i]);
  }

  double best_lml = -std::numeric_limits<double>::infinity();
  double best_rho = 0.0;
  double best_ls = options_.length_scale_grid.front();
  for (double rho : options_.correlation_grid) {
    for (double ls : options_.length_scale_grid) {
      Status status = FitOnce(rho, ls);
      if (!status.ok()) continue;
      if (lml_ > best_lml) {
        best_lml = lml_;
        best_rho = rho;
        best_ls = ls;
      }
    }
  }
  if (!std::isfinite(best_lml)) {
    return Status::Internal("multi-task GP fit failed on every grid point");
  }
  return FitOnce(best_rho, best_ls);
}

Prediction MultiTaskGp::Predict(size_t task, const Vector& x) const {
  AUTOTUNE_CHECK(task < num_tasks_);
  Prediction out;
  if (!fitted_) {
    out.variance = 1.0;
    return out;
  }
  const size_t n = xs_.size();
  Vector k_star(n);
  for (size_t i = 0; i < n; ++i) {
    k_star[i] = TaskCov(task, tasks_[i], fitted_rho_) *
                input_kernel_->Eval(x, xs_[i]);
  }
  const double mean_std = Dot(k_star, alpha_);
  const Vector v = SolveLowerTriangular(chol_, k_star);
  double var_std = input_kernel_->Eval(x, x) - Dot(v, v);
  var_std = std::max(var_std, 0.0);
  const Standardizer& st = task_standardizers_[task];
  out.mean = st.Invert(mean_std);
  out.variance = var_std * st.stddev * st.stddev;
  return out;
}

}  // namespace autotune
