#ifndef AUTOTUNE_SURROGATE_RANDOM_FOREST_H_
#define AUTOTUNE_SURROGATE_RANDOM_FOREST_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "math/matrix.h"
#include "surrogate/surrogate.h"

namespace autotune {

/// Options for `RandomForestSurrogate`.
struct RandomForestOptions {
  int num_trees = 30;
  int min_samples_leaf = 2;
  int max_depth = 16;
  /// Fraction of features considered at each split (random subspace).
  double feature_fraction = 0.8;
  /// Bootstrap-resample the training set per tree.
  bool bootstrap = true;
  /// Max split thresholds evaluated per feature (quantile cuts).
  int max_thresholds = 16;
  uint64_t seed = 42;
};

/// Random-forest regression surrogate in the style of SMAC (tutorial slide
/// 50): each tree predicts a leaf mean/variance; across trees the law of
/// total variance yields the epistemic uncertainty Bayesian optimization
/// needs. Handles discrete/one-hot features naturally, which is why SMAC
/// favors it for hybrid spaces (slide 51).
class RandomForestSurrogate : public Surrogate {
 public:
  explicit RandomForestSurrogate(RandomForestOptions options = {});

  Prediction Predict(const Vector& x) const override;

  size_t num_observations() const override { return num_observations_; }

  /// Impurity-decrease feature importances, normalized to sum to 1 (all
  /// zeros before Fit or if no splits occurred). Used for knob-importance
  /// ranking (slide 68).
  Vector FeatureImportances() const;

 protected:
  /// Trees cannot be extended in place, so `Observe` keeps the base-class
  /// default (append + refit from history).
  [[nodiscard]] Status FitImpl(const std::vector<Vector>& xs,
                               const Vector& ys) override;

 private:
  struct Node {
    // Internal node: feature/threshold and child indices; leaf: stats.
    int feature = -1;  // -1 marks a leaf.
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double mean = 0.0;
    double variance = 0.0;
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  int BuildNode(Tree* tree, const std::vector<Vector>& xs, const Vector& ys,
                std::vector<size_t>* indices, size_t begin, size_t end,
                int depth, Rng* rng);
  double PredictTree(const Tree& tree, const Vector& x, double* variance)
      const;

  RandomForestOptions options_;
  std::vector<Tree> trees_;
  size_t num_features_ = 0;
  size_t num_observations_ = 0;
  Vector importances_;
};

}  // namespace autotune

#endif  // AUTOTUNE_SURROGATE_RANDOM_FOREST_H_
