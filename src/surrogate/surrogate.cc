#include "surrogate/surrogate.h"

#include <utility>

namespace autotune {

Status Surrogate::Fit(const std::vector<Vector>& xs, const Vector& ys) {
  AUTOTUNE_RETURN_IF_ERROR(FitImpl(xs, ys));
  xs_history_ = xs;
  ys_history_ = ys;
  return Status::OK();
}

Result<SurrogateUpdate> Surrogate::Observe(const Vector& x, double y) {
  xs_history_.push_back(x);
  ys_history_.push_back(y);
  Status refit = FitImpl(xs_history_, ys_history_);
  if (!refit.ok()) {
    xs_history_.pop_back();
    ys_history_.pop_back();
    return refit;
  }
  return SurrogateUpdate::kRefit;
}

PredictionBatch Surrogate::PredictBatch(const Matrix& xs) const {
  PredictionBatch batch;
  batch.Resize(xs.rows());
  for (size_t i = 0; i < xs.rows(); ++i) {
    const Prediction p = Predict(xs.Row(i));
    batch.mean[i] = p.mean;
    batch.variance[i] = p.variance;
  }
  return batch;
}

void Surrogate::AppendObservation(const Vector& x, double y) {
  xs_history_.push_back(x);
  ys_history_.push_back(y);
}

}  // namespace autotune
