#ifndef AUTOTUNE_SURROGATE_SURROGATE_H_
#define AUTOTUNE_SURROGATE_SURROGATE_H_

#include <vector>

#include "common/status.h"
#include "math/matrix.h"

namespace autotune {

/// Posterior prediction at a single point.
struct Prediction {
  double mean = 0.0;
  double variance = 0.0;

  double stddev() const;
};

/// A regression model of the (expensive, noisy) objective over encoded
/// feature vectors — the statistical model `M` of the tutorial's
/// sequential model-based optimization loop (slide 33). Implementations:
/// `GaussianProcess` (slides 35-44), `RandomForestSurrogate` (SMAC, slide
/// 50), `KnnSurrogate` (baseline).
class Surrogate {
 public:
  virtual ~Surrogate() = default;

  /// Fits the model to observations. `xs` are equal-dimension feature rows,
  /// `ys` the observed objective values. May be called repeatedly as data
  /// accumulates (each call refits from scratch).
  [[nodiscard]] virtual Status Fit(const std::vector<Vector>& xs, const Vector& ys) = 0;

  /// Posterior mean/variance at `x`. Before any successful `Fit`, returns a
  /// weakly-informative prior (mean 0, unit variance).
  virtual Prediction Predict(const Vector& x) const = 0;

  /// Number of observations the model was last fitted to.
  virtual size_t num_observations() const = 0;
};

}  // namespace autotune

#endif  // AUTOTUNE_SURROGATE_SURROGATE_H_
