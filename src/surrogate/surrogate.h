#ifndef AUTOTUNE_SURROGATE_SURROGATE_H_
#define AUTOTUNE_SURROGATE_SURROGATE_H_

#include <vector>

#include "common/status.h"
#include "math/matrix.h"

namespace autotune {

/// Posterior prediction at a single point.
struct Prediction {
  double mean = 0.0;
  double variance = 0.0;

  double stddev() const;
};

/// Structure-of-arrays batch of posterior predictions: `mean[i]` /
/// `variance[i]` belong to row i of the query matrix. Deliberately NOT
/// `std::vector<Prediction>` — the two contiguous arrays let acquisition
/// scoring stream through candidates without gather/scatter, and let
/// implementations fill the batch with batched linear algebra.
struct PredictionBatch {
  Vector mean;
  Vector variance;

  size_t size() const { return mean.size(); }

  /// Row i as a scalar `Prediction` (convenience for non-hot paths).
  Prediction At(size_t i) const { return Prediction{mean[i], variance[i]}; }

  void Resize(size_t n) {
    mean.assign(n, 0.0);
    variance.assign(n, 0.0);
  }
};

/// How a surrogate absorbed one observation in `Observe`.
enum class SurrogateUpdate {
  /// The model state was updated in place (e.g. a rank-1 Cholesky update);
  /// hyperparameters were NOT re-selected.
  kIncremental,
  /// The model refit from scratch (default path, or an incremental update
  /// hit a numerical-drift tolerance and fell back to refactorization).
  kRefit,
};

/// A regression model of the (expensive, noisy) objective over encoded
/// feature vectors — the statistical model `M` of the tutorial's
/// sequential model-based optimization loop (slide 33). Implementations:
/// `GaussianProcess` (slides 35-44), `SparseGaussianProcess` (FITC),
/// `RandomForestSurrogate` (SMAC, slide 50), `KnnSurrogate` (baseline).
///
/// ## Contract
///
/// - `Fit` replaces the training set wholesale and re-selects
///   hyperparameters. It is still REQUIRED when the training set changes
///   non-monotonically (points removed, targets re-scalarized, subset
///   filtered) and is the periodic "ground truth" path that incremental
///   updates are checked against.
/// - `Observe` appends ONE observation. The default implementation refits
///   from the base-class history; implementations that can do better
///   (rank-1 updates) override it and advertise via
///   `SupportsIncrementalObserve`. After a mix of `Fit` and `Observe`
///   calls the model state must equal what a single `Fit` on the full
///   history would produce up to the documented drift tolerance.
/// - Before the first successful `Fit`/`Observe`, `Predict` and
///   `PredictBatch` return a weakly-informative prior (mean 0, unit
///   variance — implementations may substitute their standardizer's prior)
///   rather than failing.
/// - Thread safety: mutation (`Fit`/`Observe`) must be externally
///   serialized with everything else; concurrent const `Predict`/
///   `PredictBatch` calls are safe with each other.
class Surrogate {
 public:
  virtual ~Surrogate() = default;

  /// Fits the model to observations. `xs` are equal-dimension feature rows,
  /// `ys` the observed objective values. May be called repeatedly as data
  /// accumulates (each call refits from scratch). On success the base class
  /// retains a copy of (xs, ys) as the observation history that default
  /// `Observe` implementations extend.
  [[nodiscard]] Status Fit(const std::vector<Vector>& xs, const Vector& ys);

  /// Appends a single observation. Default: append to history and refit
  /// from scratch (always `kRefit`); overrides may update in place and
  /// return `kIncremental`. On error the history is unchanged.
  [[nodiscard]] virtual Result<SurrogateUpdate> Observe(const Vector& x,
                                                        double y);

  /// True when `Observe` has an O(n²)-or-better in-place path, i.e. feeding
  /// points one at a time is cheaper than refitting per point.
  virtual bool SupportsIncrementalObserve() const { return false; }

  /// Posterior mean/variance at `x`. Before any successful fit, returns a
  /// weakly-informative prior (mean 0, unit variance).
  virtual Prediction Predict(const Vector& x) const = 0;

  /// Posterior at every row of `xs` as a structure-of-arrays batch.
  /// Default: loops over `Predict`. Overrides share triangular solves
  /// across the batch but must return bit-identical numbers to the
  /// per-point path (callers rely on this for replay determinism).
  [[nodiscard]] virtual PredictionBatch PredictBatch(const Matrix& xs) const;

  /// Number of observations the model was last fitted to.
  virtual size_t num_observations() const = 0;

 protected:
  /// Implementation hook for `Fit`: refit from scratch on (xs, ys).
  [[nodiscard]] virtual Status FitImpl(const std::vector<Vector>& xs,
                                       const Vector& ys) = 0;

  /// Observation history maintained by the base class (everything passed to
  /// the last successful `Fit` plus every successful `Observe` since).
  const std::vector<Vector>& observed_xs() const { return xs_history_; }
  const Vector& observed_ys() const { return ys_history_; }

  /// Incremental `Observe` overrides call this after a successful in-place
  /// update so a later full `FitImpl` sees the complete history.
  void AppendObservation(const Vector& x, double y);

 private:
  std::vector<Vector> xs_history_;
  Vector ys_history_;
};

}  // namespace autotune

#endif  // AUTOTUNE_SURROGATE_SURROGATE_H_
