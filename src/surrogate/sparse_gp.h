#ifndef AUTOTUNE_SURROGATE_SPARSE_GP_H_
#define AUTOTUNE_SURROGATE_SPARSE_GP_H_

#include <memory>
#include <vector>

#include "math/matrix.h"
#include "math/stats.h"
#include "surrogate/kernel.h"
#include "surrogate/surrogate.h"

namespace autotune {

/// Options for `SparseGaussianProcess`.
struct SparseGpOptions {
  /// Observation-noise variance (standardized-y units).
  double noise_variance = 1e-4;

  /// Number of inducing points m. Fit cost is O(n m²), predict O(m²),
  /// incremental observe O(m²) — independent of history length once n > m.
  size_t num_inducing = 256;

  /// If true, `Fit` selects the kernel length scale by maximizing the FITC
  /// log marginal likelihood over `length_scale_grid`.
  bool fit_length_scale = true;
  std::vector<double> length_scale_grid = {0.1, 0.2, 0.3, 0.5, 1.0};

  /// Seed for the k-means inducing-point selection. Fixed (not wall-clock)
  /// so a refit on the same data reproduces the same model bit-exactly —
  /// required for kill-and-resume determinism.
  uint64_t kmeans_seed = 0xC0FFEE;
  int kmeans_iterations = 10;

  /// Test hook: when non-empty, used verbatim as the inducing set instead
  /// of running k-means.
  std::vector<Vector> inducing_override;
};

/// Sparse (inducing-point) Gaussian process with the FITC approximation:
/// the posterior is summarized through m k-means-seeded inducing points, so
/// fitting is O(n m²) and prediction / incremental updates are O(m²)
/// regardless of history length. This is the bounded-cost fallback
/// `BayesianOptimizer` switches to past its history threshold; for small n
/// prefer the exact `GaussianProcess`.
///
/// The model is a pure function of (data, options): refitting on the same
/// observations reproduces the same posterior bit-exactly, which resume
/// relies on. ARD is not supported (the dense GP keeps that role).
class SparseGaussianProcess : public Surrogate {
 public:
  /// Takes ownership of `kernel` (must not be null).
  SparseGaussianProcess(std::unique_ptr<Kernel> kernel,
                        SparseGpOptions options);

  /// Matérn-5/2 FITC GP with default options.
  static std::unique_ptr<SparseGaussianProcess> MakeDefault();

  /// O(m²) incremental append: rank-1 cholupdate of the inducing posterior
  /// factor plus an information-vector update. Hyperparameters, inducing
  /// set, and target standardizer stay frozen; falls back to a full refit
  /// (`kRefit`) if the update turns numerically unstable.
  [[nodiscard]] Result<SurrogateUpdate> Observe(const Vector& x,
                                                double y) override;
  bool SupportsIncrementalObserve() const override { return true; }

  Prediction Predict(const Vector& x) const override;

  /// Batched FITC posterior: two triangular solves per batch. Bit-identical
  /// to looping `Predict`; rows get the weak prior before the first fit.
  [[nodiscard]] PredictionBatch PredictBatch(const Matrix& xs) const override;

  size_t num_observations() const override { return xs_.size(); }

  /// Inducing points of the current fit (empty before the first fit).
  const std::vector<Vector>& inducing_points() const { return inducing_; }

  /// FITC log marginal likelihood of the last full fit. Not maintained by
  /// incremental `Observe` (reported value is from the preceding fit).
  double log_marginal_likelihood() const { return lml_; }

 protected:
  [[nodiscard]] Status FitImpl(const std::vector<Vector>& xs,
                               const Vector& ys) override;

 private:
  /// Rebuilds Luu/LSigma/b/beta/lml for the current kernel + inducing set.
  [[nodiscard]] Status BuildModel(double noise_variance);

  std::unique_ptr<Kernel> kernel_;
  SparseGpOptions options_;

  std::vector<Vector> xs_;
  Vector ys_std_;
  Standardizer y_standardizer_;

  bool fitted_ = false;
  std::vector<Vector> inducing_;
  Matrix luu_{0, 0};     // chol(Kuu + jitter).
  Matrix lsigma_{0, 0};  // chol(Kuu + Kuf diag(lambda)^-1 Kfu).
  Vector b_;             // Kuf diag(lambda)^-1 y (information vector).
  Vector beta_;          // Sigma^-1 b.
  double fitted_noise_ = 0.0;
  double lml_ = 0.0;
};

}  // namespace autotune

#endif  // AUTOTUNE_SURROGATE_SPARSE_GP_H_
