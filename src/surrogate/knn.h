#ifndef AUTOTUNE_SURROGATE_KNN_H_
#define AUTOTUNE_SURROGATE_KNN_H_

#include <cstddef>
#include <vector>

#include "math/matrix.h"
#include "surrogate/surrogate.h"

namespace autotune {

/// k-nearest-neighbor surrogate: a cheap non-parametric baseline. The mean
/// is the distance-weighted average of the k nearest observations; the
/// variance combines their spread with a distance term so uncertainty grows
/// away from the data. Useful as a control in surrogate comparisons and as
/// a warm-start score estimator for knowledge transfer.
class KnnSurrogate : public Surrogate {
 public:
  explicit KnnSurrogate(size_t k = 5);

  /// O(1) incremental append: kNN has no trained state beyond the data.
  [[nodiscard]] Result<SurrogateUpdate> Observe(const Vector& x,
                                                double y) override;
  bool SupportsIncrementalObserve() const override { return true; }

  Prediction Predict(const Vector& x) const override;

  size_t num_observations() const override { return xs_.size(); }

 protected:
  [[nodiscard]] Status FitImpl(const std::vector<Vector>& xs,
                               const Vector& ys) override;

 private:
  size_t k_;
  std::vector<Vector> xs_;
  Vector ys_;
};

}  // namespace autotune

#endif  // AUTOTUNE_SURROGATE_KNN_H_
