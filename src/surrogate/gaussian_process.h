#ifndef AUTOTUNE_SURROGATE_GAUSSIAN_PROCESS_H_
#define AUTOTUNE_SURROGATE_GAUSSIAN_PROCESS_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "math/matrix.h"
#include "math/stats.h"
#include "surrogate/kernel.h"
#include "surrogate/surrogate.h"

namespace autotune {

/// Options for `GaussianProcess`.
struct GpOptions {
  /// Observation-noise variance added to the kernel diagonal (in
  /// standardized-y units).
  double noise_variance = 1e-4;

  /// If true, `Fit` selects the kernel length scale by maximizing the log
  /// marginal likelihood over `length_scale_grid`.
  bool fit_length_scale = true;

  /// Candidate length scales for the fit (unit-cube feature space).
  std::vector<double> length_scale_grid = {0.05, 0.1, 0.2, 0.3, 0.5,
                                           0.8,  1.2, 2.0};

  /// If non-empty and `fit_length_scale` is set, the noise variance is
  /// jointly selected from this grid.
  std::vector<double> noise_grid = {};

  /// Automatic relevance determination: after the isotropic fit, refine a
  /// PER-DIMENSION length scale by coordinate descent on the marginal
  /// likelihood (`ard_sweeps` passes over the dimensions). Irrelevant
  /// knobs get long scales and stop distorting the posterior. Off by
  /// default (costs ~6x the isotropic fit).
  bool fit_ard = false;
  int ard_sweeps = 2;
};

/// Exact Gaussian-process regression (tutorial slides 35-44): the posterior
/// over functions conditioned on observed (x, y) pairs, computed in closed
/// form via the Cholesky factor of the kernel matrix. Targets are
/// standardized internally so kernel signal variance ~1 is a sensible prior.
class GaussianProcess : public Surrogate {
 public:
  /// Takes ownership of `kernel` (must not be null).
  GaussianProcess(std::unique_ptr<Kernel> kernel, GpOptions options);

  /// Convenience: Matérn-5/2 GP with default options, the standard modern
  /// BO surrogate.
  static std::unique_ptr<GaussianProcess> MakeDefault();

  /// O(n²) incremental append: extends the Cholesky factor by one row
  /// (`CholeskyAppendRow`) and re-solves for alpha, keeping the current
  /// hyperparameters and target standardizer frozen. Falls back to a full
  /// refactorization with the current hyperparameters (returning `kRefit`)
  /// when the appended row would make K + noise*I numerically indefinite.
  /// Hyperparameter re-selection (grids, ARD) still requires `Fit`.
  [[nodiscard]] Result<SurrogateUpdate> Observe(const Vector& x,
                                                double y) override;
  bool SupportsIncrementalObserve() const override { return true; }

  /// Before a successful fit, every row gets the same weakly-informative
  /// prior `Predict` documents. Bit-identical to looping `Predict`.
  [[nodiscard]] PredictionBatch PredictBatch(const Matrix& xs) const override;

  Prediction Predict(const Vector& x) const override;

  size_t num_observations() const override { return xs_.size(); }

  /// Log marginal likelihood of the fitted model (standardized-y space).
  /// CHECK-fails before a successful Fit.
  double log_marginal_likelihood() const;

  /// Per-dimension relevance weights (1/length-scale, normalized input
  /// space) after an ARD fit; empty when ARD was not used. Larger = the
  /// dimension matters more.
  const Vector& ard_inverse_scales() const { return ard_inv_scales_; }

  /// The kernel in use (after fitting, reflects the selected length scale).
  const Kernel& kernel() const { return *kernel_; }

  /// Draws one joint posterior sample at `points` (Thompson sampling over a
  /// candidate set). Requires a successful prior Fit.
  [[nodiscard]] Result<Vector> SamplePosterior(
      const std::vector<Vector>& points, Rng* rng) const;

 protected:
  [[nodiscard]] Status FitImpl(const std::vector<Vector>& xs,
                               const Vector& ys) override;

 private:
  /// Fits with the current kernel; fills chol_/alpha_/lml_.
  [[nodiscard]] Status FitOnce(double noise_variance);

  /// ARD coordinate descent (called by Fit when options_.fit_ard).
  [[nodiscard]] Status FitArd(double noise_variance, double base_length_scale);

  /// Applies the ARD per-dimension scaling (identity if disabled).
  Vector ScaleInput(const Vector& x) const;

  std::unique_ptr<Kernel> kernel_;
  GpOptions options_;

  Vector ard_inv_scales_;    // Empty = ARD disabled.
  std::vector<Vector> xs_raw_;
  std::vector<Vector> xs_;
  Vector ys_std_;  // Standardized targets.
  Standardizer y_standardizer_;

  bool fitted_ = false;
  Matrix chol_{0, 0};  // Cholesky factor of K + noise*I.
  Vector alpha_;       // (K + noise*I)^-1 y.
  double lml_ = 0.0;
  double fitted_noise_ = 0.0;
};

}  // namespace autotune

#endif  // AUTOTUNE_SURROGATE_GAUSSIAN_PROCESS_H_
