#include "surrogate/kernel.h"

#include <cmath>

#include "common/check.h"
#include "common/table.h"

namespace autotune {

void Kernel::SetLengthScale(double /*length_scale*/) {}

namespace {

class RbfKernel : public Kernel {
 public:
  RbfKernel(double length_scale, double signal_variance)
      : length_scale_(length_scale), signal_variance_(signal_variance) {
    AUTOTUNE_CHECK(length_scale > 0.0);
    AUTOTUNE_CHECK(signal_variance > 0.0);
  }

  double Eval(const Vector& a, const Vector& b) const override {
    const double d2 = SquaredDistance(a, b);
    return signal_variance_ *
           std::exp(-d2 / (2.0 * length_scale_ * length_scale_));
  }

  std::unique_ptr<Kernel> Clone() const override {
    return std::make_unique<RbfKernel>(length_scale_, signal_variance_);
  }

  void SetLengthScale(double length_scale) override {
    AUTOTUNE_CHECK(length_scale > 0.0);
    length_scale_ = length_scale;
  }

  std::string ToString() const override {
    return "RBF(l=" + FormatDouble(length_scale_) +
           ", s2=" + FormatDouble(signal_variance_) + ")";
  }

 private:
  double length_scale_;
  double signal_variance_;
};

class MaternKernel : public Kernel {
 public:
  MaternKernel(double nu, double length_scale, double signal_variance)
      : nu_(nu),
        length_scale_(length_scale),
        signal_variance_(signal_variance) {
    AUTOTUNE_CHECK_MSG(nu == 0.5 || nu == 1.5 || nu == 2.5,
                       "Matern supports nu in {0.5, 1.5, 2.5}");
    AUTOTUNE_CHECK(length_scale > 0.0);
    AUTOTUNE_CHECK(signal_variance > 0.0);
  }

  double Eval(const Vector& a, const Vector& b) const override {
    const double d = std::sqrt(SquaredDistance(a, b)) / length_scale_;
    if (nu_ == 0.5) {
      return signal_variance_ * std::exp(-d);
    }
    if (nu_ == 1.5) {
      const double s = std::sqrt(3.0) * d;
      return signal_variance_ * (1.0 + s) * std::exp(-s);
    }
    const double s = std::sqrt(5.0) * d;
    return signal_variance_ * (1.0 + s + s * s / 3.0) * std::exp(-s);
  }

  std::unique_ptr<Kernel> Clone() const override {
    return std::make_unique<MaternKernel>(nu_, length_scale_,
                                          signal_variance_);
  }

  void SetLengthScale(double length_scale) override {
    AUTOTUNE_CHECK(length_scale > 0.0);
    length_scale_ = length_scale;
  }

  std::string ToString() const override {
    return "Matern(nu=" + FormatDouble(nu_) +
           ", l=" + FormatDouble(length_scale_) +
           ", s2=" + FormatDouble(signal_variance_) + ")";
  }

 private:
  double nu_;
  double length_scale_;
  double signal_variance_;
};

class ConstantKernel : public Kernel {
 public:
  explicit ConstantKernel(double value) : value_(value) {
    AUTOTUNE_CHECK(value >= 0.0);
  }

  double Eval(const Vector&, const Vector&) const override { return value_; }

  std::unique_ptr<Kernel> Clone() const override {
    return std::make_unique<ConstantKernel>(value_);
  }

  std::string ToString() const override {
    return "Const(" + FormatDouble(value_) + ")";
  }

 private:
  double value_;
};

class LinearKernel : public Kernel {
 public:
  LinearKernel(double signal_variance, double offset)
      : signal_variance_(signal_variance), offset_(offset) {
    AUTOTUNE_CHECK(signal_variance > 0.0);
  }

  double Eval(const Vector& a, const Vector& b) const override {
    return signal_variance_ * (Dot(a, b) + offset_);
  }

  std::unique_ptr<Kernel> Clone() const override {
    return std::make_unique<LinearKernel>(signal_variance_, offset_);
  }

  std::string ToString() const override {
    return "Linear(s2=" + FormatDouble(signal_variance_) +
           ", c=" + FormatDouble(offset_) + ")";
  }

 private:
  double signal_variance_;
  double offset_;
};

class PeriodicKernel : public Kernel {
 public:
  PeriodicKernel(double length_scale, double period, double signal_variance)
      : length_scale_(length_scale),
        period_(period),
        signal_variance_(signal_variance) {
    AUTOTUNE_CHECK(length_scale > 0.0);
    AUTOTUNE_CHECK(period > 0.0);
    AUTOTUNE_CHECK(signal_variance > 0.0);
  }

  double Eval(const Vector& a, const Vector& b) const override {
    const double d = std::sqrt(SquaredDistance(a, b));
    const double s = std::sin(M_PI * d / period_) / length_scale_;
    return signal_variance_ * std::exp(-2.0 * s * s);
  }

  std::unique_ptr<Kernel> Clone() const override {
    return std::make_unique<PeriodicKernel>(length_scale_, period_,
                                            signal_variance_);
  }

  void SetLengthScale(double length_scale) override {
    AUTOTUNE_CHECK(length_scale > 0.0);
    length_scale_ = length_scale;
  }

  std::string ToString() const override {
    return "Periodic(l=" + FormatDouble(length_scale_) +
           ", p=" + FormatDouble(period_) + ")";
  }

 private:
  double length_scale_;
  double period_;
  double signal_variance_;
};

class SumKernel : public Kernel {
 public:
  SumKernel(std::unique_ptr<Kernel> a, std::unique_ptr<Kernel> b)
      : a_(std::move(a)), b_(std::move(b)) {
    AUTOTUNE_CHECK(a_ != nullptr && b_ != nullptr);
  }

  double Eval(const Vector& x, const Vector& y) const override {
    return a_->Eval(x, y) + b_->Eval(x, y);
  }

  std::unique_ptr<Kernel> Clone() const override {
    return std::make_unique<SumKernel>(a_->Clone(), b_->Clone());
  }

  void SetLengthScale(double length_scale) override {
    a_->SetLengthScale(length_scale);
    b_->SetLengthScale(length_scale);
  }

  std::string ToString() const override {
    return "(" + a_->ToString() + " + " + b_->ToString() + ")";
  }

 private:
  std::unique_ptr<Kernel> a_;
  std::unique_ptr<Kernel> b_;
};

class ProductKernel : public Kernel {
 public:
  ProductKernel(std::unique_ptr<Kernel> a, std::unique_ptr<Kernel> b)
      : a_(std::move(a)), b_(std::move(b)) {
    AUTOTUNE_CHECK(a_ != nullptr && b_ != nullptr);
  }

  double Eval(const Vector& x, const Vector& y) const override {
    return a_->Eval(x, y) * b_->Eval(x, y);
  }

  std::unique_ptr<Kernel> Clone() const override {
    return std::make_unique<ProductKernel>(a_->Clone(), b_->Clone());
  }

  void SetLengthScale(double length_scale) override {
    a_->SetLengthScale(length_scale);
    b_->SetLengthScale(length_scale);
  }

  std::string ToString() const override {
    return "(" + a_->ToString() + " * " + b_->ToString() + ")";
  }

 private:
  std::unique_ptr<Kernel> a_;
  std::unique_ptr<Kernel> b_;
};

}  // namespace

std::unique_ptr<Kernel> MakeRbfKernel(double length_scale,
                                      double signal_variance) {
  return std::make_unique<RbfKernel>(length_scale, signal_variance);
}

std::unique_ptr<Kernel> MakeMaternKernel(double nu, double length_scale,
                                         double signal_variance) {
  return std::make_unique<MaternKernel>(nu, length_scale, signal_variance);
}

std::unique_ptr<Kernel> MakeConstantKernel(double value) {
  return std::make_unique<ConstantKernel>(value);
}

std::unique_ptr<Kernel> MakeLinearKernel(double signal_variance,
                                         double offset) {
  return std::make_unique<LinearKernel>(signal_variance, offset);
}

std::unique_ptr<Kernel> MakePeriodicKernel(double length_scale, double period,
                                           double signal_variance) {
  return std::make_unique<PeriodicKernel>(length_scale, period,
                                          signal_variance);
}

std::unique_ptr<Kernel> MakeSumKernel(std::unique_ptr<Kernel> a,
                                      std::unique_ptr<Kernel> b) {
  return std::make_unique<SumKernel>(std::move(a), std::move(b));
}

std::unique_ptr<Kernel> MakeProductKernel(std::unique_ptr<Kernel> a,
                                          std::unique_ptr<Kernel> b) {
  return std::make_unique<ProductKernel>(std::move(a), std::move(b));
}

}  // namespace autotune
