#ifndef AUTOTUNE_SURROGATE_KERNEL_H_
#define AUTOTUNE_SURROGATE_KERNEL_H_

#include <memory>
#include <string>

#include "math/matrix.h"

namespace autotune {

/// Covariance (kernel) function K(x, x') for Gaussian-process surrogates
/// (tutorial slides 42-44). Kernels are composable: `MakeSum` and
/// `MakeProduct` build the usual algebra, and `SetLengthScale` recursively
/// rescales every stationary component (used by the GP hyperparameter fit).
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Covariance between two (equal-dimension) points.
  virtual double Eval(const Vector& a, const Vector& b) const = 0;

  /// Deep copy.
  virtual std::unique_ptr<Kernel> Clone() const = 0;

  /// Sets the length scale on this kernel and any children that have one.
  /// No-op for scale-free kernels (constant, linear).
  virtual void SetLengthScale(double length_scale);

  /// Human-readable form, e.g. "RBF(l=0.3, s2=1)".
  virtual std::string ToString() const = 0;
};

/// Radial basis function: s2 * exp(-d^2 / (2 l^2)). The scikit-learn default
/// (slide 43).
std::unique_ptr<Kernel> MakeRbfKernel(double length_scale,
                                      double signal_variance = 1.0);

/// Matérn kernel for nu in {0.5, 1.5, 2.5} (the closed-form cases; slide 43
/// calls it "the most popular kernel nowadays"). nu=0.5 is the exponential
/// kernel; nu -> inf approaches RBF.
std::unique_ptr<Kernel> MakeMaternKernel(double nu, double length_scale,
                                         double signal_variance = 1.0);

/// Constant covariance c (models a global offset).
std::unique_ptr<Kernel> MakeConstantKernel(double value);

/// Dot-product (linear) kernel: s2 * (x . x' + offset).
std::unique_ptr<Kernel> MakeLinearKernel(double signal_variance = 1.0,
                                         double offset = 0.0);

/// Exp-sine-squared periodic kernel with the given period and length scale.
std::unique_ptr<Kernel> MakePeriodicKernel(double length_scale, double period,
                                           double signal_variance = 1.0);

/// K = a + b.
std::unique_ptr<Kernel> MakeSumKernel(std::unique_ptr<Kernel> a,
                                      std::unique_ptr<Kernel> b);

/// K = a * b.
std::unique_ptr<Kernel> MakeProductKernel(std::unique_ptr<Kernel> a,
                                          std::unique_ptr<Kernel> b);

}  // namespace autotune

#endif  // AUTOTUNE_SURROGATE_KERNEL_H_
