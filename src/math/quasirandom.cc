#include "math/quasirandom.h"

#include "common/check.h"

namespace autotune {

namespace {

// Enough primes for any realistic configuration-space dimensionality.
constexpr unsigned kPrimes[] = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,
    43,  47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101,
    103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167,
    173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239,
    241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313};
constexpr size_t kNumPrimes = sizeof(kPrimes) / sizeof(kPrimes[0]);

}  // namespace

double RadicalInverse(size_t index, unsigned base) {
  double result = 0.0;
  double fraction = 1.0 / static_cast<double>(base);
  size_t i = index;
  while (i > 0) {
    result += static_cast<double>(i % base) * fraction;
    i /= base;
    fraction /= static_cast<double>(base);
  }
  return result;
}

HaltonSequence::HaltonSequence(size_t dim, size_t skip)
    : dim_(dim), index_(skip + 1) {
  AUTOTUNE_CHECK(dim >= 1);
  AUTOTUNE_CHECK_MSG(dim <= kNumPrimes, "dimension too large for Halton");
}

Vector HaltonSequence::Next() {
  Vector point(dim_);
  for (size_t d = 0; d < dim_; ++d) {
    point[d] = RadicalInverse(index_, kPrimes[d]);
  }
  ++index_;
  return point;
}

}  // namespace autotune
