#include "math/pca.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace autotune {

Result<Pca> Pca::Fit(const std::vector<Vector>& data, size_t num_components,
                     int power_iterations) {
  if (data.size() < 2) return Status::InvalidArgument("need >= 2 rows");
  const size_t dim = data[0].size();
  if (dim == 0) return Status::InvalidArgument("zero-dimensional rows");
  for (const auto& row : data) {
    if (row.size() != dim) return Status::InvalidArgument("ragged rows");
  }
  if (num_components < 1 || num_components > dim) {
    return Status::InvalidArgument("num_components out of range");
  }

  Pca pca;
  pca.mean_.assign(dim, 0.0);
  for (const auto& row : data) {
    for (size_t j = 0; j < dim; ++j) pca.mean_[j] += row[j];
  }
  for (double& m : pca.mean_) m /= static_cast<double>(data.size());

  // Covariance matrix (dim is small for our feature vectors).
  Matrix cov(dim, dim);
  for (const auto& row : data) {
    for (size_t a = 0; a < dim; ++a) {
      const double da = row[a] - pca.mean_[a];
      for (size_t b = a; b < dim; ++b) {
        cov(a, b) += da * (row[b] - pca.mean_[b]);
      }
    }
  }
  for (size_t a = 0; a < dim; ++a) {
    for (size_t b = 0; b < a; ++b) cov(a, b) = cov(b, a);
    for (size_t b = a; b < dim; ++b) {
      cov(a, b) /= static_cast<double>(data.size() - 1);
      if (a != b) cov(b, a) = cov(a, b);
    }
  }

  // Power iteration with deflation.
  Rng rng(12345);
  for (size_t c = 0; c < num_components; ++c) {
    Vector v(dim);
    for (auto& x : v) x = rng.Normal();
    double eigenvalue = 0.0;
    for (int iter = 0; iter < power_iterations; ++iter) {
      Vector next = cov.MultiplyVec(v);
      const double norm = Norm2(next);
      if (norm < 1e-15) break;  // Remaining variance is ~0.
      for (double& x : next) x /= norm;
      eigenvalue = norm;
      v = std::move(next);
    }
    pca.components_.push_back(v);
    pca.explained_variance_.push_back(std::max(eigenvalue, 0.0));
    // Deflate: cov -= lambda v v^T.
    for (size_t a = 0; a < dim; ++a) {
      for (size_t b = 0; b < dim; ++b) {
        cov(a, b) -= eigenvalue * v[a] * v[b];
      }
    }
  }
  return pca;
}

Vector Pca::Transform(const Vector& x) const {
  AUTOTUNE_CHECK(x.size() == mean_.size());
  Vector projected(components_.size());
  for (size_t c = 0; c < components_.size(); ++c) {
    double dot = 0.0;
    for (size_t j = 0; j < mean_.size(); ++j) {
      dot += components_[c][j] * (x[j] - mean_[j]);
    }
    projected[c] = dot;
  }
  return projected;
}

Vector Pca::InverseTransform(const Vector& projected) const {
  AUTOTUNE_CHECK(projected.size() == components_.size());
  Vector x = mean_;
  for (size_t c = 0; c < components_.size(); ++c) {
    for (size_t j = 0; j < mean_.size(); ++j) {
      x[j] += projected[c] * components_[c][j];
    }
  }
  return x;
}

}  // namespace autotune
