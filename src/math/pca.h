#ifndef AUTOTUNE_MATH_PCA_H_
#define AUTOTUNE_MATH_PCA_H_

#include <vector>

#include "common/status.h"
#include "math/matrix.h"

namespace autotune {

/// Principal component analysis via power iteration with deflation — the
/// classical dimensionality reduction for workload embeddings (an
/// alternative to random projection when a corpus is available to fit on).
class Pca {
 public:
  /// Fits `num_components` components (1 <= k <= feature dim) on mean-
  /// centered `data` (>= 2 equal-length rows).
  [[nodiscard]] static Result<Pca> Fit(const std::vector<Vector>& data,
                         size_t num_components, int power_iterations = 100);

  /// Projects a feature vector onto the fitted components.
  Vector Transform(const Vector& x) const;

  /// Reconstructs an approximation of the original vector from its
  /// projection (mean + sum of component contributions).
  Vector InverseTransform(const Vector& projected) const;

  /// Variance captured by each component, largest first.
  const Vector& explained_variance() const { return explained_variance_; }

  size_t num_components() const { return components_.size(); }
  size_t input_dim() const { return mean_.size(); }

 private:
  Pca() = default;

  Vector mean_;
  std::vector<Vector> components_;  // Orthonormal rows.
  Vector explained_variance_;
};

}  // namespace autotune

#endif  // AUTOTUNE_MATH_PCA_H_
