#include "math/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace autotune {

double Mean(const std::vector<double>& xs) {
  AUTOTUNE_CHECK(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = Mean(xs);
  double sum = 0.0;
  for (double x : xs) {
    const double d = x - mean;
    sum += d * d;
  }
  return sum / static_cast<double>(xs.size() - 1);
}

double Stddev(const std::vector<double>& xs) {
  return std::sqrt(Variance(xs));
}

double Min(const std::vector<double>& xs) {
  AUTOTUNE_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  AUTOTUNE_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double Quantile(std::vector<double> xs, double q) {
  AUTOTUNE_CHECK(!xs.empty());
  AUTOTUNE_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Median(std::vector<double> xs) { return Quantile(std::move(xs), 0.5); }

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  AUTOTUNE_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

BootstrapInterval BootstrapMeanCi(const std::vector<double>& xs,
                                  double confidence, size_t resamples,
                                  Rng* rng) {
  AUTOTUNE_CHECK(!xs.empty());
  AUTOTUNE_CHECK(confidence > 0.0 && confidence < 1.0);
  AUTOTUNE_CHECK(resamples > 0);
  AUTOTUNE_CHECK(rng != nullptr);
  std::vector<double> means;
  means.reserve(resamples);
  const int64_t n = static_cast<int64_t>(xs.size());
  for (size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      sum += xs[static_cast<size_t>(rng->UniformInt(0, n - 1))];
    }
    means.push_back(sum / static_cast<double>(n));
  }
  const double tail = (1.0 - confidence) / 2.0;
  BootstrapInterval ci;
  ci.lower = Quantile(means, tail);
  ci.upper = Quantile(means, 1.0 - tail);
  return ci;
}

Standardizer FitStandardizer(const std::vector<double>& xs) {
  Standardizer s;
  if (xs.empty()) return s;
  s.mean = Mean(xs);
  const double sd = Stddev(xs);
  s.stddev = sd > 1e-12 ? sd : 1.0;
  return s;
}

EwmaTracker::EwmaTracker(double alpha) : alpha_(alpha) {
  AUTOTUNE_CHECK(alpha > 0.0 && alpha <= 1.0);
}

void EwmaTracker::Observe(double x) {
  if (count_ == 0) {
    mean_ = x;
    variance_ = 0.0;
  } else {
    const double delta = x - mean_;
    // West (1979) incremental EWMA mean/variance update.
    const double incr = alpha_ * delta;
    mean_ += incr;
    variance_ = (1.0 - alpha_) * (variance_ + delta * incr);
  }
  ++count_;
}

}  // namespace autotune
