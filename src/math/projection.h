#ifndef AUTOTUNE_MATH_PROJECTION_H_
#define AUTOTUNE_MATH_PROJECTION_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "math/matrix.h"

namespace autotune {

/// Random linear embeddings for dimensionality reduction, the core of
/// LlamaTune / HesBO-style low-dimensional search-space tuning (tutorial
/// slide 62): the optimizer searches a d-dimensional box and the projection
/// maps its points into the D-dimensional (D > d) original space.
class RandomProjection {
 public:
  /// Projection families.
  enum class Kind {
    /// Dense Gaussian matrix, entries N(0, 1/d) (REMBO-style).
    kGaussian,
    /// HesBO-style count-sketch: each high dimension copies exactly one low
    /// dimension with a random sign. Preserves box membership exactly.
    kHesbo,
  };

  /// Creates a projection from `low_dim` to `high_dim` (low_dim <= high_dim).
  [[nodiscard]] static Result<RandomProjection> Create(Kind kind, size_t low_dim,
                                         size_t high_dim, Rng* rng);

  size_t low_dim() const { return low_dim_; }
  size_t high_dim() const { return high_dim_; }

  /// Maps a point in the low-dim unit cube [0,1]^d to the high-dim unit cube
  /// [0,1]^D. Internally works in [-1,1] and clips, as LlamaTune does.
  Vector Up(const Vector& low_point) const;

 private:
  RandomProjection(Kind kind, size_t low_dim, size_t high_dim);

  Kind kind_;
  size_t low_dim_;
  size_t high_dim_;
  // Gaussian: row-major high_dim x low_dim matrix.
  std::vector<double> dense_;
  // HesBO: for each high dim, the source low dim and a sign.
  std::vector<size_t> source_;
  std::vector<double> sign_;
};

}  // namespace autotune

#endif  // AUTOTUNE_MATH_PROJECTION_H_
