#ifndef AUTOTUNE_MATH_DISTRIBUTIONS_H_
#define AUTOTUNE_MATH_DISTRIBUTIONS_H_

namespace autotune {

/// Standard normal density phi(x).
double NormalPdf(double x);

/// Standard normal CDF Phi(x), accurate to ~1e-7 (erfc-based).
double NormalCdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation, refined by
/// one Halley step; |error| < 1e-9 on (0, 1)). CHECKs 0 < p < 1.
double NormalQuantile(double p);

}  // namespace autotune

#endif  // AUTOTUNE_MATH_DISTRIBUTIONS_H_
