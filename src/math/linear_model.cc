#include "math/linear_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "math/stats.h"

namespace autotune {

namespace {

struct StandardizedData {
  std::vector<Vector> xs;  // Standardized feature rows.
  Vector ys_centered;      // y minus its mean.
  double y_mean = 0.0;
  Vector means;
  Vector stddevs;
};

Result<StandardizedData> Standardize(const std::vector<Vector>& xs,
                                     const Vector& ys) {
  if (xs.empty()) return Status::InvalidArgument("no training rows");
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("xs/ys size mismatch");
  }
  const size_t dim = xs[0].size();
  if (dim == 0) return Status::InvalidArgument("zero-dimensional features");
  for (const auto& row : xs) {
    if (row.size() != dim) return Status::InvalidArgument("ragged features");
  }
  StandardizedData data;
  data.means.assign(dim, 0.0);
  data.stddevs.assign(dim, 1.0);
  for (size_t j = 0; j < dim; ++j) {
    std::vector<double> column(xs.size());
    for (size_t i = 0; i < xs.size(); ++i) column[i] = xs[i][j];
    const Standardizer s = FitStandardizer(column);
    data.means[j] = s.mean;
    data.stddevs[j] = s.stddev;
  }
  data.xs.reserve(xs.size());
  for (const auto& row : xs) {
    Vector z(dim);
    for (size_t j = 0; j < dim; ++j) {
      z[j] = (row[j] - data.means[j]) / data.stddevs[j];
    }
    data.xs.push_back(std::move(z));
  }
  data.y_mean = Mean(ys);
  data.ys_centered.resize(ys.size());
  for (size_t i = 0; i < ys.size(); ++i) {
    data.ys_centered[i] = ys[i] - data.y_mean;
  }
  return data;
}

LinearModel MakeModel(const StandardizedData& data, Vector weights) {
  LinearModel model;
  model.weights = std::move(weights);
  model.intercept = data.y_mean;
  model.feature_means = data.means;
  model.feature_stddevs = data.stddevs;
  return model;
}

}  // namespace

double LinearModel::Predict(const Vector& x) const {
  AUTOTUNE_CHECK(x.size() == weights.size());
  double y = intercept;
  for (size_t j = 0; j < x.size(); ++j) {
    y += weights[j] * (x[j] - feature_means[j]) / feature_stddevs[j];
  }
  return y;
}

Result<LinearModel> FitRidge(const std::vector<Vector>& xs, const Vector& ys,
                             double lambda) {
  if (lambda < 0.0) return Status::InvalidArgument("negative lambda");
  AUTOTUNE_ASSIGN_OR_RETURN(StandardizedData data, Standardize(xs, ys));
  const size_t dim = data.xs[0].size();
  const size_t n = data.xs.size();
  // Normal equations: (X^T X + lambda I) w = X^T y.
  Matrix gram(dim, dim);
  Vector xty(dim, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      xty[j] += data.xs[i][j] * data.ys_centered[i];
      for (size_t k = j; k < dim; ++k) {
        gram(j, k) += data.xs[i][j] * data.xs[i][k];
      }
    }
  }
  for (size_t j = 0; j < dim; ++j) {
    for (size_t k = 0; k < j; ++k) gram(j, k) = gram(k, j);
  }
  gram.AddDiagonal(lambda + 1e-10);
  AUTOTUNE_ASSIGN_OR_RETURN(Matrix chol, CholeskyWithJitter(gram));
  return MakeModel(data, CholeskySolve(chol, xty));
}

Result<LinearModel> FitLasso(const std::vector<Vector>& xs, const Vector& ys,
                             double lambda, int max_sweeps, double tol) {
  if (lambda < 0.0) return Status::InvalidArgument("negative lambda");
  AUTOTUNE_ASSIGN_OR_RETURN(StandardizedData data, Standardize(xs, ys));
  const size_t dim = data.xs[0].size();
  const size_t n = data.xs.size();

  // Precompute per-feature squared norms for the coordinate updates.
  Vector col_sq(dim, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) col_sq[j] += data.xs[i][j] * data.xs[i][j];
  }

  Vector weights(dim, 0.0);
  Vector residual = data.ys_centered;  // r = y - X w (w starts at 0).
  const double threshold = lambda * static_cast<double>(n);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double max_delta = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      if (col_sq[j] <= 1e-12) continue;
      // rho = X_j . (r + X_j * w_j): correlation of feature j with the
      // residual excluding its own contribution.
      double rho = 0.0;
      for (size_t i = 0; i < n; ++i) {
        rho += data.xs[i][j] * (residual[i] + data.xs[i][j] * weights[j]);
      }
      double new_weight = 0.0;
      if (rho > threshold) {
        new_weight = (rho - threshold) / col_sq[j];
      } else if (rho < -threshold) {
        new_weight = (rho + threshold) / col_sq[j];
      }
      const double delta = new_weight - weights[j];
      if (delta != 0.0) {
        for (size_t i = 0; i < n; ++i) {
          residual[i] -= data.xs[i][j] * delta;
        }
        weights[j] = new_weight;
      }
      max_delta = std::max(max_delta, std::abs(delta));
    }
    if (max_delta < tol) break;
  }
  return MakeModel(data, std::move(weights));
}

Result<std::vector<size_t>> LassoImportanceOrder(
    const std::vector<Vector>& xs, const Vector& ys, int num_lambdas) {
  if (num_lambdas < 2) return Status::InvalidArgument("need >= 2 lambdas");
  AUTOTUNE_ASSIGN_OR_RETURN(StandardizedData data, Standardize(xs, ys));
  const size_t dim = data.xs[0].size();
  const size_t n = data.xs.size();
  // lambda_max: smallest lambda at which all weights are zero.
  double lambda_max = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    double rho = 0.0;
    for (size_t i = 0; i < n; ++i) {
      rho += data.xs[i][j] * data.ys_centered[i];
    }
    lambda_max = std::max(lambda_max, std::abs(rho) / static_cast<double>(n));
  }
  if (lambda_max <= 0.0) {
    // y is constant: no feature matters; return index order.
    std::vector<size_t> order(dim);
    for (size_t j = 0; j < dim; ++j) order[j] = j;
    return order;
  }
  const double lambda_min = lambda_max * 1e-3;
  std::vector<size_t> order;
  std::vector<bool> entered(dim, false);
  for (int k = 0; k < num_lambdas; ++k) {
    const double t =
        static_cast<double>(k) / static_cast<double>(num_lambdas - 1);
    const double lambda =
        lambda_max * std::pow(lambda_min / lambda_max, t) * 0.999;
    AUTOTUNE_ASSIGN_OR_RETURN(LinearModel model, FitLasso(xs, ys, lambda));
    for (size_t j = 0; j < dim; ++j) {
      if (!entered[j] && std::abs(model.weights[j]) > 1e-9) {
        entered[j] = true;
        order.push_back(j);
      }
    }
    if (order.size() == dim) break;
  }
  for (size_t j = 0; j < dim; ++j) {
    if (!entered[j]) order.push_back(j);
  }
  return order;
}

}  // namespace autotune
