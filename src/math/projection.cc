#include "math/projection.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace autotune {

RandomProjection::RandomProjection(Kind kind, size_t low_dim, size_t high_dim)
    : kind_(kind), low_dim_(low_dim), high_dim_(high_dim) {}

Result<RandomProjection> RandomProjection::Create(Kind kind, size_t low_dim,
                                                  size_t high_dim, Rng* rng) {
  if (low_dim == 0 || high_dim == 0) {
    return Status::InvalidArgument("dimensions must be positive");
  }
  if (low_dim > high_dim) {
    return Status::InvalidArgument("low_dim must be <= high_dim");
  }
  AUTOTUNE_CHECK(rng != nullptr);
  RandomProjection p(kind, low_dim, high_dim);
  switch (kind) {
    case Kind::kGaussian: {
      p.dense_.resize(high_dim * low_dim);
      const double scale = 1.0 / std::sqrt(static_cast<double>(low_dim));
      for (auto& entry : p.dense_) entry = rng->Normal() * scale;
      break;
    }
    case Kind::kHesbo: {
      p.source_.resize(high_dim);
      p.sign_.resize(high_dim);
      for (size_t i = 0; i < high_dim; ++i) {
        // Guarantee surjectivity: the first low_dim high dims cover every
        // low dim once; the rest are random.
        p.source_[i] = i < low_dim
                           ? i
                           : static_cast<size_t>(rng->UniformInt(
                                 0, static_cast<int64_t>(low_dim) - 1));
        p.sign_[i] = rng->Bernoulli(0.5) ? 1.0 : -1.0;
      }
      break;
    }
  }
  return p;
}

Vector RandomProjection::Up(const Vector& low_point) const {
  AUTOTUNE_CHECK(low_point.size() == low_dim_);
  Vector high(high_dim_);
  // Map [0,1] -> [-1,1], project, clip, map back.
  Vector centered(low_dim_);
  for (size_t j = 0; j < low_dim_; ++j) {
    centered[j] = 2.0 * low_point[j] - 1.0;
  }
  switch (kind_) {
    case Kind::kGaussian:
      for (size_t i = 0; i < high_dim_; ++i) {
        double sum = 0.0;
        for (size_t j = 0; j < low_dim_; ++j) {
          sum += dense_[i * low_dim_ + j] * centered[j];
        }
        high[i] = sum;
      }
      break;
    case Kind::kHesbo:
      for (size_t i = 0; i < high_dim_; ++i) {
        high[i] = sign_[i] * centered[source_[i]];
      }
      break;
  }
  for (size_t i = 0; i < high_dim_; ++i) {
    high[i] = std::clamp(high[i], -1.0, 1.0) * 0.5 + 0.5;
  }
  return high;
}

}  // namespace autotune
