#include "math/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace autotune {

namespace {

// k-means++ seeding: first center uniform, then proportional to D^2.
std::vector<Vector> SeedCentroids(const std::vector<Vector>& points, size_t k,
                                  Rng* rng) {
  std::vector<Vector> centroids;
  centroids.reserve(k);
  centroids.push_back(
      points[static_cast<size_t>(rng->UniformInt(0, points.size() - 1))]);
  std::vector<double> dist_sq(points.size(),
                              std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    for (size_t i = 0; i < points.size(); ++i) {
      dist_sq[i] = std::min(dist_sq[i],
                            SquaredDistance(points[i], centroids.back()));
    }
    const size_t next = rng->Categorical(dist_sq);
    centroids.push_back(points[next]);
  }
  return centroids;
}

KMeansResult RunLloyd(const std::vector<Vector>& points, size_t k,
                      const KMeansOptions& options, Rng* rng) {
  const size_t dim = points[0].size();
  KMeansResult result;
  result.centroids = SeedCentroids(points, k, rng);
  result.assignment.assign(points.size(), 0);
  double prev_inertia = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    double inertia = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      size_t best = NearestCentroid(result.centroids, points[i]);
      result.assignment[i] = best;
      inertia += SquaredDistance(points[i], result.centroids[best]);
    }
    result.inertia = inertia;
    // Update step.
    std::vector<Vector> sums(k, Vector(dim, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      const size_t c = result.assignment[i];
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        result.centroids[c] =
            points[static_cast<size_t>(rng->UniformInt(0, points.size() - 1))];
        continue;
      }
      for (size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    if (prev_inertia - inertia < options.tol) break;
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace

size_t NearestCentroid(const std::vector<Vector>& centroids,
                       const Vector& point) {
  AUTOTUNE_CHECK(!centroids.empty());
  size_t best = 0;
  double best_dist = SquaredDistance(point, centroids[0]);
  for (size_t c = 1; c < centroids.size(); ++c) {
    const double dist = SquaredDistance(point, centroids[c]);
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

Result<KMeansResult> KMeans(const std::vector<Vector>& points, size_t k,
                            const KMeansOptions& options, Rng* rng) {
  if (points.empty()) return Status::InvalidArgument("no points");
  if (k < 1 || k > points.size()) {
    return Status::InvalidArgument("k must be in [1, num points]");
  }
  const size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) return Status::InvalidArgument("ragged points");
  }
  AUTOTUNE_CHECK(rng != nullptr);
  KMeansResult best;
  bool have_best = false;
  const int restarts = std::max(options.restarts, 1);
  for (int r = 0; r < restarts; ++r) {
    KMeansResult candidate = RunLloyd(points, k, options, rng);
    if (!have_best || candidate.inertia < best.inertia) {
      best = std::move(candidate);
      have_best = true;
    }
  }
  return best;
}

double SilhouetteScore(const std::vector<Vector>& points,
                       const std::vector<size_t>& assignment, size_t k) {
  AUTOTUNE_CHECK(points.size() == assignment.size());
  if (k <= 1 || points.size() < 2) return 0.0;
  double total = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    std::vector<double> mean_dist(k, 0.0);
    std::vector<size_t> counts(k, 0);
    for (size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      mean_dist[assignment[j]] +=
          std::sqrt(SquaredDistance(points[i], points[j]));
      ++counts[assignment[j]];
    }
    const size_t own = assignment[i];
    if (counts[own] == 0) continue;  // Singleton cluster: skip.
    const double a = mean_dist[own] / static_cast<double>(counts[own]);
    double b = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < k; ++c) {
      if (c == own || counts[c] == 0) continue;
      b = std::min(b, mean_dist[c] / static_cast<double>(counts[c]));
    }
    if (!std::isfinite(b)) continue;
    total += (b - a) / std::max(a, b);
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace autotune
