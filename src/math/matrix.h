#ifndef AUTOTUNE_MATH_MATRIX_H_
#define AUTOTUNE_MATH_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace autotune {

/// Dense column vector.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles. Sized for the moderate dimensions of
/// surrogate modeling (a few hundred rows), not BLAS-scale workloads.
class Matrix {
 public:
  /// Creates a rows x cols matrix of zeros.
  Matrix(size_t rows, size_t cols);

  /// Creates a matrix from rows of equal length.
  [[nodiscard]] static Result<Matrix> FromRows(const std::vector<Vector>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  /// Row `i` as a vector copy.
  Vector Row(size_t i) const;

  /// Raw pointer to the start of row `i` (rows are contiguous). Valid until
  /// the next `Resize`. The hot-loop alternative to per-element operator().
  double* RowPtr(size_t i) { return data_.data() + i * cols_; }
  const double* RowPtr(size_t i) const { return data_.data() + i * cols_; }

  /// Copies `v` (length == cols, CHECKed) into row `i`.
  void SetRow(size_t i, const Vector& v);

  /// Reshapes to rows x cols, zero-filling contents. Reuses the existing
  /// allocation when capacity allows, so a matrix held across iterations
  /// becomes allocation-free once it has seen its peak size.
  void Resize(size_t rows, size_t cols);

  /// Matrix transpose.
  Matrix Transposed() const;

  /// this * other. Dimensions must agree (CHECKed).
  Matrix Multiply(const Matrix& other) const;

  /// this * v.
  Vector MultiplyVec(const Vector& v) const;

  /// In-place: this += s * I (requires square).
  void AddDiagonal(double s);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix:
/// A = L * L^T. Fails with FailedPrecondition if A is not (numerically) PD.
[[nodiscard]] Result<Matrix> Cholesky(const Matrix& a);

/// Cholesky with escalating diagonal jitter: retries with jitter
/// 1e-10, 1e-8, ... up to `max_jitter` until the factorization succeeds.
/// Returns the factor and writes the jitter used to `*jitter_used` if
/// non-null. This is the standard GP trick for near-singular kernel matrices.
[[nodiscard]] Result<Matrix> CholeskyWithJitter(const Matrix& a, double max_jitter = 1e-2,
                                  double* jitter_used = nullptr);

/// Solves L * x = b where L is lower triangular (forward substitution).
Vector SolveLowerTriangular(const Matrix& l, const Vector& b);

/// Allocation-free forward substitution: solves L * x = b into `x` (resized).
/// `x` may not alias `b`. Performs the same arithmetic in the same order as
/// `SolveLowerTriangular`, so results are bit-identical.
void SolveLowerTriangularInto(const Matrix& l, const Vector& b, Vector* x);

/// Batched forward substitution: treats each ROW of `rhs` as an independent
/// right-hand side and returns a matrix whose row i solves L * x = rhs_i.
/// One call replaces rhs.rows() vector solves; per-row arithmetic is
/// bit-identical to `SolveLowerTriangular`.
Matrix SolveLowerTriangularBatch(const Matrix& l, const Matrix& rhs);

/// Solves L^T * x = b where L is lower triangular (back substitution).
Vector SolveUpperTriangularFromLower(const Matrix& l, const Vector& b);

/// Solves A * x = b given the Cholesky factor L of A (two triangular solves).
Vector CholeskySolve(const Matrix& l, const Vector& b);

/// log(det(A)) given the Cholesky factor L of A: 2 * sum(log(L_ii)).
double LogDetFromCholesky(const Matrix& l);

/// Extends an n x n Cholesky factor L of A to the (n+1) x (n+1) factor of
///   [ A   b ]
///   [ b^T c ]
/// in O(n²): w = L⁻¹ b, d = sqrt(c - ‖w‖²). Fails with FailedPrecondition
/// when the appended row makes the matrix numerically indefinite, i.e.
/// c - ‖w‖² <= rel_tol * c (the caller should fall back to a full
/// refactorization with jitter).
[[nodiscard]] Result<Matrix> CholeskyAppendRow(const Matrix& l,
                                               const Vector& b, double c,
                                               double rel_tol = 1e-10);

/// In-place rank-1 Cholesky update: given L with A = L Lᵀ, rewrites L so that
/// L Lᵀ = A + v vᵀ, in O(n²) via the classic cholupdate rotation sweep.
/// `v` is consumed (overwritten). Fails with Internal if the sweep produces a
/// non-finite pivot (caller should refactorize).
[[nodiscard]] Status CholeskyRank1Update(Matrix* l, Vector v);

/// Eigendecomposition of a symmetric matrix A = V diag(w) V^T via the cyclic
/// Jacobi method. `eigenvectors` columns are the eigenvectors; `eigenvalues`
/// are in no particular order. Fails on non-square input.
struct EigenResult {
  Matrix eigenvectors;
  Vector eigenvalues;

  EigenResult() : eigenvectors(0, 0) {}
};
[[nodiscard]] Result<EigenResult> SymmetricEigen(const Matrix& a, int max_sweeps = 50);

/// Dot product (sizes must match, CHECKed).
double Dot(const Vector& a, const Vector& b);

/// Pointer form of `Dot` for rows of a `Matrix`. The `Vector` overload
/// delegates here, so mixing the two forms yields bit-identical sums —
/// callers that must match a scalar reference path (e.g. batched GP
/// prediction vs per-point prediction) rely on this single shared kernel.
double Dot(const double* a, const double* b, size_t n);

/// Euclidean norm.
double Norm2(const Vector& v);

/// Squared Euclidean distance between two equal-size vectors.
double SquaredDistance(const Vector& a, const Vector& b);

}  // namespace autotune

#endif  // AUTOTUNE_MATH_MATRIX_H_
