#ifndef AUTOTUNE_MATH_MATRIX_H_
#define AUTOTUNE_MATH_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace autotune {

/// Dense column vector.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles. Sized for the moderate dimensions of
/// surrogate modeling (a few hundred rows), not BLAS-scale workloads.
class Matrix {
 public:
  /// Creates a rows x cols matrix of zeros.
  Matrix(size_t rows, size_t cols);

  /// Creates a matrix from rows of equal length.
  [[nodiscard]] static Result<Matrix> FromRows(const std::vector<Vector>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  /// Row `i` as a vector copy.
  Vector Row(size_t i) const;

  /// Matrix transpose.
  Matrix Transposed() const;

  /// this * other. Dimensions must agree (CHECKed).
  Matrix Multiply(const Matrix& other) const;

  /// this * v.
  Vector MultiplyVec(const Vector& v) const;

  /// In-place: this += s * I (requires square).
  void AddDiagonal(double s);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix:
/// A = L * L^T. Fails with FailedPrecondition if A is not (numerically) PD.
[[nodiscard]] Result<Matrix> Cholesky(const Matrix& a);

/// Cholesky with escalating diagonal jitter: retries with jitter
/// 1e-10, 1e-8, ... up to `max_jitter` until the factorization succeeds.
/// Returns the factor and writes the jitter used to `*jitter_used` if
/// non-null. This is the standard GP trick for near-singular kernel matrices.
[[nodiscard]] Result<Matrix> CholeskyWithJitter(const Matrix& a, double max_jitter = 1e-2,
                                  double* jitter_used = nullptr);

/// Solves L * x = b where L is lower triangular (forward substitution).
Vector SolveLowerTriangular(const Matrix& l, const Vector& b);

/// Solves L^T * x = b where L is lower triangular (back substitution).
Vector SolveUpperTriangularFromLower(const Matrix& l, const Vector& b);

/// Solves A * x = b given the Cholesky factor L of A (two triangular solves).
Vector CholeskySolve(const Matrix& l, const Vector& b);

/// log(det(A)) given the Cholesky factor L of A: 2 * sum(log(L_ii)).
double LogDetFromCholesky(const Matrix& l);

/// Eigendecomposition of a symmetric matrix A = V diag(w) V^T via the cyclic
/// Jacobi method. `eigenvectors` columns are the eigenvectors; `eigenvalues`
/// are in no particular order. Fails on non-square input.
struct EigenResult {
  Matrix eigenvectors;
  Vector eigenvalues;

  EigenResult() : eigenvectors(0, 0) {}
};
[[nodiscard]] Result<EigenResult> SymmetricEigen(const Matrix& a, int max_sweeps = 50);

/// Dot product (sizes must match, CHECKed).
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm2(const Vector& v);

/// Squared Euclidean distance between two equal-size vectors.
double SquaredDistance(const Vector& a, const Vector& b);

}  // namespace autotune

#endif  // AUTOTUNE_MATH_MATRIX_H_
