#ifndef AUTOTUNE_MATH_QUASIRANDOM_H_
#define AUTOTUNE_MATH_QUASIRANDOM_H_

#include <cstddef>

#include "math/matrix.h"

namespace autotune {

/// Halton low-discrepancy sequence generator over the unit cube, used for
/// space-filling initial designs (better coverage than i.i.d. random for the
/// first few trials of a BO run).
class HaltonSequence {
 public:
  /// Creates a generator for `dim` dimensions (dim >= 1; the first `dim`
  /// primes are used as bases). `skip` initial points are discarded to avoid
  /// the sequence's correlated warm-up region.
  explicit HaltonSequence(size_t dim, size_t skip = 20);

  /// Next point in [0, 1)^dim.
  Vector Next();

  size_t dim() const { return dim_; }

  /// Raw sequence position (includes the warm-up skip), for
  /// checkpoint/resume: a generator restored via `set_index` continues the
  /// exact point stream of the saved one.
  size_t index() const { return index_; }
  void set_index(size_t index) { index_ = index; }

 private:
  size_t dim_;
  size_t index_;
};

/// Radical inverse of `index` in the given `base` (the Halton/van der Corput
/// kernel). Exposed for testing.
double RadicalInverse(size_t index, unsigned base);

}  // namespace autotune

#endif  // AUTOTUNE_MATH_QUASIRANDOM_H_
