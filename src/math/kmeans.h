#ifndef AUTOTUNE_MATH_KMEANS_H_
#define AUTOTUNE_MATH_KMEANS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "math/matrix.h"

namespace autotune {

/// Result of a k-means clustering run.
struct KMeansResult {
  std::vector<Vector> centroids;   ///< k cluster centers.
  std::vector<size_t> assignment;  ///< Cluster index per input point.
  double inertia = 0.0;            ///< Sum of squared distances to centers.
  int iterations = 0;              ///< Lloyd iterations executed.
};

/// Options for `KMeans`.
struct KMeansOptions {
  int max_iterations = 100;
  double tol = 1e-6;   ///< Stop when inertia improvement falls below tol.
  int restarts = 4;    ///< Independent k-means++ restarts; best kept.
};

/// Lloyd's algorithm with k-means++ seeding. Used for workload
/// identification (clustering workload embeddings). Requires
/// 1 <= k <= points.size() and equal-dimension points.
[[nodiscard]] Result<KMeansResult> KMeans(const std::vector<Vector>& points, size_t k,
                            const KMeansOptions& options, Rng* rng);

/// Index of the centroid nearest to `point` (CHECKs non-empty centroids).
size_t NearestCentroid(const std::vector<Vector>& centroids,
                       const Vector& point);

/// Silhouette score in [-1, 1] for a clustering (higher = better separated);
/// 0 when k == 1. O(n^2) — fine for the few hundred points we cluster.
double SilhouetteScore(const std::vector<Vector>& points,
                       const std::vector<size_t>& assignment, size_t k);

}  // namespace autotune

#endif  // AUTOTUNE_MATH_KMEANS_H_
