#ifndef AUTOTUNE_MATH_LINEAR_MODEL_H_
#define AUTOTUNE_MATH_LINEAR_MODEL_H_

#include <vector>

#include "common/status.h"
#include "math/matrix.h"

namespace autotune {

/// A fitted linear model y ~ intercept + x . weights, on standardized
/// features. Used by OtterTune-style knob-importance ranking (Lasso) and by
/// simple performance predictors.
struct LinearModel {
  Vector weights;            ///< One weight per feature (standardized space).
  double intercept = 0.0;    ///< Intercept (original-y space).
  Vector feature_means;      ///< Standardization means per feature.
  Vector feature_stddevs;    ///< Standardization stddevs per feature.

  /// Predicts y for a raw (unstandardized) feature vector.
  double Predict(const Vector& x) const;
};

/// Ridge regression with L2 penalty `lambda` >= 0, solved in closed form via
/// Cholesky on the (standardized) normal equations.
[[nodiscard]] Result<LinearModel> FitRidge(const std::vector<Vector>& xs, const Vector& ys,
                             double lambda);

/// Lasso (L1) regression via cyclic coordinate descent on standardized
/// features. `lambda` >= 0 controls sparsity. Converges when the max
/// coefficient change per sweep drops below `tol` or after `max_sweeps`.
[[nodiscard]] Result<LinearModel> FitLasso(const std::vector<Vector>& xs, const Vector& ys,
                             double lambda, int max_sweeps = 1000,
                             double tol = 1e-7);

/// The full Lasso regularization path: fits at each lambda (descending) and
/// records the order in which features first enter the model — OtterTune's
/// knob-importance criterion (features entering earlier matter more).
/// Returns indices of all features ordered by importance (entered-first
/// first; features that never enter go last in index order).
[[nodiscard]] Result<std::vector<size_t>> LassoImportanceOrder(
    const std::vector<Vector>& xs, const Vector& ys,
    int num_lambdas = 50);

}  // namespace autotune

#endif  // AUTOTUNE_MATH_LINEAR_MODEL_H_
