#include "math/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace autotune {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Result<Matrix> Matrix::FromRows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Status::InvalidArgument("no rows");
  const size_t cols = rows[0].size();
  if (cols == 0) return Status::InvalidArgument("empty rows");
  Matrix m(rows.size(), cols);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != cols) {
      return Status::InvalidArgument("ragged rows");
    }
    for (size_t j = 0; j < cols; ++j) m(i, j) = rows[i][j];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::Row(size_t i) const {
  AUTOTUNE_CHECK(i < rows_);
  Vector row(cols_);
  for (size_t j = 0; j < cols_; ++j) row[j] = (*this)(i, j);
  return row;
}

void Matrix::SetRow(size_t i, const Vector& v) {
  AUTOTUNE_CHECK(i < rows_);
  AUTOTUNE_CHECK(v.size() == cols_);
  std::copy(v.begin(), v.end(), data_.begin() + i * cols_);
}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  AUTOTUNE_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::MultiplyVec(const Vector& v) const {
  AUTOTUNE_CHECK(cols_ == v.size());
  Vector out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < cols_; ++j) sum += (*this)(i, j) * v[j];
    out[i] = sum;
  }
  return out;
}

void Matrix::AddDiagonal(double s) {
  AUTOTUNE_CHECK(rows_ == cols_);
  for (size_t i = 0; i < rows_; ++i) (*this)(i, i) += s;
}

Result<Matrix> Cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return Status::FailedPrecondition(
              "matrix is not positive definite (pivot " +
              std::to_string(sum) + " at " + std::to_string(i) + ")");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

Result<Matrix> CholeskyWithJitter(const Matrix& a, double max_jitter,
                                  double* jitter_used) {
  Result<Matrix> direct = Cholesky(a);
  if (direct.ok()) {
    if (jitter_used != nullptr) *jitter_used = 0.0;
    return direct;
  }
  for (double jitter = 1e-10; jitter <= max_jitter; jitter *= 100.0) {
    Matrix jittered = a;
    jittered.AddDiagonal(jitter);
    Result<Matrix> attempt = Cholesky(jittered);
    if (attempt.ok()) {
      if (jitter_used != nullptr) *jitter_used = jitter;
      return attempt;
    }
  }
  return Status::FailedPrecondition(
      "matrix not positive definite even with jitter " +
      std::to_string(max_jitter));
}

namespace {

// Forward substitution for one right-hand side. Every solve variant below
// funnels through this helper, and its reduction is the shared `Dot`
// kernel — so per-vector and batched solves are bit-identical (the
// compiler cannot vectorize structurally identical loops differently
// across call sites when there is only one loop).
void SolveLowerRow(const Matrix& l, const double* b, double* x) {
  const size_t n = l.rows();
  for (size_t i = 0; i < n; ++i) {
    x[i] = (b[i] - Dot(l.RowPtr(i), x, i)) / l(i, i);
  }
}

}  // namespace

Vector SolveLowerTriangular(const Matrix& l, const Vector& b) {
  AUTOTUNE_CHECK(l.rows() == l.cols());
  AUTOTUNE_CHECK(l.rows() == b.size());
  Vector x(b.size());
  SolveLowerRow(l, b.data(), x.data());
  return x;
}

void SolveLowerTriangularInto(const Matrix& l, const Vector& b, Vector* x) {
  AUTOTUNE_CHECK(l.rows() == l.cols());
  AUTOTUNE_CHECK(l.rows() == b.size());
  AUTOTUNE_CHECK(x != &b);
  x->resize(b.size());
  SolveLowerRow(l, b.data(), x->data());
}

Matrix SolveLowerTriangularBatch(const Matrix& l, const Matrix& rhs) {
  AUTOTUNE_CHECK(l.rows() == l.cols());
  AUTOTUNE_CHECK(l.rows() == rhs.cols());
  Matrix out(rhs.rows(), l.rows());
  for (size_t r = 0; r < rhs.rows(); ++r) {
    SolveLowerRow(l, rhs.RowPtr(r), out.RowPtr(r));
  }
  return out;
}

Vector SolveUpperTriangularFromLower(const Matrix& l, const Vector& b) {
  AUTOTUNE_CHECK(l.rows() == l.cols());
  AUTOTUNE_CHECK(l.rows() == b.size());
  const size_t n = b.size();
  Vector x(n);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double sum = b[i];
    for (size_t j = i + 1; j < n; ++j) sum -= l(j, i) * x[j];
    x[i] = sum / l(i, i);
  }
  return x;
}

Vector CholeskySolve(const Matrix& l, const Vector& b) {
  return SolveUpperTriangularFromLower(l, SolveLowerTriangular(l, b));
}

double LogDetFromCholesky(const Matrix& l) {
  double sum = 0.0;
  for (size_t i = 0; i < l.rows(); ++i) sum += std::log(l(i, i));
  return 2.0 * sum;
}

Result<Matrix> CholeskyAppendRow(const Matrix& l, const Vector& b, double c,
                                 double rel_tol) {
  AUTOTUNE_CHECK(l.rows() == l.cols());
  AUTOTUNE_CHECK(l.rows() == b.size());
  const size_t n = l.rows();
  Vector w = SolveLowerTriangular(l, b);
  const double d2 = c - Dot(w, w);
  if (!std::isfinite(d2) || d2 <= rel_tol * std::abs(c)) {
    return Status::FailedPrecondition(
        "appended row leaves matrix numerically indefinite (d^2 = " +
        std::to_string(d2) + ")");
  }
  Matrix out(n + 1, n + 1);
  for (size_t i = 0; i < n; ++i) {
    std::copy(l.RowPtr(i), l.RowPtr(i) + n, out.RowPtr(i));
  }
  std::copy(w.begin(), w.end(), out.RowPtr(n));
  out(n, n) = std::sqrt(d2);
  return out;
}

Status CholeskyRank1Update(Matrix* l, Vector v) {
  AUTOTUNE_CHECK(l != nullptr);
  AUTOTUNE_CHECK(l->rows() == l->cols());
  AUTOTUNE_CHECK(l->rows() == v.size());
  const size_t n = v.size();
  // Classic cholupdate: a sweep of Givens-like rotations folds v into L
  // column by column, keeping L lower triangular.
  for (size_t k = 0; k < n; ++k) {
    const double lkk = (*l)(k, k);
    if (!std::isfinite(lkk) || lkk <= 0.0) {
      return Status::Internal("rank-1 Cholesky update hit non-positive pivot " +
                              std::to_string(lkk) + " at " + std::to_string(k));
    }
    const double r = std::sqrt(lkk * lkk + v[k] * v[k]);
    if (!std::isfinite(r) || r <= 0.0) {
      return Status::Internal("rank-1 Cholesky update produced pivot " +
                              std::to_string(r) + " at " + std::to_string(k));
    }
    const double cos = r / lkk;
    const double sin = v[k] / lkk;
    (*l)(k, k) = r;
    for (size_t i = k + 1; i < n; ++i) {
      double& lik = (*l)(i, k);
      lik = (lik + sin * v[i]) / cos;
      v[i] = cos * v[i] - sin * lik;
    }
  }
  return Status::OK();
}

Result<EigenResult> SymmetricEigen(const Matrix& a, int max_sweeps) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SymmetricEigen requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix d = a;  // Will be driven to diagonal form.
  Matrix v = Matrix::Identity(n);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Largest off-diagonal magnitude decides convergence.
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        off = std::max(off, std::abs(d(p, q)));
      }
    }
    if (off < 1e-12) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        if (std::abs(d(p, q)) < 1e-14) continue;
        // Jacobi rotation annihilating d(p, q).
        const double theta = (d(q, q) - d(p, p)) / (2.0 * d(p, q));
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  EigenResult result;
  result.eigenvectors = v;
  result.eigenvalues.resize(n);
  for (size_t i = 0; i < n; ++i) result.eigenvalues[i] = d(i, i);
  return result;
}

double Dot(const Vector& a, const Vector& b) {
  AUTOTUNE_CHECK(a.size() == b.size());
  return Dot(a.data(), b.data(), a.size());
}

double Dot(const double* a, const double* b, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double Norm2(const Vector& v) { return std::sqrt(Dot(v, v)); }

double SquaredDistance(const Vector& a, const Vector& b) {
  AUTOTUNE_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace autotune
