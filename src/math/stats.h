#ifndef AUTOTUNE_MATH_STATS_H_
#define AUTOTUNE_MATH_STATS_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace autotune {

/// Descriptive statistics over samples — used for benchmark-result
/// aggregation (mean/median/P95 latency, noise estimation) throughout the
/// trial runner and report code. All functions CHECK for non-empty input
/// where a value is required.

/// Arithmetic mean.
double Mean(const std::vector<double>& xs);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
double Variance(const std::vector<double>& xs);

/// sqrt(Variance).
double Stddev(const std::vector<double>& xs);

/// Smallest / largest element.
double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);

/// Quantile `q` in [0, 1] by linear interpolation between order statistics
/// (the "type 7" estimator used by NumPy/R default).
double Quantile(std::vector<double> xs, double q);

/// Median (Quantile 0.5).
double Median(std::vector<double> xs);

/// Pearson correlation coefficient; 0 if either side is constant.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Confidence interval for the mean via the percentile bootstrap.
struct BootstrapInterval {
  double lower = 0.0;
  double upper = 0.0;
};
BootstrapInterval BootstrapMeanCi(const std::vector<double>& xs,
                                  double confidence, size_t resamples,
                                  Rng* rng);

/// Standardizes values to zero mean / unit variance. If the variance is ~0
/// the output is all zeros. Outputs the transform used so it can be applied
/// to new points or inverted.
struct Standardizer {
  double mean = 0.0;
  double stddev = 1.0;

  double Apply(double x) const { return (x - mean) / stddev; }
  double Invert(double z) const { return z * stddev + mean; }
};
Standardizer FitStandardizer(const std::vector<double>& xs);

/// Exponentially weighted moving average / variance tracker for online
/// statistics (used by the workload-shift detector and online agents).
class EwmaTracker {
 public:
  /// `alpha` in (0, 1]: weight of the newest observation.
  explicit EwmaTracker(double alpha);

  /// Incorporates an observation.
  void Observe(double x);

  /// Current smoothed mean (0 before any observation).
  double mean() const { return mean_; }

  /// Current smoothed variance estimate.
  double variance() const { return variance_; }

  /// Number of observations so far.
  size_t count() const { return count_; }

 private:
  double alpha_;
  double mean_ = 0.0;
  double variance_ = 0.0;
  size_t count_ = 0;
};

}  // namespace autotune

#endif  // AUTOTUNE_MATH_STATS_H_
