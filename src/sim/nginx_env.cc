#include "sim/nginx_env.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "env/env_observer.h"

namespace autotune {
namespace sim {

NginxEnv::NginxEnv(NginxEnvOptions options)
    : options_(options), noise_(options.noise, options.noise_seed) {
  BuildSpace();
}

void NginxEnv::BuildSpace() {
  space_.AddOrDie(ParameterSpec::Int("worker_processes", 1, 64)
                      .value()
                      .WithDefault(ParamValue(int64_t{1})));
  space_.AddOrDie(ParameterSpec::Int("worker_connections", 256, 65536)
                      .value()
                      .WithLogScale()
                      .WithDefault(ParamValue(int64_t{512})));
  space_.AddOrDie(ParameterSpec::Int("keepalive_timeout_s", 0, 300)
                      .value()
                      .WithDefault(ParamValue(int64_t{75})));
  space_.AddOrDie(ParameterSpec::Int("keepalive_requests", 10, 100000)
                      .value()
                      .WithLogScale()
                      .WithDefault(ParamValue(int64_t{100})));
  space_.AddOrDie(
      ParameterSpec::Bool("gzip").WithDefault(ParamValue(false)));
  space_.AddOrDie(ParameterSpec::Int("gzip_level", 1, 9)
                      .value()
                      .WithDefault(ParamValue(int64_t{6}))
                      .WithCondition("gzip", {"true"}));
  space_.AddOrDie(
      ParameterSpec::Bool("sendfile").WithDefault(ParamValue(true)));
  space_.AddOrDie(ParameterSpec::Int("open_file_cache", 1, 100000)
                      .value()
                      .WithLogScale()
                      .WithSpecialValues({0.0}, 0.1)
                      .WithDefault(ParamValue(int64_t{0})));
  space_.AddOrDie(ParameterSpec::Int("client_body_buffer_kb", 8, 1024)
                      .value()
                      .WithLogScale()
                      .WithDefault(ParamValue(int64_t{16})));
  space_.AddOrDie(ParameterSpec::Bool("access_log_buffered")
                      .WithDefault(ParamValue(false)));
  space_.AddOrDie(
      ParameterSpec::Bool("tcp_nodelay").WithDefault(ParamValue(true)));
}

KnobScope NginxEnv::knob_scope(const std::string& name) const {
  // worker_processes / worker_connections require a full restart; the rest
  // reload gracefully (treated as runtime).
  if (name == "worker_processes" || name == "worker_connections") {
    return KnobScope::kRestart;
  }
  return KnobScope::kRuntime;
}

BenchmarkResult NginxEnv::EvaluateModel(const Configuration& config,
                                        double fidelity) const {
  AUTOTUNE_CHECK(fidelity > 0.0 && fidelity <= 1.0);
  const double workers =
      static_cast<double>(config.GetInt("worker_processes"));
  const double worker_connections =
      static_cast<double>(config.GetInt("worker_connections"));
  const double keepalive_s =
      static_cast<double>(config.GetInt("keepalive_timeout_s"));
  const double keepalive_requests =
      static_cast<double>(config.GetInt("keepalive_requests"));
  const bool gzip = config.GetBool("gzip");
  const double gzip_level =
      gzip ? static_cast<double>(config.GetInt("gzip_level")) : 0.0;
  const bool sendfile = config.GetBool("sendfile");
  const double open_file_cache =
      static_cast<double>(config.GetInt("open_file_cache"));
  const double body_buffer_kb =
      static_cast<double>(config.GetInt("client_body_buffer_kb"));
  const bool log_buffered = config.GetBool("access_log_buffered");
  const bool tcp_nodelay = config.GetBool("tcp_nodelay");

  const WebWorkload& w = options_.workload;
  const double offered_rps = w.rps * fidelity;

  // ---- Per-request CPU cost (ms). ----------------------------------------
  double cpu_ms = 0.06;  // Parse + route + respond.
  // Static content: sendfile avoids the copy; otherwise CPU scales with
  // response size.
  const double copy_cost = w.response_kb * 0.004;
  cpu_ms += w.static_fraction * (sendfile ? 0.01 : copy_cost);
  cpu_ms += (1.0 - w.static_fraction) * copy_cost;  // Dynamic always copies.
  // gzip: CPU grows superlinearly with level; compression ratio saturates.
  double wire_kb = w.response_kb;
  if (gzip) {
    const double compressible = w.compressible_fraction;
    const double ratio = 0.28 + 0.40 * std::exp(-gzip_level / 2.5);
    wire_kb = w.response_kb * (compressible * ratio + (1.0 - compressible));
    cpu_ms += compressible * w.response_kb * 0.002 *
              (1.0 + 0.35 * gzip_level);
  }
  // open() on every static request unless the file cache covers it.
  const double cache_hit =
      open_file_cache <= 0.0
          ? 0.0
          : std::min(1.0, open_file_cache / w.unique_files);
  cpu_ms += w.static_fraction * (1.0 - cache_hit) * 0.05;
  // Unbuffered access log: one write per request.
  cpu_ms += log_buffered ? 0.002 : 0.03;
  // Request-body buffering: too small means extra read syscalls.
  cpu_ms += 0.01 * std::max(0.0, std::log2(64.0 / body_buffer_kb));

  // ---- Connection handling. ----------------------------------------------
  // Without keep-alive every request pays a handshake; with it the cost is
  // amortized over requests_per_connection (capped by keepalive_requests).
  double handshake_ms = 0.25;
  double requests_per_conn = 1.0;
  if (keepalive_s > 0.0) {
    requests_per_conn =
        std::min(w.requests_per_connection, keepalive_requests);
  }
  const double conn_cpu_ms = handshake_ms / requests_per_conn * 0.4;
  cpu_ms += conn_cpu_ms;

  // Idle keep-alive connections occupy the connection table: roughly one
  // connection per active client per keepalive window.
  const double conn_capacity = workers * worker_connections;
  const double concurrent_conns =
      keepalive_s > 0.0
          ? offered_rps / w.requests_per_connection *
                std::min(keepalive_s, 30.0)
          : offered_rps * 0.02;
  const double connection_util =
      std::min(1.0, concurrent_conns / conn_capacity);
  // Exhaustion: refused/retried connections show up as errors + latency.
  const double overflow = std::max(
      0.0, concurrent_conns - conn_capacity) / std::max(concurrent_conns,
                                                        1.0);

  // ---- Capacity & queueing. ----------------------------------------------
  const double cores = static_cast<double>(options_.cores);
  const double effective_workers = std::min(workers, cores);
  // Single worker can't use more than one core; oversubscription thrashes.
  double thrash = 1.0 + 0.01 * std::max(0.0, workers - 2.0 * cores);
  const double capacity_rps =
      effective_workers * 1000.0 / (cpu_ms * thrash);
  const double rho = std::min(offered_rps / capacity_rps, 0.97);

  // ---- Network time. -------------------------------------------------------
  const double net_capacity_kb_s = options_.bandwidth_mbps * 1024.0;
  const double net_util =
      std::min(1.0, offered_rps * wire_kb / net_capacity_kb_s);
  // Serialization at client pace, with M/M/1-style congestion blow-up as
  // the link saturates.
  double net_ms = wire_kb / 1500.0 / std::max(0.05, 1.0 - 0.97 * net_util);
  if (!tcp_nodelay) net_ms += 0.2 * (1.0 - w.static_fraction);  // Nagle.
  const double handshake_latency =
      handshake_ms / requests_per_conn;

  double latency_avg = cpu_ms * (1.0 + rho * rho / (1.0 - rho)) + net_ms +
                       handshake_latency;
  latency_avg *= 1.0 + 4.0 * overflow;  // Retries on refused connections.

  BenchmarkResult result;
  const double served_rps =
      std::min(offered_rps * (1.0 - overflow), capacity_rps);
  result.metrics["throughput_rps"] = served_rps;
  result.metrics["latency_avg_ms"] = latency_avg;
  result.metrics["latency_p95_ms"] = latency_avg * (1.6 + 1.0 * rho);
  result.metrics["latency_p99_ms"] = latency_avg * (2.2 + 2.2 * rho);
  result.metrics["cpu_util"] = std::min(1.0, rho + 0.03);
  result.metrics["net_util"] = net_util;
  result.metrics["connection_util"] = connection_util;
  result.metrics["error_rate"] = overflow;
  return result;
}

BenchmarkResult NginxEnv::Run(const Configuration& config, double fidelity,
                              Rng* rng) {
  env::EnvSpanScope span("env.nginx.run");
  BenchmarkResult result = EvaluateModel(config, fidelity);
  if (options_.deterministic || rng == nullptr) return result;
  const double factor = noise_.ApplyToLatency(1.0, options_.machine_id, rng);
  for (const char* metric :
       {"latency_avg_ms", "latency_p95_ms", "latency_p99_ms"}) {
    result.metrics[metric] *= factor;
  }
  result.metrics["throughput_rps"] /= std::sqrt(factor);
  return result;
}

}  // namespace sim
}  // namespace autotune
