#ifndef AUTOTUNE_SIM_SPARK_ENV_H_
#define AUTOTUNE_SIM_SPARK_ENV_H_

#include <string>

#include "env/environment.h"
#include "sim/noise.h"

namespace autotune {
namespace sim {

/// Options for `SparkEnv`.
struct SparkEnvOptions {
  /// Input size of the TPC-H-like job, GB.
  double input_gb = 100.0;
  /// Cluster size available to the job.
  int max_cluster_cores = 256;
  CloudNoiseOptions noise;
  uint64_t noise_seed = 99;
  int machine_id = 0;
  bool deterministic = false;
};

/// The "Spark tuning game" of tutorial slide 14: minimize the runtime of a
/// TPC-H-Q1-like aggregation job by tuning executor sizing, shuffle
/// partitioning, and serialization knobs. Stage-based runtime model:
/// scan -> (partial agg) -> shuffle -> final agg, with GC pressure when
/// executor memory is scarce, scheduling overhead when partitions are tiny,
/// and skew stragglers when partitions are too coarse.
class SparkEnv : public Environment {
 public:
  explicit SparkEnv(SparkEnvOptions options = {});

  std::string name() const override { return "spark-tpch-q1"; }
  const ConfigSpace& space() const override { return space_; }
  BenchmarkResult Run(const Configuration& config, double fidelity,
                      Rng* rng) override;
  std::string objective_metric() const override { return "runtime_s"; }
  bool minimize() const override { return true; }
  double RunCost(double fidelity) const override {
    return 20.0 + fidelity * 160.0;
  }

  /// Noise-free model value. Fidelity scales the input size.
  BenchmarkResult EvaluateModel(const Configuration& config,
                                double fidelity) const;

 private:
  SparkEnvOptions options_;
  ConfigSpace space_;
  CloudNoise noise_;
};

}  // namespace sim
}  // namespace autotune

#endif  // AUTOTUNE_SIM_SPARK_ENV_H_
