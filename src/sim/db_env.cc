#include "sim/db_env.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "env/env_observer.h"

namespace autotune {
namespace sim {

DbEnv::DbEnv(DbEnvOptions options)
    : options_(options),
      workload_(options.workload),
      noise_(options.noise, options.noise_seed) {
  BuildSpace();
}

void DbEnv::BuildSpace() {
  // Memory & storage.
  space_.AddOrDie(ParameterSpec::Int("buffer_pool_mb", 64, 12288)
                      .value()
                      .WithLogScale()
                      .WithDefault(ParamValue(int64_t{128})));
  space_.AddOrDie(ParameterSpec::Int("log_buffer_kb", 64, 65536)
                      .value()
                      .WithLogScale()
                      .WithDefault(ParamValue(int64_t{512})));
  space_.AddOrDie(ParameterSpec::Bool("wal_sync").WithDefault(
      ParamValue(true)));
  space_.AddOrDie(ParameterSpec::Int("checkpoint_interval_s", 30, 3600)
                      .value()
                      .WithLogScale()
                      .WithDefault(ParamValue(int64_t{300})));
  space_.AddOrDie(ParameterSpec::Categorical(
                      "flush_method",
                      {"fsync", "O_DSYNC", "O_DIRECT", "O_DIRECT_NO_FSYNC"})
                      .value()
                      .WithDefault(ParamValue(std::string("fsync"))));
  space_.AddOrDie(ParameterSpec::Categorical("compression",
                                             {"none", "lz4", "zstd"})
                      .value()
                      .WithDefault(ParamValue(std::string("none"))));

  // Concurrency.
  space_.AddOrDie(ParameterSpec::Int("io_threads", 1, 64)
                      .value()
                      .WithDefault(ParamValue(int64_t{4})));
  space_.AddOrDie(ParameterSpec::Int("worker_threads", 1, 128)
                      .value()
                      .WithDefault(ParamValue(int64_t{8})));
  space_.AddOrDie(ParameterSpec::Int("max_connections", 16, 1024)
                      .value()
                      .WithLogScale()
                      .WithDefault(ParamValue(int64_t{128})));

  // Per-session memory & caching.
  space_.AddOrDie(ParameterSpec::Int("work_mem_kb", 64, 1048576)
                      .value()
                      .WithLogScale()
                      .WithDefault(ParamValue(int64_t{4096})));
  space_.AddOrDie(ParameterSpec::Int("prefetch_depth", 1, 64)
                      .value()
                      .WithSpecialValues({0.0}, 0.1)
                      .WithDefault(ParamValue(int64_t{0})));
  space_.AddOrDie(ParameterSpec::Int("query_cache_mb", 1, 1024)
                      .value()
                      .WithLogScale()
                      .WithSpecialValues({0.0}, 0.15)
                      .WithDefault(ParamValue(int64_t{0})));

  // Planner / executor.
  space_.AddOrDie(
      ParameterSpec::Bool("jit").WithDefault(ParamValue(false)));
  space_.AddOrDie(ParameterSpec::Float("jit_above_cost", 1e3, 1e7)
                      .value()
                      .WithLogScale()
                      .WithDefault(ParamValue(1e5))
                      .WithCondition("jit", {"true"}));
  space_.AddOrDie(ParameterSpec::Float("random_page_cost", 1.0, 10.0)
                      .value()
                      .WithDefault(ParamValue(4.0)));
  space_.AddOrDie(
      ParameterSpec::Bool("parallel_scan").WithDefault(ParamValue(false)));

  // Maintenance.
  space_.AddOrDie(
      ParameterSpec::Bool("autovacuum").WithDefault(ParamValue(true)));
  space_.AddOrDie(ParameterSpec::Int("vacuum_delay_ms", 0, 100)
                      .value()
                      .WithDefault(ParamValue(int64_t{20})));
  space_.AddOrDie(ParameterSpec::Int("stats_target", 10, 1000)
                      .value()
                      .WithLogScale()
                      .WithDefault(ParamValue(int64_t{100})));
  space_.AddOrDie(ParameterSpec::Int("net_buffer_kb", 16, 4096)
                      .value()
                      .WithLogScale()
                      .WithDefault(ParamValue(int64_t{64})));

  // Cross-knob constraint (tutorial slide 60's MySQL example shape).
  space_.AddConstraint(
      [](const Configuration& c) {
        return c.GetInt("log_buffer_kb") / 1024 <=
               c.GetInt("buffer_pool_mb");
      },
      "log_buffer <= buffer_pool");
}

KnobScope DbEnv::knob_scope(const std::string& name) const {
  // Memory layout and flush method need a restart (slide 19: PG
  // shared_buffers); everything else is ALTER SYSTEM-able.
  if (name == "buffer_pool_mb" || name == "flush_method" ||
      name == "max_connections") {
    return KnobScope::kRestart;
  }
  return KnobScope::kRuntime;
}

BenchmarkResult DbEnv::EvaluateModel(const Configuration& config,
                                     double fidelity) const {
  AUTOTUNE_CHECK(fidelity > 0.0 && fidelity <= 1.0);
  BenchmarkResult result;

  const double buffer_pool_mb =
      static_cast<double>(config.GetInt("buffer_pool_mb"));
  const double log_buffer_kb =
      static_cast<double>(config.GetInt("log_buffer_kb"));
  const bool wal_sync = config.GetBool("wal_sync");
  const double checkpoint_s =
      static_cast<double>(config.GetInt("checkpoint_interval_s"));
  const std::string& flush = config.GetCategory("flush_method");
  const std::string& compression = config.GetCategory("compression");
  const double io_threads = static_cast<double>(config.GetInt("io_threads"));
  const double workers =
      static_cast<double>(config.GetInt("worker_threads"));
  const double max_connections =
      static_cast<double>(config.GetInt("max_connections"));
  const double work_mem_kb =
      static_cast<double>(config.GetInt("work_mem_kb"));
  const double prefetch =
      static_cast<double>(config.GetInt("prefetch_depth"));
  const double query_cache_mb =
      static_cast<double>(config.GetInt("query_cache_mb"));
  const bool jit = config.GetBool("jit");
  const double jit_above_cost =
      jit ? config.GetDouble("jit_above_cost") : 1e18;
  const double random_page_cost = config.GetDouble("random_page_cost");
  const bool parallel_scan = config.GetBool("parallel_scan");
  const bool autovacuum = config.GetBool("autovacuum");
  const double vacuum_delay =
      static_cast<double>(config.GetInt("vacuum_delay_ms"));
  const double stats_target =
      static_cast<double>(config.GetInt("stats_target"));
  const double net_buffer_kb =
      static_cast<double>(config.GetInt("net_buffer_kb"));

  const workload::Workload& w = workload_;
  const double working_set = std::max(64.0, w.working_set_mb * fidelity);
  const double data_size = std::max(working_set, w.data_size_mb * fidelity);

  // ---- Crash region: over-committed memory -> OOM at startup. ----------
  const double committed =
      buffer_pool_mb + max_connections * (work_mem_kb / 1024.0) * 0.25 +
      query_cache_mb;
  if (committed > 0.9 * options_.ram_mb) {
    result.crashed = true;
    return result;
  }

  // ---- Buffer pool hit rate. --------------------------------------------
  const double coverage = buffer_pool_mb / working_set;
  double hit = 1.0 - std::exp(-1.8 * coverage);
  hit += (1.0 - hit) * std::min(0.5, 0.35 * w.skew);  // Skew concentrates.
  hit = std::min(hit, 0.995);

  // ---- I/O path. ----------------------------------------------------------
  // Random-read latency improves with I/O parallelism, floor at device
  // speed. O_DIRECT skips double buffering: slightly better at high misses.
  double io_read_ms = 4.0 / (1.0 + 0.35 * std::pow(io_threads, 0.7));
  io_read_ms = std::max(io_read_ms, 0.12);
  if (flush == "O_DIRECT" || flush == "O_DIRECT_NO_FSYNC") {
    io_read_ms *= 0.9;
  }
  // Prefetch hides sequential-scan latency, with diminishing returns; a
  // little prefetch also helps point loads via readahead of hot extents.
  const double prefetch_gain =
      prefetch <= 0.0 ? 1.0 : 1.0 / (1.0 + 0.25 * std::log2(1.0 + prefetch));

  // Compression trades I/O volume for CPU.
  double io_volume_factor = 1.0;
  double compress_cpu_factor = 1.0;
  if (compression == "lz4") {
    io_volume_factor = 0.6;
    compress_cpu_factor = 1.15;
  } else if (compression == "zstd") {
    io_volume_factor = 0.45;
    compress_cpu_factor = 1.35;
  }

  // ---- Point operation cost (ms). ----------------------------------------
  double point_cpu_ms = 0.05 * compress_cpu_factor;
  // JIT hurts cheap queries when it compiles them (threshold too low).
  if (jit && jit_above_cost < 1e4) point_cpu_ms *= 1.25;
  double point_io_ms = (1.0 - hit) * io_read_ms * io_volume_factor;
  const double point_ms = point_cpu_ms + point_io_ms;

  // ---- Scan operation cost (ms). -----------------------------------------
  // A scan touches a slice of the full data set.
  const double scan_mb = 0.02 * data_size;
  double scan_io_ms = scan_mb * 0.8 * io_volume_factor * prefetch_gain *
                      (1.0 - 0.65 * hit);
  double scan_cpu_ms = scan_mb * 0.5 * compress_cpu_factor;
  // JIT compiles expensive queries: big scans qualify when the threshold is
  // sane (scan cost in planner units ~ scan_mb * 2e4).
  if (jit && jit_above_cost < scan_mb * 2e4) scan_cpu_ms *= 0.62;
  if (parallel_scan) {
    const double lanes = std::min(workers, 8.0);
    scan_io_ms /= 1.0 + 0.5 * (lanes - 1.0);
    scan_cpu_ms /= 1.0 + 0.5 * (lanes - 1.0);
  }
  // Sort/join spill when work_mem is too small for the scan working set.
  const double needed_kb = 1024.0 * (1.0 + 24.0 * w.scan_ratio);
  const double spill = std::exp(-work_mem_kb / needed_kb);
  double scan_ms = (scan_io_ms + scan_cpu_ms) * (1.0 + 0.8 * spill);
  // Planner quality: random_page_cost calibrated near 2 (SSD) picks good
  // plans; misestimation hurts scans most. Larger stats targets help joins.
  scan_ms *= 1.0 + 0.10 * std::abs(std::log2(random_page_cost / 2.0));
  scan_ms *= 1.0 + 0.06 * std::abs(std::log10(stats_target / 200.0));

  // ---- Write/commit cost (ms). -------------------------------------------
  double fsync_ms = 1.2;
  if (flush == "O_DSYNC") fsync_ms = 0.9;
  if (flush == "O_DIRECT") fsync_ms = 0.7;
  if (flush == "O_DIRECT_NO_FSYNC") fsync_ms = 0.45;
  // Group commit: a bigger log buffer amortizes the sync across commits.
  const double group = std::sqrt(1.0 + log_buffer_kb / 256.0);
  double commit_ms = wal_sync ? fsync_ms / group : 0.05;
  // Checkpoints add write amplification when frequent.
  const double checkpoint_overhead =
      std::min(0.5, 0.4 * std::sqrt(60.0 / checkpoint_s));
  double write_ms =
      0.08 * compress_cpu_factor +
      (1.0 - hit) * io_read_ms * io_volume_factor +
      commit_ms * (0.3 + 0.7 * w.transactional);
  write_ms *= 1.0 + checkpoint_overhead * 0.6;
  // Vacuum: off -> bloat tax on writes; delay has a sweet spot in the
  // middle (0 = vacuum competes for I/O, 100 = bloat accumulates).
  if (!autovacuum) {
    write_ms *= 1.25;
  } else {
    const double vacuum_misfit = std::abs(vacuum_delay - 20.0) / 80.0;
    write_ms *= 1.0 + 0.08 * vacuum_misfit;
  }

  // ---- Query-cache effects. ----------------------------------------------
  const double read_ratio = w.read_ratio;
  double qc_hit = 0.0;
  double qc_penalty = 0.0;
  if (query_cache_mb > 0.0) {
    qc_hit = std::min(0.25, (query_cache_mb / 1024.0) * w.skew * 0.4) *
             read_ratio * (1.0 - w.scan_ratio);
    // The classic single-mutex query cache: writers invalidate, everyone
    // serializes. Painful for write-heavy, many-client workloads.
    qc_penalty = 0.12 * (1.0 - read_ratio) * (w.clients / 64.0);
  }

  // ---- Mean service time per operation (ms). -----------------------------
  const double point_fraction = (1.0 - w.scan_ratio);
  double service_ms =
      read_ratio * (point_fraction * point_ms + w.scan_ratio * scan_ms) +
      (1.0 - read_ratio) * write_ms;
  service_ms *= 1.0 - qc_hit;
  service_ms *= 1.0 + qc_penalty;
  // Network buffer: mild penalty when mis-sized for the response size.
  service_ms *= 1.0 + 0.02 * std::abs(std::log2(net_buffer_kb / 128.0));

  // ---- Concurrency & queueing. -------------------------------------------
  const double cores = static_cast<double>(options_.cores);
  // Too many workers thrash; too few leave cores idle.
  double thrash = 1.0 + 0.006 * std::max(0.0, workers - 4.0 * cores);
  service_ms *= thrash;
  const double servers = std::max(1.0, std::min(workers, w.clients));
  const double offered = w.arrival_rate * fidelity;
  const double capacity = servers * 1000.0 / service_ms;  // ops/s.
  double rho = std::min(offered / capacity, 0.97);
  double latency_avg = service_ms * (1.0 + rho * rho / (1.0 - rho));
  // Connection-limit queueing.
  if (w.clients > max_connections) {
    latency_avg += 2.0 * (w.clients / max_connections - 1.0);
  }
  const double throughput = std::min(offered, capacity);

  const double latency_p95 = latency_avg * (1.55 + 0.9 * rho);
  const double latency_p99 = latency_avg * (2.1 + 2.0 * rho);

  // ---- Cost & utilization metrics. ---------------------------------------
  const double cost_per_hour = 0.05 + buffer_pool_mb * 1.0e-5 +
                               workers * 0.002 + io_threads * 0.001 +
                               query_cache_mb * 5.0e-6;
  const double cpu_util = std::min(
      1.0, (throughput * (point_cpu_ms + scan_cpu_ms * w.scan_ratio)) /
               (cores * 1000.0) * compress_cpu_factor + 0.05);
  const double io_util =
      std::min(1.0, throughput * (1.0 - hit) * io_read_ms / 1000.0 /
                        std::max(io_threads, 1.0) +
                        checkpoint_overhead * 0.3);

  // ---- Profile: where does an average operation spend its time? --------
  // The component breakdown a stack profiler (perf / eBPF) would report —
  // the raw material for profile-guided knob discovery (slide 68's PGO/FDO
  // opportunity). Fractions are of mean request latency.
  const double profile_io =
      read_ratio * (point_fraction * point_io_ms +
                    w.scan_ratio * scan_io_ms) +
      (1.0 - read_ratio) * (1.0 - hit) * io_read_ms * io_volume_factor;
  const double profile_commit = (1.0 - read_ratio) * commit_ms *
                                (0.3 + 0.7 * w.transactional) *
                                (1.0 + checkpoint_overhead * 0.6);
  const double profile_cpu =
      read_ratio * (point_fraction * point_cpu_ms +
                    w.scan_ratio * scan_cpu_ms) +
      (1.0 - read_ratio) * 0.08 * compress_cpu_factor;
  const double profile_spill = read_ratio * w.scan_ratio *
                               (scan_io_ms + scan_cpu_ms) * 0.8 * spill;
  const double profile_queue = std::max(latency_avg - service_ms, 0.0);
  const double profile_total = std::max(
      profile_io + profile_commit + profile_cpu + profile_spill +
          profile_queue,
      1e-12);
  result.metrics["profile_io_frac"] = profile_io / profile_total;
  result.metrics["profile_commit_frac"] = profile_commit / profile_total;
  result.metrics["profile_cpu_frac"] = profile_cpu / profile_total;
  result.metrics["profile_spill_frac"] = profile_spill / profile_total;
  result.metrics["profile_queue_frac"] = profile_queue / profile_total;

  result.metrics["throughput_tps"] = throughput;
  result.metrics["latency_avg_ms"] = latency_avg;
  result.metrics["latency_p95_ms"] = latency_p95;
  result.metrics["latency_p99_ms"] = latency_p99;
  result.metrics["cost_usd_per_hour"] = cost_per_hour;
  result.metrics["cpu_util"] = cpu_util;
  result.metrics["io_util"] = io_util;
  result.metrics["buffer_hit_rate"] = hit;
  return result;
}

BenchmarkResult DbEnv::Run(const Configuration& config, double fidelity,
                           Rng* rng) {
  env::EnvSpanScope span("env.simdb.run");
  BenchmarkResult result = EvaluateModel(config, fidelity);
  if (result.crashed || options_.deterministic || rng == nullptr) {
    return result;
  }
  // Apply cloud noise to the latency metrics; throughput moves inversely.
  const double factor = noise_.ApplyToLatency(1.0, options_.machine_id, rng);
  for (const char* metric :
       {"latency_avg_ms", "latency_p95_ms", "latency_p99_ms"}) {
    result.metrics[metric] *= factor;
  }
  result.metrics["throughput_tps"] /= std::sqrt(factor);
  return result;
}

}  // namespace sim
}  // namespace autotune
