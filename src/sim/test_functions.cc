#include "sim/test_functions.h"

#include <cmath>

#include "common/check.h"

namespace autotune {
namespace sim {

double Branin(double x0, double x1) {
  // Canonical domain: x in [-5, 10], y in [0, 15].
  const double x = -5.0 + 15.0 * x0;
  const double y = 15.0 * x1;
  const double a = 1.0;
  const double b = 5.1 / (4.0 * M_PI * M_PI);
  const double c = 5.0 / M_PI;
  const double r = 6.0;
  const double s = 10.0;
  const double t = 1.0 / (8.0 * M_PI);
  const double term = y - b * x * x + c * x - r;
  return a * term * term + s * (1.0 - t) * std::cos(x) + s;
}

double Sphere(const Vector& u) {
  double sum = 0.0;
  for (double v : u) {
    const double x = 2.0 * v - 1.0;
    sum += x * x;
  }
  return sum;
}

double Rosenbrock(const Vector& u) {
  AUTOTUNE_CHECK(u.size() >= 2);
  double sum = 0.0;
  for (size_t i = 0; i + 1 < u.size(); ++i) {
    const double x = -2.0 + 4.0 * u[i];
    const double y = -2.0 + 4.0 * u[i + 1];
    sum += 100.0 * (y - x * x) * (y - x * x) + (1.0 - x) * (1.0 - x);
  }
  return sum;
}

double Rastrigin(const Vector& u) {
  double sum = 10.0 * static_cast<double>(u.size());
  for (double v : u) {
    const double x = -5.12 + 10.24 * v;
    sum += x * x - 10.0 * std::cos(2.0 * M_PI * x);
  }
  return sum;
}

double Ackley(const Vector& u) {
  const double n = static_cast<double>(u.size());
  double sum_sq = 0.0;
  double sum_cos = 0.0;
  for (double v : u) {
    const double x = -5.0 + 10.0 * v;
    sum_sq += x * x;
    sum_cos += std::cos(2.0 * M_PI * x);
  }
  return -20.0 * std::exp(-0.2 * std::sqrt(sum_sq / n)) -
         std::exp(sum_cos / n) + 20.0 + M_E;
}

double StyblinskiTang(const Vector& u) {
  double sum = 0.0;
  for (double v : u) {
    const double x = -5.0 + 10.0 * v;
    sum += x * x * x * x - 16.0 * x * x + 5.0 * x;
  }
  return 0.5 * sum;
}

double TutorialCurve1D(double u) {
  // Latency (ms) over the normalized sched_migration_cost_ns knob:
  // high plateau at the left, narrow basin near 0.23, gentle rise after.
  const double plateau = 1.0 / (1.0 + std::exp(40.0 * (u - 0.12)));
  const double basin =
      -0.55 * std::exp(-(u - 0.23) * (u - 0.23) / (2.0 * 0.04 * 0.04));
  const double rise = 0.35 * u;
  return 1.05 + 0.45 * plateau + basin + rise;
}

FunctionEnvironment::FunctionEnvironment(std::string name, size_t dim,
                                         Objective objective,
                                         double noise_stddev)
    : name_(std::move(name)),
      objective_(std::move(objective)),
      noise_stddev_(noise_stddev) {
  AUTOTUNE_CHECK(dim >= 1);
  AUTOTUNE_CHECK(noise_stddev >= 0.0);
  for (size_t d = 0; d < dim; ++d) {
    space_.AddOrDie(
        ParameterSpec::Float("x" + std::to_string(d), 0.0, 1.0));
  }
}

BenchmarkResult FunctionEnvironment::Run(const Configuration& config,
                                         double /*fidelity*/, Rng* rng) {
  auto u = space_.ToUnit(config);
  AUTOTUNE_CHECK(u.ok());
  BenchmarkResult result;
  double value = objective_(*u);
  if (noise_stddev_ > 0.0 && rng != nullptr) {
    value += rng->Normal(0.0, noise_stddev_);
  }
  result.metrics["value"] = value;
  return result;
}

}  // namespace sim
}  // namespace autotune
