#include "sim/noise.h"

#include <cmath>

#include "common/check.h"

namespace autotune {
namespace sim {

CloudNoise::CloudNoise(CloudNoiseOptions options, uint64_t seed)
    : options_(options), seed_(seed) {
  AUTOTUNE_CHECK(options_.run_noise_frac >= 0.0);
  AUTOTUNE_CHECK(options_.spike_prob >= 0.0 && options_.spike_prob <= 1.0);
}

double CloudNoise::MachineFactor(int machine_id) const {
  // Deterministic per-machine draw: fork a machine-specific stream.
  Rng machine_rng(seed_ ^ (0x9e3779b97f4a7c15ULL *
                           static_cast<uint64_t>(machine_id + 1)));
  double factor =
      std::exp(machine_rng.Normal(0.0, options_.machine_speed_stddev));
  if (machine_rng.Bernoulli(options_.outlier_machine_prob)) {
    factor *= machine_rng.Uniform(1.5, 2.5);  // Persistent lemon.
  }
  return factor;
}

double CloudNoise::ApplyToLatency(double latency, int machine_id,
                                  Rng* rng) const {
  AUTOTUNE_CHECK(rng != nullptr);
  double value = latency * MachineFactor(machine_id);
  value *= std::exp(rng->Normal(0.0, options_.run_noise_frac));
  if (rng->Bernoulli(options_.spike_prob)) {
    value *= 1.0 + options_.spike_magnitude * rng->Exponential(1.0);
  }
  return value;
}

}  // namespace sim
}  // namespace autotune
