#ifndef AUTOTUNE_SIM_TEST_FUNCTIONS_H_
#define AUTOTUNE_SIM_TEST_FUNCTIONS_H_

#include <functional>
#include <memory>
#include <string>

#include "env/environment.h"
#include "space/config_space.h"

namespace autotune {
namespace sim {

/// Classic black-box optimization test functions over [0,1]^d (internally
/// rescaled to their canonical domains), plus an `Environment` wrapper so
/// they plug into the tuning loop. Used to validate optimizers before
/// pointing them at the system simulators.

/// 2-D Branin; global minimum ~0.397887.
double Branin(double x0, double x1);

/// d-dimensional sphere, minimum 0 at the center of the cube.
double Sphere(const Vector& u);

/// d-dimensional Rosenbrock over [-2, 2]^d, minimum 0.
double Rosenbrock(const Vector& u);

/// d-dimensional Rastrigin over [-5.12, 5.12]^d, many local minima, min 0.
double Rastrigin(const Vector& u);

/// d-dimensional Ackley over [-5, 5]^d, minimum 0.
double Ackley(const Vector& u);

/// d-dimensional Styblinski-Tang over [-5, 5]^d; min ~ -39.166 * d.
double StyblinskiTang(const Vector& u);

/// The tutorial's running 1-D example shape (slides 28-31): P99 latency as
/// a function of a normalized kernel knob — a flat plateau, a narrow
/// optimum basin, and a steep rise. Deterministic part only; noise is the
/// environment's job. Minimum ~0.62 near u = 0.23.
double TutorialCurve1D(double u);

/// An `Environment` evaluating a deterministic function of the unit-cube
/// coordinates with additive Gaussian noise — the minimal target system.
class FunctionEnvironment : public Environment {
 public:
  using Objective = std::function<double(const Vector&)>;

  /// Builds an environment with `dim` float parameters x0..x{dim-1} in
  /// [0, 1] evaluating `objective` (+ N(0, noise_stddev) noise).
  FunctionEnvironment(std::string name, size_t dim, Objective objective,
                      double noise_stddev = 0.0);

  std::string name() const override { return name_; }
  const ConfigSpace& space() const override { return space_; }
  BenchmarkResult Run(const Configuration& config, double fidelity,
                      Rng* rng) override;
  std::string objective_metric() const override { return "value"; }

 private:
  std::string name_;
  ConfigSpace space_;
  Objective objective_;
  double noise_stddev_;
};

}  // namespace sim
}  // namespace autotune

#endif  // AUTOTUNE_SIM_TEST_FUNCTIONS_H_
