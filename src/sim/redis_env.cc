#include "sim/redis_env.h"

#include <cmath>

#include "common/check.h"
#include "env/env_observer.h"
#include "sim/test_functions.h"

namespace autotune {
namespace sim {

RedisEnv::RedisEnv(RedisEnvOptions options)
    : options_(options), noise_(options.noise, options.noise_seed) {
  // Primary knob: the kernel scheduler migration cost, 0..1e6 ns (slide
  // 28's prior-knowledge range), log-ish behavior handled by the response
  // curve itself so the knob stays linear like the tutorial's plots.
  space_.AddOrDie(ParameterSpec::Int("sched_migration_cost_ns", 0, 1000000)
                      .value()
                      .WithDefault(ParamValue(int64_t{500000})));
  space_.AddOrDie(ParameterSpec::Int("io_threads", 1, 8)
                      .value()
                      .WithDefault(ParamValue(int64_t{1})));
  space_.AddOrDie(ParameterSpec::Categorical(
                      "maxmemory_policy",
                      {"noeviction", "allkeys-lru", "allkeys-lfu"})
                      .value()
                      .WithDefault(ParamValue(std::string("noeviction"))));
}

BenchmarkResult RedisEnv::EvaluateModel(const Configuration& config) const {
  const double knob =
      static_cast<double>(config.GetInt("sched_migration_cost_ns")) / 1e6;
  const double io_threads =
      static_cast<double>(config.GetInt("io_threads"));
  const std::string& policy = config.GetCategory("maxmemory_policy");

  // The tutorial's 1-D latency curve over the normalized kernel knob.
  double p99 = TutorialCurve1D(knob);
  // Secondary effects: io_threads help up to ~4 then contend; LFU keeps the
  // hot set resident slightly better than LRU, noeviction risks swapping.
  p99 *= 1.0 + 0.04 * std::abs(io_threads - 4.0) / 4.0;
  if (policy == "allkeys-lru") {
    p99 *= 0.97;
  } else if (policy == "allkeys-lfu") {
    p99 *= 0.95;
  }

  BenchmarkResult result;
  result.metrics["latency_p99_ms"] = p99;
  result.metrics["latency_p95_ms"] = p99 * 0.75;
  result.metrics["latency_avg_ms"] = p99 * 0.4;
  result.metrics["throughput_ops"] = 90000.0 / p99;
  return result;
}

BenchmarkResult RedisEnv::Run(const Configuration& config,
                              double /*fidelity*/, Rng* rng) {
  env::EnvSpanScope span("env.redis.run");
  BenchmarkResult result = EvaluateModel(config);
  if (options_.deterministic || rng == nullptr) return result;
  const double factor = noise_.ApplyToLatency(1.0, options_.machine_id, rng);
  for (const char* metric :
       {"latency_avg_ms", "latency_p95_ms", "latency_p99_ms"}) {
    result.metrics[metric] *= factor;
  }
  result.metrics["throughput_ops"] /= factor;
  return result;
}

}  // namespace sim
}  // namespace autotune
