#ifndef AUTOTUNE_SIM_DB_ENV_H_
#define AUTOTUNE_SIM_DB_ENV_H_

#include <string>

#include "env/environment.h"
#include "sim/noise.h"
#include "env/workload.h"

namespace autotune {
namespace sim {

/// Options for `DbEnv`.
struct DbEnvOptions {
  workload::Workload workload = workload::TpcC();

  /// Machine RAM: the OOM ceiling for buffer pool + per-connection memory.
  double ram_mb = 16384.0;

  /// Logical CPU cores (thread-thrash threshold).
  int cores = 16;

  /// Objective: one of the reported metrics.
  std::string objective_metric = "latency_p99_ms";
  bool minimize = true;

  /// Cloud-noise model; `machine_id` selects the persistent machine factor.
  CloudNoiseOptions noise;
  uint64_t noise_seed = 1234;
  int machine_id = 0;

  /// Disable all stochastic noise (deterministic model; for tests).
  bool deterministic = false;
};

/// An analytical performance model of a MySQL/PostgreSQL-class DBMS with 20
/// tunable knobs — the simulated stand-in for the tutorial's real tuning
/// targets (OtterTune/LlamaTune-style workloads). The model is built from
/// first-order systems effects so that the response surface has the
/// properties every tutorial technique exploits:
///
///  * a low effective dimension (buffer pool, WAL sync, worker threads
///    dominate) -> LlamaTune projections and knob-importance ranking work;
///  * knob-workload interactions (scan-heavy loads reward JIT, compression
///    and parallel scans; point loads reward the buffer pool and penalize
///    the query-cache mutex) -> per-workload optima differ;
///  * conditional knobs (jit_above_cost active iff jit=on) and a
///    cross-knob constraint (log buffer <= buffer pool);
///  * a crash region (over-committed memory -> OOM) -> score imputation;
///  * heteroscedastic cloud noise + per-machine factors -> Duet/TUNA.
///
/// Metrics reported: throughput_tps, latency_avg_ms, latency_p95_ms,
/// latency_p99_ms, cost_usd_per_hour, cpu_util, io_util, buffer_hit_rate.
class DbEnv : public Environment {
 public:
  explicit DbEnv(DbEnvOptions options);

  std::string name() const override { return "simdb-" + workload_.name; }
  const ConfigSpace& space() const override { return space_; }
  BenchmarkResult Run(const Configuration& config, double fidelity,
                      Rng* rng) override;
  std::string objective_metric() const override {
    return options_.objective_metric;
  }
  bool minimize() const override { return options_.minimize; }
  double RunCost(double fidelity) const override {
    return 30.0 + fidelity * 270.0;  // 5 min full benchmark, 30 s floor.
  }
  KnobScope knob_scope(const std::string& name) const override;
  double RestartCost() const override { return 45.0; }

  /// Deterministic model evaluation (no noise): the ground truth used by
  /// tests and by benches that need the "true" value of a configuration.
  BenchmarkResult EvaluateModel(const Configuration& config,
                                double fidelity) const;

  /// Switches the offered workload (online-tuning experiments).
  void set_workload(const workload::Workload& w) { workload_ = w; }
  const workload::Workload& workload() const { return workload_; }

  /// Re-homes the environment on another machine (TUNA cluster sampling).
  void set_machine(int machine_id) { options_.machine_id = machine_id; }
  int machine() const { return options_.machine_id; }

  const CloudNoise& noise() const { return noise_; }

 private:
  void BuildSpace();

  DbEnvOptions options_;
  workload::Workload workload_;
  ConfigSpace space_;
  CloudNoise noise_;
};

}  // namespace sim
}  // namespace autotune

#endif  // AUTOTUNE_SIM_DB_ENV_H_
