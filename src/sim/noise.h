#ifndef AUTOTUNE_SIM_NOISE_H_
#define AUTOTUNE_SIM_NOISE_H_

#include <cstdint>

#include "common/rng.h"

namespace autotune {
namespace sim {

/// Options for `CloudNoise`.
struct CloudNoiseOptions {
  /// Relative stddev of per-run multiplicative noise.
  double run_noise_frac = 0.03;

  /// Probability a run hits a transient interference spike (noisy
  /// neighbor, GC pause, ...).
  double spike_prob = 0.03;

  /// Relative magnitude of a spike (latency multiplied by 1 + this,
  /// exponentially distributed).
  double spike_magnitude = 0.6;

  /// Stddev of per-machine LOG speed factor: machines differ persistently
  /// (hardware generation, placement) — the reason TUNA samples a cluster.
  double machine_speed_stddev = 0.08;

  /// Fraction of machines that are persistent outliers (~2x slower).
  double outlier_machine_prob = 0.05;
};

/// The cloud-noise model of tutorial slides 70-71: unstable performance
/// even without any config change. Noise has two components:
/// per-MACHINE persistent speed factors (deterministic in machine id) and
/// per-RUN transient noise/spikes (drawn from the run's rng, so duet pairs
/// sharing an rng share them).
class CloudNoise {
 public:
  CloudNoise(CloudNoiseOptions options, uint64_t seed);

  /// Persistent speed multiplier (>= ~0.5) of a machine; 1.0 is nominal.
  /// Deterministic: the same machine is always equally slow.
  double MachineFactor(int machine_id) const;

  /// Multiplies `latency` by machine and transient factors. Higher =
  /// slower. Transient draws come from `rng`.
  double ApplyToLatency(double latency, int machine_id, Rng* rng) const;

  const CloudNoiseOptions& options() const { return options_; }

 private:
  CloudNoiseOptions options_;
  uint64_t seed_;
};

}  // namespace sim
}  // namespace autotune

#endif  // AUTOTUNE_SIM_NOISE_H_
