#ifndef AUTOTUNE_SIM_NGINX_ENV_H_
#define AUTOTUNE_SIM_NGINX_ENV_H_

#include <string>

#include "env/environment.h"
#include "sim/noise.h"

namespace autotune {
namespace sim {

/// The web-serving workload an `NginxEnv` instance faces.
struct WebWorkload {
  std::string name = "web-mixed";
  /// Offered load, requests per second.
  double rps = 20000.0;
  /// Mean response size (compressible content), KB.
  double response_kb = 32.0;
  /// Fraction of requests served from static files (sendfile-eligible).
  double static_fraction = 0.6;
  /// Fraction of responses that are compressible text.
  double compressible_fraction = 0.7;
  /// Mean requests per client connection when keep-alive is available.
  double requests_per_connection = 8.0;
  /// Distinct files the static content spans (open-file-cache target).
  double unique_files = 20000.0;
};

/// Options for `NginxEnv`.
struct NginxEnvOptions {
  WebWorkload workload;
  int cores = 16;
  /// Downstream bandwidth, MB/s (gzip trades CPU against this).
  double bandwidth_mbps = 2000.0;
  std::string objective_metric = "latency_p95_ms";
  bool minimize = true;
  CloudNoiseOptions noise;
  uint64_t noise_seed = 4242;
  int machine_id = 0;
  bool deterministic = false;
};

/// An Nginx-class web/cache server performance model — the fourth system
/// family the tutorial names as a tuning target (slide 8: "System: Redis,
/// MySQL, Postgres, Nginx, ..."). Ten knobs with classic interactions:
/// worker processes vs. cores, keep-alive timeout vs. connection-table
/// exhaustion, gzip level trading CPU for bandwidth, sendfile and the
/// open-file cache for static content, buffered access logging.
///
/// Metrics: throughput_rps, latency_avg_ms, latency_p95_ms,
/// latency_p99_ms, cpu_util, net_util, connection_util, error_rate.
class NginxEnv : public Environment {
 public:
  explicit NginxEnv(NginxEnvOptions options = NginxEnvOptions());

  std::string name() const override {
    return "nginx-" + options_.workload.name;
  }
  const ConfigSpace& space() const override { return space_; }
  BenchmarkResult Run(const Configuration& config, double fidelity,
                      Rng* rng) override;
  std::string objective_metric() const override {
    return options_.objective_metric;
  }
  bool minimize() const override { return options_.minimize; }
  double RunCost(double fidelity) const override {
    return 15.0 + fidelity * 105.0;  // wrk/ab runs are ~2 minutes.
  }
  KnobScope knob_scope(const std::string& name) const override;
  double RestartCost() const override { return 5.0; }  // Graceful reload.

  /// Deterministic model evaluation (ground truth).
  BenchmarkResult EvaluateModel(const Configuration& config,
                                double fidelity) const;

  void set_workload(const WebWorkload& w) { options_.workload = w; }
  const WebWorkload& workload() const { return options_.workload; }

 private:
  void BuildSpace();

  NginxEnvOptions options_;
  ConfigSpace space_;
  CloudNoise noise_;
};

}  // namespace sim
}  // namespace autotune

#endif  // AUTOTUNE_SIM_NGINX_ENV_H_
