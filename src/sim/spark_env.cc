#include "sim/spark_env.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "env/env_observer.h"

namespace autotune {
namespace sim {

SparkEnv::SparkEnv(SparkEnvOptions options)
    : options_(options), noise_(options.noise, options.noise_seed) {
  space_.AddOrDie(ParameterSpec::Int("executor_count", 1, 64)
                      .value()
                      .WithDefault(ParamValue(int64_t{2})));
  space_.AddOrDie(ParameterSpec::Int("executor_cores", 1, 16)
                      .value()
                      .WithDefault(ParamValue(int64_t{2})));
  space_.AddOrDie(ParameterSpec::Int("executor_memory_mb", 512, 32768)
                      .value()
                      .WithLogScale()
                      .WithDefault(ParamValue(int64_t{2048})));
  space_.AddOrDie(ParameterSpec::Int("shuffle_partitions", 8, 4096)
                      .value()
                      .WithLogScale()
                      .WithDefault(ParamValue(int64_t{200})));
  space_.AddOrDie(ParameterSpec::Float("memory_fraction", 0.3, 0.9)
                      .value()
                      .WithDefault(ParamValue(0.6)));
  space_.AddOrDie(ParameterSpec::Categorical("serializer",
                                             {"java", "kryo"})
                      .value()
                      .WithDefault(ParamValue(std::string("java"))));
  space_.AddOrDie(
      ParameterSpec::Bool("shuffle_compress").WithDefault(ParamValue(true)));
  space_.AddOrDie(ParameterSpec::Int("broadcast_threshold_mb", 1, 512)
                      .value()
                      .WithLogScale()
                      .WithDefault(ParamValue(int64_t{10})));

  // Cluster capacity constraint.
  space_.AddConstraint(
      [this](const Configuration& c) {
        return c.GetInt("executor_count") * c.GetInt("executor_cores") <=
               options_.max_cluster_cores;
      },
      "total cores <= cluster capacity");
}

BenchmarkResult SparkEnv::EvaluateModel(const Configuration& config,
                                        double fidelity) const {
  AUTOTUNE_CHECK(fidelity > 0.0 && fidelity <= 1.0);
  const double executors =
      static_cast<double>(config.GetInt("executor_count"));
  const double cores_each =
      static_cast<double>(config.GetInt("executor_cores"));
  const double memory_mb =
      static_cast<double>(config.GetInt("executor_memory_mb"));
  const double partitions =
      static_cast<double>(config.GetInt("shuffle_partitions"));
  const double memory_fraction = config.GetDouble("memory_fraction");
  const bool kryo = config.GetCategory("serializer") == "kryo";
  const bool compress = config.GetBool("shuffle_compress");
  const double broadcast_mb =
      static_cast<double>(config.GetInt("broadcast_threshold_mb"));

  const double input_gb = options_.input_gb * fidelity;
  const double total_cores = executors * cores_each;

  BenchmarkResult result;
  // OOM region: heap per core too small for the shuffle working set.
  const double heap_per_task_mb =
      memory_mb * memory_fraction / std::max(cores_each, 1.0);
  const double partition_mb = input_gb * 1024.0 / partitions;
  if (partition_mb > heap_per_task_mb * 4.0) {
    result.crashed = true;  // Executor OOM.
    return result;
  }

  // Stage 1: scan + partial aggregation, embarrassingly parallel.
  const double scan_rate_gb_s_per_core = kryo ? 0.055 : 0.04;
  double scan_s = input_gb / (scan_rate_gb_s_per_core * total_cores);
  // GC pressure when memory per core is tight.
  const double gc_factor =
      1.0 + 2.0 * std::exp(-heap_per_task_mb / 384.0);
  scan_s *= gc_factor;

  // Stage 2: shuffle. Volume shrinks with aggregation; compression trades
  // CPU for network.
  double shuffle_gb = input_gb * 0.1;
  double net_rate = 0.8 * std::sqrt(executors);  // GB/s aggregate-ish.
  double shuffle_s = shuffle_gb * (compress ? 0.5 : 1.0) / net_rate +
                     shuffle_gb * (compress ? 0.06 : 0.0);
  // Per-partition scheduling overhead vs straggler skew trade-off.
  const double sched_overhead_s = partitions * 0.004 / total_cores *
                                  partitions / 200.0;
  const double ideal_partitions = 2.0 * total_cores;
  const double straggler =
      partitions < ideal_partitions
          ? 1.0 + 0.8 * (ideal_partitions - partitions) / ideal_partitions
          : 1.0;
  shuffle_s = shuffle_s * straggler + sched_overhead_s;

  // Stage 3: final aggregation on the reduced data.
  double reduce_s = shuffle_gb /
                    (scan_rate_gb_s_per_core * std::min(total_cores,
                                                        partitions));
  reduce_s *= gc_factor;

  // Broadcast-join threshold: the dimension table is ~40 MB; broadcasting
  // it avoids a shuffle join.
  const double broadcast_bonus = broadcast_mb >= 40.0 ? 0.88 : 1.0;

  // Fixed driver/startup overhead plus executor launch time.
  const double startup_s = 6.0 + 0.25 * executors;

  const double runtime =
      (scan_s + shuffle_s + reduce_s) * broadcast_bonus + startup_s;
  const double cost_core_hours = runtime / 3600.0 * total_cores;

  result.metrics["runtime_s"] = runtime;
  result.metrics["cost_core_hours"] = cost_core_hours;
  result.metrics["gc_factor"] = gc_factor;
  result.metrics["shuffle_gb"] = shuffle_gb;
  return result;
}

BenchmarkResult SparkEnv::Run(const Configuration& config, double fidelity,
                              Rng* rng) {
  env::EnvSpanScope span("env.spark.run");
  BenchmarkResult result = EvaluateModel(config, fidelity);
  if (result.crashed || options_.deterministic || rng == nullptr) {
    return result;
  }
  const double factor = noise_.ApplyToLatency(1.0, options_.machine_id, rng);
  result.metrics["runtime_s"] *= factor;
  result.metrics["cost_core_hours"] *= factor;
  return result;
}

}  // namespace sim
}  // namespace autotune
