#ifndef AUTOTUNE_SIM_REDIS_ENV_H_
#define AUTOTUNE_SIM_REDIS_ENV_H_

#include <string>

#include "env/environment.h"
#include "sim/noise.h"

namespace autotune {
namespace sim {

/// Options for `RedisEnv`.
struct RedisEnvOptions {
  CloudNoiseOptions noise;
  uint64_t noise_seed = 77;
  int machine_id = 0;
  bool deterministic = false;
};

/// The tutorial's running offline example (slides 26-31): Redis on Linux,
/// minimizing P99 tail latency by tuning the kernel scheduler knob
/// /proc/sys/kernel/sched_migration_cost_ns (plus two secondary knobs so
/// the space is not trivially 1-D). The latency response over the primary
/// knob follows the tutorial's plotted shape — a high plateau for small
/// values, a narrow basin, then a gentle rise — with heteroscedastic cloud
/// noise on top. Also exposes the throughput metric that yields the "68%
/// P95 reduction"-style headline (slide 10).
class RedisEnv : public Environment {
 public:
  explicit RedisEnv(RedisEnvOptions options = {});

  std::string name() const override { return "redis-bench"; }
  const ConfigSpace& space() const override { return space_; }
  BenchmarkResult Run(const Configuration& config, double fidelity,
                      Rng* rng) override;
  std::string objective_metric() const override { return "latency_p99_ms"; }
  bool minimize() const override { return true; }
  double RunCost(double fidelity) const override {
    return 10.0 + fidelity * 50.0;  // redis-benchmark is fast.
  }

  /// Noise-free model value (tests/ground truth).
  BenchmarkResult EvaluateModel(const Configuration& config) const;

  void set_machine(int machine_id) { options_.machine_id = machine_id; }

 private:
  RedisEnvOptions options_;
  ConfigSpace space_;
  CloudNoise noise_;
};

}  // namespace sim
}  // namespace autotune

#endif  // AUTOTUNE_SIM_REDIS_ENV_H_
