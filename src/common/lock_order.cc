#include "common/lock_order.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace autotune {
namespace lockorder {
namespace {

// The sentinel's own state is guarded by a plain `std::mutex`: using
// `autotune::Mutex` here would recurse into these very hooks. (The static
// `lock-discipline` rule exempts this file for the same reason.)
struct Edge {
  // Human-readable witness recorded the first time this edge was seen:
  // which thread acquired `to` while holding which stack, so an inversion
  // report can print *both* acquisition stacks.
  std::string witness;
};

struct Registry {
  std::mutex mutex;
  std::uint64_t next_site = 1;
  std::map<std::uint64_t, std::string> names;
  // from-site -> to-site -> first witness. Ordered maps keep failure
  // messages and DFS order deterministic for a given edge set.
  std::map<std::uint64_t, std::map<std::uint64_t, Edge>> edges;
  std::uint64_t edge_count = 0;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // Leaked: outlives all locks.
  return *registry;
}

struct HeldStack {
  std::vector<std::uint64_t> sites;
};

HeldStack& GetHeldStack() {
  thread_local HeldStack stack;
  return stack;
}

std::string NameLocked(const Registry& registry, std::uint64_t site) {
  auto it = registry.names.find(site);
  if (it != registry.names.end() && !it->second.empty()) {
    return "`" + it->second + "` (site " + std::to_string(site) + ")";
  }
  return "site " + std::to_string(site);
}

std::string DescribeStackLocked(const Registry& registry,
                                const std::vector<std::uint64_t>& sites) {
  if (sites.empty()) return "<no locks held>";
  std::string out;
  for (std::uint64_t site : sites) {
    if (!out.empty()) out += " -> ";
    out += NameLocked(registry, site);
  }
  return out;
}

// Depth-first search for a path `from -> ... -> to` in the order graph.
// Fills `path` with the sites along the way (excluding `from`).
bool FindPathLocked(const Registry& registry, std::uint64_t from,
                    std::uint64_t to, std::set<std::uint64_t>& visited,
                    std::vector<std::uint64_t>& path) {
  if (from == to) return true;
  if (!visited.insert(from).second) return false;
  auto it = registry.edges.find(from);
  if (it == registry.edges.end()) return false;
  for (const auto& [next, edge] : it->second) {
    path.push_back(next);
    if (FindPathLocked(registry, next, to, visited, path)) return true;
    path.pop_back();
  }
  return false;
}

[[noreturn]] void ReportInversionLocked(const Registry& registry,
                                        std::uint64_t held,
                                        std::uint64_t attempted,
                                        const std::vector<std::uint64_t>& path,
                                        const HeldStack& stack) {
  std::ostringstream message;
  message << "AUTOTUNE DEADLOCK SENTINEL: lock-order inversion detected\n";
  std::ostringstream thread_id;
  thread_id << std::this_thread::get_id();
  message << "  thread " << thread_id.str() << " is acquiring "
          << NameLocked(registry, attempted) << " while holding: "
          << DescribeStackLocked(registry, stack.sites) << "\n";
  message << "  but the opposite order is already on record:\n";
  // `path` walks attempted -> ... -> held; each hop carries the witness
  // stack recorded when that hop was first seen.
  std::uint64_t from = attempted;
  for (std::uint64_t to : path) {
    const Edge& edge = registry.edges.at(from).at(to);
    message << "    " << NameLocked(registry, from) << " -> "
            << NameLocked(registry, to) << ": " << edge.witness << "\n";
    from = to;
  }
  message << "  cycle: " << NameLocked(registry, held) << " -> "
          << NameLocked(registry, attempted);
  from = attempted;
  for (std::uint64_t to : path) {
    message << " -> " << NameLocked(registry, to);
    (void)from;
    from = to;
  }
  message << "\n";
  std::fprintf(stderr, "%s", message.str().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

std::uint64_t RegisterLock(const void* addr, const char* name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const std::uint64_t site = registry.next_site++;
  if (name != nullptr && name[0] != '\0') {
    registry.names[site] = name;
  } else {
    char label[32];
    std::snprintf(label, sizeof(label), "lock@%p", addr);
    registry.names[site] = label;
  }
  return site;
}

void UnregisterLock(std::uint64_t site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.names.erase(site);
}

void OnLockAttempt(std::uint64_t site) {
  HeldStack& stack = GetHeldStack();
  if (stack.sites.empty()) return;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  // Would `held -> site` close a cycle? Equivalently: does a recorded path
  // `site -> ... -> held` already exist for any held lock? Check before
  // inserting so the offending edge itself is not part of the search.
  for (std::uint64_t held : stack.sites) {
    if (held == site) continue;  // Self-deadlock is TSan's department.
    std::set<std::uint64_t> visited;
    std::vector<std::uint64_t> path;
    if (FindPathLocked(registry, site, held, visited, path)) {
      ReportInversionLocked(registry, held, site, path, stack);
    }
  }
  std::ostringstream thread_id;
  thread_id << std::this_thread::get_id();
  for (std::uint64_t held : stack.sites) {
    if (held == site) continue;
    Edge& edge = registry.edges[held][site];
    if (edge.witness.empty()) {
      edge.witness = "thread " + thread_id.str() + " acquired " +
                     NameLocked(registry, site) + " while holding [" +
                     DescribeStackLocked(registry, stack.sites) + "]";
      ++registry.edge_count;
    }
  }
}

void OnLockAcquired(std::uint64_t site) {
  GetHeldStack().sites.push_back(site);
}

void OnLockReleased(std::uint64_t site) {
  std::vector<std::uint64_t>& sites = GetHeldStack().sites;
  for (auto it = sites.rbegin(); it != sites.rend(); ++it) {
    if (*it == site) {
      sites.erase(std::next(it).base());
      return;
    }
  }
}

std::uint64_t EdgeCountForTest() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.edge_count;
}

}  // namespace lockorder
}  // namespace autotune
