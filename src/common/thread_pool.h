#ifndef AUTOTUNE_COMMON_THREAD_POOL_H_
#define AUTOTUNE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/trace_context.h"

namespace autotune {

/// Fixed-size worker pool used by the parallel trial runner. Tasks are plain
/// `std::function<void()>`; use `Submit` to get a future for a callable's
/// result. Destruction drains queued tasks, then joins.
///
/// Each task captures the submitting thread's `TraceContext` at enqueue time
/// and runs with it installed, so spans opened inside pool tasks parent under
/// the submitter's span (cross-thread trace trees, see obs/trace.h).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result.
  template <typename Fn>
  auto Submit(Fn fn) -> std::future<decltype(fn())> {
    using ResultType = decltype(fn());
    auto task = std::make_shared<std::packaged_task<ResultType()>>(
        std::move(fn));
    std::future<ResultType> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Point-in-time pool statistics (service /metrics gauges).
  struct Stats {
    size_t num_threads = 0;
    /// Tasks accepted by Submit/Enqueue since construction.
    int64_t tasks_submitted = 0;
    /// Tasks whose callable has finished running.
    int64_t tasks_completed = 0;
    /// Tasks waiting in the queue (not yet picked up by a worker).
    size_t queue_depth = 0;
    /// Tasks currently executing on a worker (= submitted - completed -
    /// queued, captured atomically under the pool lock).
    size_t running = 0;
  };
  [[nodiscard]] Stats GetStats() const EXCLUDES(mutex_);

 private:
  void Enqueue(std::function<void()> task) EXCLUDES(mutex_);
  void WorkerLoop() EXCLUDES(mutex_);

  /// A queued task plus the trace context it should run under.
  struct PendingTask {
    std::function<void()> fn;
    TraceContext trace;
  };

  mutable Mutex mutex_{"common.thread_pool"};
  std::condition_variable cv_;
  std::deque<PendingTask> queue_ GUARDED_BY(mutex_);
  int64_t tasks_submitted_ GUARDED_BY(mutex_) = 0;
  int64_t tasks_completed_ GUARDED_BY(mutex_) = 0;
  /// Started in the constructor, joined in the destructor; never mutated in
  /// between, so `num_threads()` reads it without the lock.
  std::vector<std::thread> workers_;
  bool shutting_down_ GUARDED_BY(mutex_) = false;
};

}  // namespace autotune

#endif  // AUTOTUNE_COMMON_THREAD_POOL_H_
