#ifndef AUTOTUNE_COMMON_LOG_H_
#define AUTOTUNE_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace autotune {

/// Log severity, ordered by increasing importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that gets emitted (default: kWarning, so library
/// internals stay quiet unless something is wrong).
void SetLogLevel(LogLevel level);

/// Current minimum severity.
LogLevel GetLogLevel();

namespace internal_log {

/// Stream-style log sink; writes one line to stderr on destruction if the
/// message level passes the global threshold.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_log
}  // namespace autotune

#define AUTOTUNE_LOG(level)                                       \
  ::autotune::internal_log::LogMessage(::autotune::LogLevel::level, \
                                       __FILE__, __LINE__)

#endif  // AUTOTUNE_COMMON_LOG_H_
