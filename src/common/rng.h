#ifndef AUTOTUNE_COMMON_RNG_H_
#define AUTOTUNE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"

namespace autotune {

/// Deterministic pseudo-random number generator (xoshiro256++) with the
/// distribution helpers the tuning stack needs. All randomness in the library
/// flows through explicitly seeded `Rng` instances so experiments are
/// reproducible; use `Fork()` to derive independent substreams for parallel
/// components.
class Rng {
 public:
  /// Seeds the generator. Two instances with the same seed produce identical
  /// streams.
  explicit Rng(uint64_t seed);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached spare value).
  double Normal();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Normal(double mean, double stddev);

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Exponential with rate `lambda` > 0.
  double Exponential(double lambda);

  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia-Tsang.
  double Gamma(double shape, double scale);

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Index sampled proportionally to non-negative `weights` (not necessarily
  /// normalized). Returns weights.size()-1 if all weights are zero.
  size_t Categorical(const std::vector<double>& weights);

  /// Zipf-distributed value in [0, n) with skew `s` >= 0 (s = 0 is uniform).
  /// Uses rejection-inversion, suitable for large n.
  size_t Zipf(size_t n, double s);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) uniformly (k <= n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent generator; deterministic given this generator's
  /// current state.
  Rng Fork();

  /// Serializes the full generator state (xoshiro words plus the cached
  /// Box-Muller spare) as 6 opaque words, for checkpoint/resume. A restored
  /// generator continues the exact stream of the saved one.
  std::vector<uint64_t> SaveState() const;

  /// Restores state previously produced by `SaveState`. Returns
  /// InvalidArgument if `words` has the wrong shape.
  [[nodiscard]] Status RestoreState(const std::vector<uint64_t>& words);

 private:
  uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace autotune

#endif  // AUTOTUNE_COMMON_RNG_H_
