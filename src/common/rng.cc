#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "common/check.h"

namespace autotune {

namespace {

// SplitMix64: expands a single seed into well-distributed state words.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  AUTOTUNE_CHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  AUTOTUNE_CHECK(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // Full range.
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value = NextUint64();
  while (value >= limit) value = NextUint64();
  return lo + static_cast<int64_t>(value % range);
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = Uniform();
  double u2 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  AUTOTUNE_CHECK(stddev >= 0.0);
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Exponential(double lambda) {
  AUTOTUNE_CHECK(lambda > 0.0);
  double u = Uniform();
  while (u <= 1e-300) u = Uniform();
  return -std::log(u) / lambda;
}

double Rng::Gamma(double shape, double scale) {
  AUTOTUNE_CHECK(shape > 0.0);
  AUTOTUNE_CHECK(scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape + 1 and correct with a uniform power (Marsaglia-Tsang).
    const double u = std::max(Uniform(), 1e-300);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(std::max(u, 1e-300)) <
        0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return Uniform() < p;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  AUTOTUNE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    AUTOTUNE_CHECK(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) return weights.size() - 1;
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

size_t Rng::Zipf(size_t n, double s) {
  AUTOTUNE_CHECK(n > 0);
  AUTOTUNE_CHECK(s >= 0.0);
  if (n == 1) return 0;
  if (s == 0.0) return static_cast<size_t>(UniformInt(0, n - 1));
  // Rejection-inversion sampling (Hormann & Derflinger). Harmonic integral
  // H(x) = ((x)^(1-s) - 1) / (1-s) for s != 1, log(x) for s == 1.
  const double sm1 = 1.0 - s;
  auto h_integral = [&](double x) {
    const double lx = std::log(x);
    if (std::abs(sm1) < 1e-12) return lx;
    return std::expm1(sm1 * lx) / sm1;
  };
  auto h_integral_inv = [&](double y) {
    if (std::abs(sm1) < 1e-12) return std::exp(y);
    return std::exp(std::log1p(y * sm1) / sm1);
  };
  auto h = [&](double x) { return std::exp(-s * std::log(x)); };
  const double hx0 = h_integral(static_cast<double>(n) + 0.5);
  const double hx1 = h_integral(1.5) - 1.0;
  for (;;) {
    const double u = hx1 + Uniform() * (hx0 - hx1);
    const double x = h_integral_inv(u);
    double k = std::floor(x + 0.5);
    k = std::clamp(k, 1.0, static_cast<double>(n));
    if (k - x <= 1.0 - (h_integral(k + 0.5) - h(k)) ||
        u >= h_integral(k + 0.5) - h(k)) {
      return static_cast<size_t>(k) - 1;
    }
  }
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  AUTOTUNE_CHECK(k <= n);
  // Floyd's algorithm would avoid materializing [0, n); n is small in all of
  // our uses, so a partial shuffle keeps it simple.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(
        UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n) - 1));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

std::vector<uint64_t> Rng::SaveState() const {
  std::vector<uint64_t> words(state_, state_ + 4);
  uint64_t spare_bits;
  static_assert(sizeof(spare_bits) == sizeof(spare_normal_));
  std::memcpy(&spare_bits, &spare_normal_, sizeof(spare_bits));
  words.push_back(spare_bits);
  words.push_back(has_spare_normal_ ? 1 : 0);
  return words;
}

Status Rng::RestoreState(const std::vector<uint64_t>& words) {
  if (words.size() != 6) {
    return Status::InvalidArgument("rng state must be 6 words, got " +
                                   std::to_string(words.size()));
  }
  std::copy(words.begin(), words.begin() + 4, state_);
  std::memcpy(&spare_normal_, &words[4], sizeof(spare_normal_));
  has_spare_normal_ = words[5] != 0;
  return Status::OK();
}

}  // namespace autotune
