#ifndef AUTOTUNE_COMMON_THREAD_ANNOTATIONS_H_
#define AUTOTUNE_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros (the abseil/LLVM convention,
/// trimmed to what this codebase uses). Under Clang the annotated targets
/// build with `-Wthread-safety -Werror`, turning lock-discipline mistakes —
/// touching a `GUARDED_BY` field without its mutex, calling a `REQUIRES`
/// function unlocked — into compile errors. Under GCC (which has no such
/// analysis) every macro expands to nothing, so annotations are free.
///
/// Usage:
///   std::mutex mutex_;
///   int64_t next_seq_ GUARDED_BY(mutex_);
///   void FlushLocked() REQUIRES(mutex_);
///   void Flush() EXCLUDES(mutex_);

#if defined(__clang__) && defined(__has_attribute)
#define AUTOTUNE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define AUTOTUNE_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Field is protected by the given capability (mutex).
#define GUARDED_BY(x) AUTOTUNE_THREAD_ANNOTATION_(guarded_by(x))

/// Pointee is protected by the given capability.
#define PT_GUARDED_BY(x) AUTOTUNE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Caller must hold the capability when calling.
#define REQUIRES(...) \
  AUTOTUNE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself).
#define EXCLUDES(...) \
  AUTOTUNE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function acquires / releases the capability (for lock wrappers).
#define ACQUIRE(...) \
  AUTOTUNE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define RELEASE(...) \
  AUTOTUNE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Marks a type as a lockable capability (e.g. a mutex wrapper class).
#define CAPABILITY(x) AUTOTUNE_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type that acquires in its constructor, releases in its
/// destructor.
#define SCOPED_CAPABILITY AUTOTUNE_THREAD_ANNOTATION_(scoped_lockable)

/// Return value is a reference to a guarded field; caller promises to hold
/// the lock.
#define RETURN_CAPABILITY(x) AUTOTUNE_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables analysis inside one function (for code whose
/// locking is correct but inexpressible, e.g. lock handoff across threads).
#define NO_THREAD_SAFETY_ANALYSIS \
  AUTOTUNE_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // AUTOTUNE_COMMON_THREAD_ANNOTATIONS_H_
