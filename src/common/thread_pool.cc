#include "common/thread_pool.h"

#include "common/check.h"

namespace autotune {

ThreadPool::ThreadPool(size_t num_threads) {
  AUTOTUNE_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    AUTOTUNE_CHECK_MSG(!shutting_down_, "Submit after shutdown");
    queue_.push_back(PendingTask{std::move(task), CurrentTraceContext()});
    ++tasks_submitted_;
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    PendingTask task;
    {
      CondVarLock lock(mutex_);
      lock.Wait(cv_, [this]() REQUIRES(mutex_) {
        return shutting_down_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // Shutting down and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      ScopedTraceContext scoped_trace(task.trace);
      task.fn();
    }
    {
      MutexLock lock(mutex_);
      ++tasks_completed_;
    }
  }
}

ThreadPool::Stats ThreadPool::GetStats() const {
  MutexLock lock(mutex_);
  Stats stats;
  stats.num_threads = workers_.size();
  stats.tasks_submitted = tasks_submitted_;
  stats.tasks_completed = tasks_completed_;
  stats.queue_depth = queue_.size();
  stats.running = static_cast<size_t>(
      tasks_submitted_ - tasks_completed_ -
      static_cast<int64_t>(queue_.size()));
  return stats;
}

}  // namespace autotune
