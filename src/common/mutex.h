#ifndef AUTOTUNE_COMMON_MUTEX_H_
#define AUTOTUNE_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace autotune {

/// `std::mutex` wrapped as a Clang thread-safety *capability*, so fields can
/// be declared `GUARDED_BY(mutex_)` and the analysis can verify the lock
/// discipline at compile time (the standard mutex carries no annotations in
/// libstdc++/libc++, so the analysis cannot see through it). Zero overhead:
/// the wrapper is exactly a `std::mutex` plus attributes.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mutex_.lock(); }
  void Unlock() RELEASE() { mutex_.unlock(); }

  /// The wrapped mutex, for APIs that need it (condition variables). The
  /// caller is responsible for keeping lock state consistent with what the
  /// analysis believes.
  std::mutex& native() { return mutex_; }

 private:
  std::mutex mutex_;
};

/// RAII lock for `Mutex` — `std::lock_guard` with scoped-capability
/// annotations.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() RELEASE() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII lock built on `std::unique_lock`, for waiting on a
/// `std::condition_variable` while keeping the capability annotations: the
/// analysis treats the scope as holding the mutex, which is exactly the
/// state whenever a wait predicate runs or the wait returns.
class SCOPED_CAPABILITY CondVarLock {
 public:
  explicit CondVarLock(Mutex& mutex) ACQUIRE(mutex) : lock_(mutex.native()) {}
  ~CondVarLock() RELEASE() {}

  CondVarLock(const CondVarLock&) = delete;
  CondVarLock& operator=(const CondVarLock&) = delete;

  /// Waits on `cv`; releases and reacquires the mutex internally. The
  /// predicate is always evaluated with the mutex held.
  template <typename Predicate>
  void Wait(std::condition_variable& cv, Predicate predicate) {
    cv.wait(lock_, std::move(predicate));
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace autotune

#endif  // AUTOTUNE_COMMON_MUTEX_H_
