#ifndef AUTOTUNE_COMMON_MUTEX_H_
#define AUTOTUNE_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

#ifdef AUTOTUNE_DEADLOCK_CHECK
#include <cstdint>

#include "common/lock_order.h"
#endif

namespace autotune {

/// `std::mutex` wrapped as a Clang thread-safety *capability*, so fields can
/// be declared `GUARDED_BY(mutex_)` and the analysis can verify the lock
/// discipline at compile time (the standard mutex carries no annotations in
/// libstdc++/libc++, so the analysis cannot see through it). Zero overhead in
/// normal builds: the wrapper is exactly a `std::mutex` plus attributes.
///
/// Under the `AUTOTUNE_DEADLOCK_CHECK` CMake option every lock/unlock is
/// additionally reported to the runtime deadlock sentinel
/// (`common/lock_order.h`), which aborts on the first lock-order inversion.
/// The optional constructor name labels this lock in sentinel reports and
/// costs nothing when the sentinel is compiled out.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() : Mutex(nullptr) {}
#ifdef AUTOTUNE_DEADLOCK_CHECK
  explicit Mutex(const char* name)
      : site_(lockorder::RegisterLock(this, name)) {}
  ~Mutex() { lockorder::UnregisterLock(site_); }
#else
  explicit Mutex(const char* name) { (void)name; }
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#ifdef AUTOTUNE_DEADLOCK_CHECK
    lockorder::OnLockAttempt(site_);
#endif
    mutex_.lock();
#ifdef AUTOTUNE_DEADLOCK_CHECK
    lockorder::OnLockAcquired(site_);
#endif
  }
  void Unlock() RELEASE() {
#ifdef AUTOTUNE_DEADLOCK_CHECK
    lockorder::OnLockReleased(site_);
#endif
    mutex_.unlock();
  }

  /// The wrapped mutex, for APIs that need it (condition variables). The
  /// caller is responsible for keeping lock state consistent with what the
  /// analysis (and the deadlock sentinel) believes.
  std::mutex& native() { return mutex_; }

#ifdef AUTOTUNE_DEADLOCK_CHECK
  /// Sentinel site id, for wrappers that bypass `Lock()` (see `CondVarLock`).
  std::uint64_t site() const { return site_; }
#endif

 private:
  std::mutex mutex_;
#ifdef AUTOTUNE_DEADLOCK_CHECK
  std::uint64_t site_;
#endif
};

/// RAII lock for `Mutex` — `std::lock_guard` with scoped-capability
/// annotations.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() RELEASE() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII lock built on `std::unique_lock`, for waiting on a
/// `std::condition_variable` while keeping the capability annotations: the
/// analysis treats the scope as holding the mutex, which is exactly the
/// state whenever a wait predicate runs or the wait returns.
///
/// Because the `std::unique_lock` acquires through `Mutex::native()`, this
/// class reports to the deadlock sentinel explicitly — including the
/// release/reacquire pair inside `Wait`, which is a real unlock followed by
/// a real (re)acquisition as far as lock ordering is concerned.
class SCOPED_CAPABILITY CondVarLock {
 public:
  explicit CondVarLock(Mutex& mutex) ACQUIRE(mutex)
#ifdef AUTOTUNE_DEADLOCK_CHECK
      : site_(mutex.site()), lock_(mutex.native(), std::defer_lock) {
    lockorder::OnLockAttempt(site_);
    lock_.lock();
    lockorder::OnLockAcquired(site_);
  }
  ~CondVarLock() RELEASE() { lockorder::OnLockReleased(site_); }
#else
      : lock_(mutex.native()) {
  }
  ~CondVarLock() RELEASE() {}
#endif

  CondVarLock(const CondVarLock&) = delete;
  CondVarLock& operator=(const CondVarLock&) = delete;

  /// Waits on `cv`; releases and reacquires the mutex internally. The
  /// predicate is always evaluated with the mutex held.
  template <typename Predicate>
  void Wait(std::condition_variable& cv, Predicate predicate) {
#ifdef AUTOTUNE_DEADLOCK_CHECK
    lockorder::OnLockReleased(site_);
    cv.wait(lock_, std::move(predicate));
    lockorder::OnLockAttempt(site_);
    lockorder::OnLockAcquired(site_);
#else
    cv.wait(lock_, std::move(predicate));
#endif
  }

  /// Timed variant of `Wait`, for periodic background work (heartbeat
  /// ticks) that must also wake promptly on shutdown. Returns the
  /// predicate's final value (false = timed out with the predicate still
  /// false).
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(std::condition_variable& cv,
               const std::chrono::duration<Rep, Period>& timeout,
               Predicate predicate) {
#ifdef AUTOTUNE_DEADLOCK_CHECK
    lockorder::OnLockReleased(site_);
    const bool result = cv.wait_for(lock_, timeout, std::move(predicate));
    lockorder::OnLockAttempt(site_);
    lockorder::OnLockAcquired(site_);
    return result;
#else
    return cv.wait_for(lock_, timeout, std::move(predicate));
#endif
  }

 private:
#ifdef AUTOTUNE_DEADLOCK_CHECK
  std::uint64_t site_;
#endif
  std::unique_lock<std::mutex> lock_;
};

}  // namespace autotune

#endif  // AUTOTUNE_COMMON_MUTEX_H_
