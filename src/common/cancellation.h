#ifndef AUTOTUNE_COMMON_CANCELLATION_H_
#define AUTOTUNE_COMMON_CANCELLATION_H_

#include <atomic>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace autotune {

/// Cooperative preemption signal, threaded from a controller (the service's
/// experiment manager) down to the code that runs trials. The flag is an
/// atomic so hot paths can poll it lock-free at safe stopping points
/// (repetition and retry boundaries in `TrialRunner`, wave boundaries in
/// `ParallelTrialRunner`); the human-readable reason rides behind a leaf
/// mutex that is only touched on the cold cancel/report paths.
///
/// First `Cancel` wins: later calls neither overwrite the reason nor report
/// having cancelled. Tokens are never reset — one token per unit of
/// cancellable work (the service allocates one per experiment).
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation. Returns true if this call was the first (and
  /// therefore the stored reason is `reason`), false if already cancelled.
  bool Cancel(const std::string& reason) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (cancelled_.load(std::memory_order_relaxed)) return false;
    reason_ = reason;
    // Release pairs with the acquire in cancelled(): a poller that sees the
    // flag is guaranteed a subsequent reason() read (which takes the mutex)
    // observes the reason written above.
    cancelled_.store(true, std::memory_order_release);
    return true;
  }

  /// Lock-free poll — safe from any thread, any frequency.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Why the work was cancelled; empty until `Cancel`.
  std::string reason() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return reason_;
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable Mutex mutex_{"common.cancellation"};
  std::string reason_ GUARDED_BY(mutex_);
};

}  // namespace autotune

#endif  // AUTOTUNE_COMMON_CANCELLATION_H_
