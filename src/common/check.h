#ifndef AUTOTUNE_COMMON_CHECK_H_
#define AUTOTUNE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Assertion macros for programmer errors (invariant violations). Unlike
/// `Status`, which reports expected runtime failures to callers, a failed
/// CHECK indicates a bug and aborts the process. Enabled in all build modes.
#define AUTOTUNE_CHECK(cond)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define AUTOTUNE_CHECK_MSG(cond, msg)                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #cond, msg);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#endif  // AUTOTUNE_COMMON_CHECK_H_
