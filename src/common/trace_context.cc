#include "common/trace_context.h"

#include <atomic>

namespace autotune {

namespace {

thread_local TraceContext t_trace_context;

std::atomic<uint64_t> g_next_trace_id{2};
std::atomic<uint64_t> g_next_span_id{1};

}  // namespace

TraceContext CurrentTraceContext() { return t_trace_context; }

void SetCurrentTraceContext(const TraceContext& context) {
  t_trace_context = context;
}

uint64_t NewTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t NewSpanId() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& context)
    : saved_(t_trace_context) {
  t_trace_context = context;
}

ScopedTraceContext::~ScopedTraceContext() { t_trace_context = saved_; }

}  // namespace autotune
