#ifndef AUTOTUNE_COMMON_LOCK_ORDER_H_
#define AUTOTUNE_COMMON_LOCK_ORDER_H_

#include <cstdint>

/// Runtime deadlock sentinel (a lockdep-style acquisition-order checker).
///
/// Compiled into `Mutex`/`CondVarLock` only when the `AUTOTUNE_DEADLOCK_CHECK`
/// CMake option is ON (Debug CI leg). Every `Mutex` registers a site id at
/// construction; a thread-local stack records which sites the current thread
/// holds, and each acquisition records `held -> acquired` edges into a global
/// order graph. The first acquisition that would close a cycle in that graph
/// — i.e. the first lock-order inversion, whether or not the interleaving
/// actually deadlocks this run — aborts with both acquisition stacks printed.
///
/// The static `lock-order` lint rule proves the same property over the code
/// the linter can see; this sentinel catches what tokens cannot (function
/// pointers, data-dependent paths) and turns every existing test and TSan
/// hammer into a deadlock regression test for free.
namespace autotune {
namespace lockorder {

/// Registers a lock instance and returns its site id. `name` is an optional
/// human label used in failure messages (not owned; must outlive the lock —
/// in practice a string literal). Ids are never reused, so a stale edge from
/// a destroyed lock can never alias a live one.
std::uint64_t RegisterLock(const void* addr, const char* name);

/// Forgets a destroyed lock's name. Its edges stay in the graph but its id
/// is retired, so they are unreachable from any future acquisition.
void UnregisterLock(std::uint64_t site);

/// Called before blocking on `site`: records `held -> site` edges for every
/// lock the calling thread holds and aborts — printing this thread's held
/// stack and the recorded witness stack of the reverse path — if any such
/// edge closes a cycle in the global order graph.
void OnLockAttempt(std::uint64_t site);

/// Called after `site` is acquired: pushes it onto the thread's held stack.
void OnLockAcquired(std::uint64_t site);

/// Called before `site` is released: pops it from the thread's held stack
/// (most-recent matching entry, so manual non-LIFO unlocks stay balanced).
void OnLockReleased(std::uint64_t site);

/// Number of distinct edges recorded so far (test introspection).
std::uint64_t EdgeCountForTest();

}  // namespace lockorder
}  // namespace autotune

#endif  // AUTOTUNE_COMMON_LOCK_ORDER_H_
