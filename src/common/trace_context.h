#ifndef AUTOTUNE_COMMON_TRACE_CONTEXT_H_
#define AUTOTUNE_COMMON_TRACE_CONTEXT_H_

#include <cstdint>

namespace autotune {

/// Ambient trace identity carried across threads. A *trace* groups all spans
/// belonging to one logical activity (an experiment, a CLI run); `span_id`
/// names the innermost open span, which becomes the parent of any span opened
/// while this context is current. Both ids are process-local counters — they
/// only need to be unique within one trace export, not globally.
///
/// The context lives in a thread-local slot. `ThreadPool::Enqueue` captures
/// the submitting thread's context and installs it around the task on the
/// worker, so spans opened inside pool tasks (parallel trial evaluation,
/// service-scheduled trials) parent correctly under the submitter's span
/// instead of forming orphan per-thread trees.
struct TraceContext {
  uint64_t trace_id = 0;  ///< 0 = not inside any trace.
  uint64_t span_id = 0;   ///< Innermost open span; 0 = root of the trace.
};

/// The calling thread's current context (zeroes when none installed).
[[nodiscard]] TraceContext CurrentTraceContext();

/// Replaces the calling thread's current context.
void SetCurrentTraceContext(const TraceContext& context);

/// Allocates a fresh process-unique trace id (starts at 2; id 1 is reserved
/// for untraced spans in Chrome exports, 0 means "no trace").
[[nodiscard]] uint64_t NewTraceId();

/// Allocates a fresh process-unique span id (never 0).
[[nodiscard]] uint64_t NewSpanId();

/// RAII: installs `context` for the current scope, restores the previous
/// context on destruction. Used by worker loops and the service scheduler to
/// re-parent work executed on behalf of another thread.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace autotune

#endif  // AUTOTUNE_COMMON_TRACE_CONTEXT_H_
