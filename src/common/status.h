#ifndef AUTOTUNE_COMMON_STATUS_H_
#define AUTOTUNE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace autotune {

/// Error category for a failed operation. Mirrors the usual database-library
/// convention (RocksDB/Arrow): library code never throws; fallible operations
/// return a `Status` (or `Result<T>`), and callers branch on `ok()`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kAborted,
  kUnavailable,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// The result of an operation that can fail. Cheap to copy when OK (no
/// allocation); carries a code plus message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given error `code` and `message`.
  /// `code` must not be `kOk`; use the default constructor for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers for the common error categories.
  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Modeled after
/// `arrow::Result` / `absl::StatusOr`.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK `status`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok());
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The error status (OK when a value is present).
  const Status& status() const { return status_; }

  /// Accessors. Must only be called when `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace autotune

/// Propagates a non-OK `Status` to the caller.
#define AUTOTUNE_RETURN_IF_ERROR(expr)                 \
  do {                                                 \
    ::autotune::Status _at_status = (expr);            \
    if (!_at_status.ok()) return _at_status;           \
  } while (false)

/// Evaluates `rexpr` (a Result<T>), propagating the error or binding the
/// value to `lhs`.
#define AUTOTUNE_ASSIGN_OR_RETURN(lhs, rexpr)          \
  AUTOTUNE_ASSIGN_OR_RETURN_IMPL(                      \
      AUTOTUNE_CONCAT_(_at_result, __LINE__), lhs, rexpr)

#define AUTOTUNE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define AUTOTUNE_CONCAT_(a, b) AUTOTUNE_CONCAT_IMPL_(a, b)
#define AUTOTUNE_CONCAT_IMPL_(a, b) a##b

#endif  // AUTOTUNE_COMMON_STATUS_H_
