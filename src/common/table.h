#ifndef AUTOTUNE_COMMON_TABLE_H_
#define AUTOTUNE_COMMON_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace autotune {

/// A small in-memory table of strings with named columns — the interchange
/// format between trial storage, CSV files, and the benchmark harness report
/// printers.
class Table {
 public:
  /// Creates a table with the given column names (must be non-empty and
  /// unique; enforced with CHECK since this is a programmer error).
  explicit Table(std::vector<std::string> columns);

  /// Column names, in order.
  const std::vector<std::string>& columns() const { return columns_; }

  /// Number of data rows.
  size_t num_rows() const { return rows_.size(); }

  /// Appends a row; `values.size()` must equal the column count.
  [[nodiscard]] Status AppendRow(std::vector<std::string> values);

  /// Cell accessors.
  const std::string& at(size_t row, size_t col) const;
  [[nodiscard]] Result<std::string> Get(size_t row, const std::string& column) const;

  /// Index of `column`, or NotFound.
  [[nodiscard]] Result<size_t> ColumnIndex(const std::string& column) const;

  /// Serializes to RFC-4180-ish CSV (quotes fields containing separators).
  std::string ToCsv() const;

  /// Parses CSV text produced by `ToCsv` (header row required).
  [[nodiscard]] static Result<Table> FromCsv(const std::string& text);

  /// Writes/reads CSV files.
  [[nodiscard]] Status WriteCsvFile(const std::string& path) const;
  [[nodiscard]] static Result<Table> ReadCsvFile(const std::string& path);

  /// Renders an aligned, human-readable text table (for bench reports).
  std::string ToPrettyString() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (helper for reports).
std::string FormatDouble(double value, int digits = 6);

}  // namespace autotune

#endif  // AUTOTUNE_COMMON_TABLE_H_
