#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "common/check.h"

namespace autotune {

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  AUTOTUNE_CHECK(!columns_.empty());
  std::set<std::string> seen(columns_.begin(), columns_.end());
  AUTOTUNE_CHECK_MSG(seen.size() == columns_.size(),
                     "duplicate column names");
}

Status Table::AppendRow(std::vector<std::string> values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument("row has " +
                                   std::to_string(values.size()) +
                                   " values, expected " +
                                   std::to_string(columns_.size()));
  }
  rows_.push_back(std::move(values));
  return Status::OK();
}

const std::string& Table::at(size_t row, size_t col) const {
  AUTOTUNE_CHECK(row < rows_.size());
  AUTOTUNE_CHECK(col < columns_.size());
  return rows_[row][col];
}

Result<size_t> Table::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == column) return i;
  }
  return Status::NotFound("no column named '" + column + "'");
}

Result<std::string> Table::Get(size_t row, const std::string& column) const {
  if (row >= rows_.size()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range");
  }
  AUTOTUNE_ASSIGN_OR_RETURN(size_t col, ColumnIndex(column));
  return rows_[row][col];
}

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

void AppendCsvField(const std::string& field, std::string* out) {
  if (!NeedsQuoting(field)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

// Parses one CSV record starting at *pos; advances *pos past the record's
// trailing newline (or to text.size()).
Result<std::vector<std::string>> ParseCsvRecord(const std::string& text,
                                                size_t* pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      ++i;
      break;
    } else if (c == '\r') {
      // Swallow; handles CRLF.
    } else {
      field.push_back(c);
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quoted field");
  fields.push_back(std::move(field));
  *pos = i;
  return fields;
}

}  // namespace

std::string Table::ToCsv() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendCsvField(columns_[i], &out);
  }
  out.push_back('\n');
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendCsvField(row[i], &out);
    }
    out.push_back('\n');
  }
  return out;
}

Result<Table> Table::FromCsv(const std::string& text) {
  size_t pos = 0;
  if (text.empty()) return Status::InvalidArgument("empty CSV text");
  AUTOTUNE_ASSIGN_OR_RETURN(std::vector<std::string> header,
                            ParseCsvRecord(text, &pos));
  Table table(std::move(header));
  while (pos < text.size()) {
    AUTOTUNE_ASSIGN_OR_RETURN(std::vector<std::string> row,
                              ParseCsvRecord(text, &pos));
    if (row.size() == 1 && row[0].empty()) continue;  // Trailing blank line.
    AUTOTUNE_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  return table;
}

Status Table::WriteCsvFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Unavailable("cannot open '" + path + "'");
  out << ToCsv();
  if (!out) return Status::Unavailable("write failed for '" + path + "'");
  return Status::OK();
}

Result<Table> Table::ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FromCsv(buffer.str());
}

std::string Table::ToPrettyString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.append("  ");
      out.append(row[i]);
      out.append(widths[i] - row[i].size(), ' ');
    }
    // Trim trailing spaces.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out.push_back('\n');
  };
  append_row(columns_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

}  // namespace autotune
