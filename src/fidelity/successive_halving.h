#ifndef AUTOTUNE_FIDELITY_SUCCESSIVE_HALVING_H_
#define AUTOTUNE_FIDELITY_SUCCESSIVE_HALVING_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/observation.h"
#include "space/config_space.h"

namespace autotune {

/// Options for `SuccessiveHalving`.
struct SuccessiveHalvingOptions {
  /// Keep the best 1/eta fraction at each rung.
  double eta = 3.0;
  /// Resource (e.g. repetitions, or machines sampled) at the first rung.
  int min_resource = 1;
  /// Resource at the final rung.
  int max_resource = 9;
  /// Use the median across repetitions (robust to outlier machines — the
  /// TUNA flavor, tutorial slide 71); false = mean.
  bool robust_median = true;
};

/// Per-candidate outcome of a successive-halving run.
struct HalvingOutcome {
  Configuration config;
  double score = 0.0;           ///< Last aggregated objective.
  int highest_resource = 0;     ///< Resource level the candidate reached.
  bool survived_to_final = false;
};

/// Result of a successive-halving run.
struct HalvingResult {
  std::vector<HalvingOutcome> outcomes;  ///< In input order.
  size_t winner_index = 0;               ///< Index of the best survivor.
  double total_resource_spent = 0.0;
  int rungs = 0;
};

/// Successive halving (tutorial slide 71, the core of TUNA): evaluate all
/// candidates cheaply, keep the best 1/eta, re-evaluate the survivors with
/// eta-times the resource, repeat. "Progressively run on multiple VMs iff
/// the config looks good" — the resource here abstracts repetitions /
/// machines sampled.
class SuccessiveHalving {
 public:
  /// Evaluator: runs `config` consuming `resource` units and returns one
  /// objective sample per unit (minimize convention). The evaluator is
  /// charged `resource` toward `total_resource_spent`.
  using Evaluator = std::function<std::vector<double>(
      const Configuration& config, int resource)>;

  explicit SuccessiveHalving(SuccessiveHalvingOptions options = {});

  /// Runs the tournament. Requires >= 2 candidates.
  [[nodiscard]] Result<HalvingResult> Run(const std::vector<Configuration>& candidates,
                            const Evaluator& evaluator) const;

 private:
  SuccessiveHalvingOptions options_;
};

/// Hyperband: runs several successive-halving brackets trading off "many
/// cheap candidates" against "few well-evaluated ones", sampling fresh
/// candidates per bracket. Returns the best configuration found and the
/// total resource spent.
struct HyperbandResult {
  std::optional<Configuration> best;
  double best_score = 0.0;
  double total_resource_spent = 0.0;
  int brackets = 0;
};

HyperbandResult RunHyperband(
    const ConfigSpace& space, const SuccessiveHalving::Evaluator& evaluator,
    const SuccessiveHalvingOptions& options, int candidates_per_bracket,
    int num_brackets, Rng* rng);

}  // namespace autotune

#endif  // AUTOTUNE_FIDELITY_SUCCESSIVE_HALVING_H_
