#include "fidelity/successive_halving.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "math/stats.h"

namespace autotune {

SuccessiveHalving::SuccessiveHalving(SuccessiveHalvingOptions options)
    : options_(options) {
  AUTOTUNE_CHECK(options_.eta > 1.0);
  AUTOTUNE_CHECK(options_.min_resource >= 1);
  AUTOTUNE_CHECK(options_.max_resource >= options_.min_resource);
}

Result<HalvingResult> SuccessiveHalving::Run(
    const std::vector<Configuration>& candidates,
    const Evaluator& evaluator) const {
  if (candidates.size() < 2) {
    return Status::InvalidArgument("need >= 2 candidates");
  }
  AUTOTUNE_CHECK(evaluator != nullptr);

  HalvingResult result;
  result.outcomes.reserve(candidates.size());
  for (const Configuration& config : candidates) {
    HalvingOutcome outcome{config};
    result.outcomes.push_back(std::move(outcome));
  }

  std::vector<size_t> alive(candidates.size());
  std::iota(alive.begin(), alive.end(), 0);
  int resource = options_.min_resource;

  while (true) {
    ++result.rungs;
    // Evaluate every surviving candidate at the current resource.
    std::vector<std::pair<double, size_t>> scored;
    scored.reserve(alive.size());
    for (size_t index : alive) {
      std::vector<double> samples =
          evaluator(result.outcomes[index].config, resource);
      AUTOTUNE_CHECK_MSG(!samples.empty(), "evaluator returned no samples");
      result.total_resource_spent += resource;
      const double score = options_.robust_median ? Median(samples)
                                                  : Mean(samples);
      result.outcomes[index].score = score;
      result.outcomes[index].highest_resource = resource;
      scored.emplace_back(score, index);
    }
    std::sort(scored.begin(), scored.end());

    const bool final_rung = resource >= options_.max_resource;
    if (final_rung || scored.size() <= 1) {
      result.winner_index = scored.front().second;
      for (const auto& [score, index] : scored) {
        result.outcomes[index].survived_to_final = true;
      }
      break;
    }
    // Keep the top 1/eta (at least one).
    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(std::floor(
               static_cast<double>(scored.size()) / options_.eta)));
    alive.clear();
    for (size_t i = 0; i < keep; ++i) alive.push_back(scored[i].second);
    resource = std::min(
        options_.max_resource,
        static_cast<int>(std::ceil(resource * options_.eta)));
  }
  return result;
}

HyperbandResult RunHyperband(const ConfigSpace& space,
                             const SuccessiveHalving::Evaluator& evaluator,
                             const SuccessiveHalvingOptions& options,
                             int candidates_per_bracket, int num_brackets,
                             Rng* rng) {
  AUTOTUNE_CHECK(rng != nullptr);
  AUTOTUNE_CHECK(candidates_per_bracket >= 2);
  AUTOTUNE_CHECK(num_brackets >= 1);
  HyperbandResult result;
  for (int bracket = 0; bracket < num_brackets; ++bracket) {
    // Later brackets start with fewer candidates but more initial resource.
    SuccessiveHalvingOptions bracket_options = options;
    bracket_options.min_resource = std::min(
        options.max_resource,
        static_cast<int>(options.min_resource *
                         std::pow(options.eta, bracket)));
    const int num_candidates = std::max(
        2, static_cast<int>(candidates_per_bracket /
                            std::pow(options.eta, bracket)));
    std::vector<Configuration> candidates;
    candidates.reserve(static_cast<size_t>(num_candidates));
    for (int i = 0; i < num_candidates; ++i) {
      auto config = space.SampleFeasible(rng);
      if (!config.ok()) continue;
      candidates.push_back(std::move(config).value());
    }
    if (candidates.size() < 2) continue;
    SuccessiveHalving halving(bracket_options);
    auto run = halving.Run(candidates, evaluator);
    if (!run.ok()) continue;
    ++result.brackets;
    result.total_resource_spent += run->total_resource_spent;
    const HalvingOutcome& winner = run->outcomes[run->winner_index];
    if (!result.best.has_value() || winner.score < result.best_score) {
      result.best = winner.config;
      result.best_score = winner.score;
    }
  }
  return result;
}

}  // namespace autotune
