#ifndef AUTOTUNE_FIDELITY_MULTI_FIDELITY_H_
#define AUTOTUNE_FIDELITY_MULTI_FIDELITY_H_

#include <vector>

#include "core/optimizer.h"
#include "core/trial_runner.h"
#include "core/tuning_loop.h"

namespace autotune {

/// Options for `RunMultiFidelityTuning`.
struct MultiFidelityOptions {
  /// Fidelity of the cheap screening phase (e.g. TPC-H SF1 vs SF100,
  /// tutorial slide 66).
  double low_fidelity = 0.1;
  /// Number of cheap screening trials.
  int low_fidelity_trials = 40;
  /// How many of the best screened configs get promoted to full fidelity.
  int promote_top_k = 5;
  /// Discount applied to low-fidelity observations when feeding the
  /// optimizer ("score it with lower confidence", slide 66): the observed
  /// objective is kept but failures at low fidelity are NOT imputed into
  /// the model as full-fidelity truth.
  bool feed_low_fidelity_to_optimizer = true;
};

/// Result of a multi-fidelity session.
struct MultiFidelityResult {
  std::optional<Observation> best;   ///< Best FULL-fidelity observation.
  double total_cost = 0.0;
  int low_fidelity_trials = 0;
  int high_fidelity_trials = 0;
  std::vector<Observation> screened;  ///< Low-fidelity history.
  std::vector<Observation> promoted;  ///< Full-fidelity evaluations.
};

/// Two-phase multi-fidelity tuning (tutorial slides 65-66): screen many
/// configurations with a cheap low-fidelity benchmark, then promote the
/// top-k to full fidelity and report the best full-fidelity result. The
/// caveat from the tutorial applies and is visible in the benches: if the
/// cheap benchmark shifts which knobs matter (e.g. everything fits in
/// memory at SF1), promotion quality degrades — knowledge is transferable
/// only when the fidelities agree on the response surface.
MultiFidelityResult RunMultiFidelityTuning(Optimizer* optimizer,
                                           TrialRunner* runner,
                                           const MultiFidelityOptions&
                                               options);

}  // namespace autotune

#endif  // AUTOTUNE_FIDELITY_MULTI_FIDELITY_H_
