#include "fidelity/multi_fidelity.h"

#include <algorithm>

#include "common/check.h"

namespace autotune {

MultiFidelityResult RunMultiFidelityTuning(
    Optimizer* optimizer, TrialRunner* runner,
    const MultiFidelityOptions& options) {
  AUTOTUNE_CHECK(optimizer != nullptr);
  AUTOTUNE_CHECK(runner != nullptr);
  AUTOTUNE_CHECK(options.low_fidelity > 0.0 && options.low_fidelity <= 1.0);
  AUTOTUNE_CHECK(options.low_fidelity_trials >= 1);
  AUTOTUNE_CHECK(options.promote_top_k >= 1);

  MultiFidelityResult result;
  const double cost_before = runner->total_cost();

  // Phase 1: cheap screening.
  runner->set_fidelity(options.low_fidelity);
  for (int i = 0; i < options.low_fidelity_trials; ++i) {
    auto suggestion = optimizer->Suggest();
    if (!suggestion.ok()) break;
    Observation obs = runner->Evaluate(*suggestion);
    ++result.low_fidelity_trials;
    result.screened.push_back(obs);
    if (options.feed_low_fidelity_to_optimizer && !obs.failed) {
      Status status = optimizer->Observe(obs);
      AUTOTUNE_CHECK(status.ok());
    }
  }

  // Phase 2: promote the best screened configs to full fidelity.
  std::vector<size_t> order(result.screened.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&result](size_t a, size_t b) {
    return result.screened[a].objective < result.screened[b].objective;
  });
  runner->set_fidelity(1.0);
  const size_t promote = std::min<size_t>(
      static_cast<size_t>(options.promote_top_k), order.size());
  for (size_t i = 0; i < promote; ++i) {
    const Observation& screened = result.screened[order[i]];
    if (screened.failed) continue;
    Observation full = runner->Evaluate(screened.config);
    ++result.high_fidelity_trials;
    result.promoted.push_back(full);
    if (!full.failed &&
        (!result.best.has_value() ||
         full.objective < result.best->objective)) {
      result.best = full;
    }
  }
  result.total_cost = runner->total_cost() - cost_before;
  return result;
}

}  // namespace autotune
