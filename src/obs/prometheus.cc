#include "obs/prometheus.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace autotune {
namespace obs {

namespace {

std::string FormatValue(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string FormatValue(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  return buf;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (alpha || c == '_' || c == ':' || (digit && i > 0)) {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty()) out = "_";
  return out;
}

std::string RenderPrometheus(const Json& snapshot,
                             const std::string& prefix) {
  std::string out;
  const auto emit_scalar = [&out, &prefix](const std::string& name,
                                           const char* type,
                                           const std::string& value) {
    const std::string metric = prefix + PrometheusName(name);
    out += "# TYPE " + metric + " " + type + "\n";
    out += metric + " " + value + "\n";
  };

  const Result<Json> counters = snapshot.Get("counters");
  if (counters.ok() && counters->is_object()) {
    for (const auto& [name, value] : counters->AsObject()) {
      emit_scalar(name, "counter", FormatValue(value.AsInt()));
    }
  }
  const Result<Json> gauges = snapshot.Get("gauges");
  if (gauges.ok() && gauges->is_object()) {
    for (const auto& [name, value] : gauges->AsObject()) {
      emit_scalar(name, "gauge", FormatValue(value.AsDouble()));
    }
  }
  const Result<Json> histograms = snapshot.Get("histograms");
  if (histograms.ok() && histograms->is_object()) {
    for (const auto& [name, histogram] : histograms->AsObject()) {
      const std::string metric = prefix + PrometheusName(name);
      out += "# TYPE " + metric + " histogram\n";
      const int64_t total = histogram.GetInt("count", 0);
      int64_t cumulative = 0;
      const Result<Json> buckets = histogram.Get("buckets");
      if (buckets.ok() && buckets->is_array()) {
        for (const Json& bucket : buckets->AsArray()) {
          // The JSON snapshot skips empty buckets and stores per-bucket
          // counts; Prometheus wants cumulative counts at each bound.
          const Result<Json> le = bucket.Get("le");
          if (!le.ok() || le->is_string()) continue;  // "+inf" handled below.
          cumulative += bucket.GetInt("count", 0);
          out += metric + "_bucket{le=\"" + FormatValue(le->AsDouble()) +
                 "\"} " + FormatValue(cumulative) + "\n";
        }
      }
      out += metric + "_bucket{le=\"+Inf\"} " + FormatValue(total) + "\n";
      out += metric + "_sum " + FormatValue(histogram.GetDouble("sum", 0.0)) +
             "\n";
      out += metric + "_count " + FormatValue(total) + "\n";
    }
  }
  return out;
}

std::string RenderPrometheus(const MetricsRegistry& registry,
                             const std::string& prefix) {
  return RenderPrometheus(registry.ToJson(), prefix);
}

}  // namespace obs
}  // namespace autotune
