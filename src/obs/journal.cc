#include "obs/journal.h"

#include <chrono>
#include <cstdlib>

#include "common/check.h"
#include "common/log.h"

namespace autotune {
namespace obs {

namespace {

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Journal::Journal(std::string path, std::FILE* file)
    : path_(std::move(path)),
      file_(file),
      writer_(std::make_unique<ThreadPool>(1)) {}

Result<std::unique_ptr<Journal>> Journal::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status::Unavailable("cannot open journal '" + path +
                               "' for appending");
  }
  return std::unique_ptr<Journal>(new Journal(path, file));
}

Journal::~Journal() {
  writer_.reset();  // Drains queued writes, then joins.
  std::fclose(file_);
}

void Journal::Append(Json event) {
  AUTOTUNE_CHECK_MSG(event.is_object() && event.Has("event"),
                     "journal events must be objects with an 'event' member");
  MutexLock lock(mutex_);
  event.AsObject()["seq"] =
      Json(next_seq_.fetch_add(1, std::memory_order_relaxed));
  event.AsObject()["ts_ms"] = Json(NowMillis());
  std::string line = event.Dump();
  line.push_back('\n');
  // Serialization happened above on the caller's thread; only the file
  // write rides the background thread. Flushing per event bounds loss on a
  // kill to the in-flight line.
  writer_->Submit([this, line = std::move(line)]() {
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
  });
}

void Journal::Event(const std::string& kind, Json::Object fields) {
  fields["event"] = Json(kind);
  Append(Json(std::move(fields)));
}

void Journal::Flush() {
  writer_->Submit([]() {}).wait();
}

// ---- Event payload encoding ------------------------------------------------

namespace {

Json ParamValueToJson(const ParamValue& value) {
  if (std::holds_alternative<double>(value)) {
    return Json(std::get<double>(value));
  }
  if (std::holds_alternative<int64_t>(value)) {
    return Json(std::get<int64_t>(value));
  }
  if (std::holds_alternative<bool>(value)) {
    return Json(std::get<bool>(value));
  }
  return Json(std::get<std::string>(value));
}

Result<ParamValue> ParamValueFromJson(const ParameterSpec& spec,
                                      const Json& value) {
  switch (spec.type()) {
    case ParameterType::kFloat:
      if (!value.is_number()) break;
      return ParamValue(value.AsDouble());
    case ParameterType::kInt:
      if (!value.is_number()) break;
      return ParamValue(value.is_int()
                            ? value.AsInt()
                            : static_cast<int64_t>(value.AsDouble()));
    case ParameterType::kCategorical:
      if (!value.is_string()) break;
      return ParamValue(value.AsString());
    case ParameterType::kBool:
      if (!value.is_bool()) break;
      return ParamValue(value.AsBool());
  }
  return Status::InvalidArgument("journaled value for '" + spec.name() +
                                 "' has the wrong JSON type");
}

}  // namespace

Json EncodeConfig(const Configuration& config) {
  const ConfigSpace& space = config.space();
  Json::Object object;
  for (size_t i = 0; i < space.size(); ++i) {
    object[space.param(i).name()] = ParamValueToJson(config.ValueAt(i));
  }
  return Json(std::move(object));
}

Json EncodeObservation(const Observation& observation) {
  Json::Object object;
  object["config"] = EncodeConfig(observation.config);
  object["objective"] = Json(observation.objective);
  object["failed"] = Json(observation.failed);
  object["cost"] = Json(observation.cost);
  object["fidelity"] = Json(observation.fidelity);
  object["repetitions"] = Json(int64_t{observation.repetitions});
  Json::Object metrics;
  for (const auto& [name, value] : observation.metrics) {
    metrics[name] = Json(value);
  }
  object["metrics"] = Json(std::move(metrics));
  return Json(std::move(object));
}

Result<Observation> DecodeObservation(const ConfigSpace* space,
                                      const Json& encoded) {
  if (space == nullptr) return Status::InvalidArgument("null space");
  AUTOTUNE_ASSIGN_OR_RETURN(Json config_json, encoded.Get("config"));
  if (!config_json.is_object()) {
    return Status::InvalidArgument("'config' is not an object");
  }
  std::vector<std::pair<std::string, ParamValue>> values;
  for (size_t i = 0; i < space->size(); ++i) {
    const ParameterSpec& spec = space->param(i);
    auto member = config_json.Get(spec.name());
    if (!member.ok()) {
      return Status::InvalidArgument("journaled config missing parameter '" +
                                     spec.name() + "'");
    }
    AUTOTUNE_ASSIGN_OR_RETURN(ParamValue value,
                              ParamValueFromJson(spec, *member));
    values.emplace_back(spec.name(), std::move(value));
  }
  AUTOTUNE_ASSIGN_OR_RETURN(Configuration config, space->Make(values));
  Observation observation(std::move(config),
                          encoded.GetDouble("objective", 0.0));
  observation.failed = encoded.GetBool("failed", false);
  observation.cost = encoded.GetDouble("cost", 0.0);
  observation.fidelity = encoded.GetDouble("fidelity", 1.0);
  observation.repetitions =
      static_cast<int>(encoded.GetInt("repetitions", 1));
  auto metrics = encoded.Get("metrics");
  if (metrics.ok() && metrics->is_object()) {
    for (const auto& [name, value] : metrics->AsObject()) {
      if (value.is_number()) observation.metrics[name] = value.AsDouble();
    }
  }
  return observation;
}

Json EncodeSpaceSchema(const ConfigSpace& space) {
  Json::Array params;
  for (size_t i = 0; i < space.size(); ++i) {
    Json::Object param;
    param["name"] = Json(space.param(i).name());
    param["type"] = Json(ParameterTypeToString(space.param(i).type()));
    params.push_back(Json(std::move(param)));
  }
  return Json(std::move(params));
}

Status CheckSpaceSchema(const ConfigSpace& space, const Json& schema) {
  if (!schema.is_array()) {
    return Status::InvalidArgument("space schema is not an array");
  }
  const Json::Array& params = schema.AsArray();
  if (params.size() != space.size()) {
    return Status::FailedPrecondition(
        "journaled space has " + std::to_string(params.size()) +
        " parameters, current space has " + std::to_string(space.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    const std::string name = params[i].GetString("name", "");
    const std::string type = params[i].GetString("type", "");
    if (name != space.param(i).name() ||
        type != ParameterTypeToString(space.param(i).type())) {
      return Status::FailedPrecondition(
          "journaled parameter " + std::to_string(i) + " is '" + name + "' (" +
          type + "), current space has '" + space.param(i).name() + "' (" +
          ParameterTypeToString(space.param(i).type()) + ")");
    }
  }
  return Status::OK();
}

Json EncodeRngState(const std::vector<uint64_t>& words) {
  Json::Array encoded;
  for (uint64_t word : words) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(word));
    encoded.push_back(Json(std::string(buf)));
  }
  return Json(std::move(encoded));
}

Result<std::vector<uint64_t>> DecodeRngState(const Json& encoded) {
  if (!encoded.is_array()) {
    return Status::InvalidArgument("rng state is not an array");
  }
  std::vector<uint64_t> words;
  for (const Json& word : encoded.AsArray()) {
    if (!word.is_string()) {
      return Status::InvalidArgument("rng state word is not a hex string");
    }
    char* end = nullptr;
    words.push_back(std::strtoull(word.AsString().c_str(), &end, 16));
    if (end != word.AsString().c_str() + word.AsString().size()) {
      return Status::InvalidArgument("malformed rng state word '" +
                                     word.AsString() + "'");
    }
  }
  return words;
}

// ---- Replay ----------------------------------------------------------------

namespace {

Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::NotFound("cannot open journal '" + path + "'");
  }
  std::string text;
  char buf[1 << 16];
  size_t read;
  while ((read = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    text.append(buf, read);
  }
  std::fclose(file);
  return text;
}

}  // namespace

Result<JournalReplay> ReplayJournal(const std::string& path,
                                    const ConfigSpace* space) {
  if (space == nullptr) return Status::InvalidArgument("null space");
  AUTOTUNE_ASSIGN_OR_RETURN(std::string text, ReadWholeFile(path));

  JournalReplay replay;
  size_t begin = 0;
  int64_t line_number = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    const bool final_line = end == std::string::npos;
    if (final_line) end = text.size();
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    auto parsed = Json::Parse(line);
    if (!parsed.ok()) {
      // A partial trailing line is the expected signature of a killed
      // process; anything earlier means corruption.
      if (begin >= text.size()) {
        AUTOTUNE_LOG(kWarning)
            << "journal '" << path << "': discarding truncated final line";
        break;
      }
      return Status::InvalidArgument(
          "journal '" + path + "' line " + std::to_string(line_number) +
          ": " + parsed.status().message());
    }
    const Json& event = *parsed;
    const std::string kind = event.GetString("event", "");
    if (kind == "experiment_started") {
      if (replay.experiment.is_null()) replay.experiment = event;
    } else if (kind == "loop_started") {
      auto schema = event.Get("space");
      if (schema.ok()) {
        AUTOTUNE_RETURN_IF_ERROR(CheckSpaceSchema(*space, *schema));
      }
    } else if (kind == "trial_completed") {
      auto observation_json = event.Get("observation");
      if (!observation_json.ok()) {
        return Status::InvalidArgument(
            "journal line " + std::to_string(line_number) +
            ": trial_completed without observation");
      }
      AUTOTUNE_ASSIGN_OR_RETURN(Observation observation,
                                DecodeObservation(space, *observation_json));
      replay.observations.push_back(std::move(observation));
      auto rng = event.Get("runner_rng");
      if (rng.ok()) {
        AUTOTUNE_ASSIGN_OR_RETURN(replay.runner_rng, DecodeRngState(*rng));
      }
    } else if (kind == "experiment_finished") {
      replay.finished = true;
    }
    // trial_started / incumbent_updated / optimizer_snapshot are
    // diagnostics; replay does not need them.
  }
  return replay;
}

Result<Json> ReadFirstEvent(const std::string& path,
                            const std::string& kind) {
  AUTOTUNE_ASSIGN_OR_RETURN(std::string text, ReadWholeFile(path));
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto parsed = Json::Parse(line);
    if (!parsed.ok()) continue;  // Truncated tail or foreign line.
    if (parsed->GetString("event", "") == kind) return *parsed;
  }
  return Status::NotFound("journal '" + path + "' has no '" + kind +
                          "' event");
}

}  // namespace obs
}  // namespace autotune
