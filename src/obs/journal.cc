#include "obs/journal.h"

#include <chrono>
#include <cstdlib>

#include "common/check.h"
#include "common/log.h"
#include "obs/metrics.h"

namespace autotune {
namespace obs {

int64_t NowEpochMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

Journal::Journal(std::string path, std::FILE* file)
    : path_(std::move(path)),
      file_(file),
      writer_(std::make_unique<ThreadPool>(1)) {}

Result<std::unique_ptr<Journal>> Journal::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status::Unavailable("cannot open journal '" + path +
                               "' for appending");
  }
  // "a" positions at end-of-file, so ftell == 0 means a fresh journal: stamp
  // it with the schema version. The header is written inline (not through
  // Append) so it carries no "seq" and existing seq-based invariants hold.
  if (std::ftell(file) == 0) {
    Json::Object header;
    header["event"] = Json("journal_header");
    header["schema_version"] = Json(kJournalSchemaVersion);
    std::string line = Json(std::move(header)).Dump();
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), file);
    std::fflush(file);
  }
  return std::unique_ptr<Journal>(new Journal(path, file));
}

Journal::~Journal() {
  writer_.reset();  // Drains queued writes, then joins.
  std::fclose(file_);
}

void Journal::Append(Json event) {
  AUTOTUNE_CHECK_MSG(event.is_object() && event.Has("event"),
                     "journal events must be objects with an 'event' member");
  MutexLock lock(mutex_);
  if (gate_ && !gate_()) {
    // Fenced off (this process lost the tenant's lease): the event is
    // dropped so the journal's new owner sees exactly the bytes it adopted.
    MetricsRegistry::Global().Increment("journal.appends_fenced");
    return;
  }
  event.AsObject()["seq"] =
      Json(next_seq_.fetch_add(1, std::memory_order_relaxed));
  event.AsObject()["ts_ms"] = Json(NowEpochMs());
  std::string line = event.Dump();
  line.push_back('\n');
  // Serialization happened above on the caller's thread; only the file
  // write rides the background thread. Flushing per event bounds loss on a
  // kill to the in-flight line.
  writer_->Submit([this, line = std::move(line)]() {
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
  });
}

void Journal::Event(const std::string& kind, Json::Object fields) {
  fields["event"] = Json(kind);
  Append(Json(std::move(fields)));
}

void Journal::SetWriteGate(WriteGate gate) {
  MutexLock lock(mutex_);
  gate_ = std::move(gate);
}

void Journal::Flush() {
  writer_->Submit([]() {}).wait();
}

// ---- Journal file reading --------------------------------------------------

Result<std::string> ReadJournalText(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::NotFound("cannot open journal '" + path + "'");
  }
  std::string text;
  char buf[1 << 16];
  size_t read;
  while ((read = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    text.append(buf, read);
  }
  std::fclose(file);
  return text;
}

Result<Json> ReadFirstEvent(const std::string& path,
                            const std::string& kind) {
  AUTOTUNE_ASSIGN_OR_RETURN(std::string text, ReadJournalText(path));
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto parsed = Json::Parse(line);
    if (!parsed.ok()) continue;  // Truncated tail or foreign line.
    if (parsed->GetString("event", "") == kind) return *parsed;
  }
  return Status::NotFound("journal '" + path + "' has no '" + kind +
                          "' event");
}

}  // namespace obs
}  // namespace autotune
