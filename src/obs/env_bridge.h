#ifndef AUTOTUNE_OBS_ENV_BRIDGE_H_
#define AUTOTUNE_OBS_ENV_BRIDGE_H_

namespace autotune {
namespace obs {

/// Installs the process-global `env::EnvObserver` bridge that forwards
/// environment spans to the trace buffer and counters to the metrics
/// registry. Idempotent and cheap; called from the `TrialRunner`
/// constructor so any binary that runs trials gets environment
/// observability without further wiring (and without relying on static
/// initializers surviving static-library dead-stripping).
void InstallEnvObserver();

}  // namespace obs
}  // namespace autotune

#endif  // AUTOTUNE_OBS_ENV_BRIDGE_H_
