#ifndef AUTOTUNE_OBS_JOURNAL_H_
#define AUTOTUNE_OBS_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "obs/json.h"

namespace autotune {
namespace obs {

/// Wall-clock epoch milliseconds — THE sanctioned time source for
/// diagnostic metadata (journal "ts_ms" stamps, lease heartbeats, deadline
/// anchors). Tuning state must never depend on it; the determinism lint
/// bans raw clock APIs everywhere outside this shim and the trace clocks.
int64_t NowEpochMs();

/// Version of the journal file format this build writes (journal_header
/// event). Bump when an incompatible change is made to event schemas;
/// readers (`record::ReplayJournal`, `autotune_cli analyze`) warn — but
/// still parse best-effort — when they meet a newer version.
inline constexpr int64_t kJournalSchemaVersion = 1;

/// Append-only JSONL experiment journal — the durable record of a tuning
/// session (the MLOS-style "every trial persisted with full context"
/// design). One JSON object per line; events carry a monotonically
/// increasing "seq" and a wall-clock "ts_ms". Serialization happens on the
/// caller's thread (cheap), the file write + flush on a single background
/// writer thread, so journaling never blocks the tuning loop on disk I/O.
/// Every line is flushed to the OS as it is written, so a killed process
/// loses at most the event being written — the partial trailing line is
/// tolerated (and discarded) by `Replay`.
///
/// Event taxonomy (see docs/OBSERVABILITY.md for full schemas):
///   journal_header       {"schema_version"} — first line of a fresh file
///   experiment_started   CLI/session metadata, written by the caller
///   loop_started         loop options + optimizer + space schema
///   trial_started        {"trial", "config"}
///   trial_completed      observation fields + runner RNG state
///   incumbent_updated    {"trial", "objective", "config"}
///   optimizer_snapshot   periodic {"trial", "num_observations", ...}
///   experiment_finished  {"trials", "total_cost", "converged_early"}
class Journal {
 public:
  /// Opens `path` for appending (created if missing). A fresh (empty) file
  /// gets a `journal_header` first line carrying `kJournalSchemaVersion`;
  /// the header is transport metadata and does NOT consume a "seq".
  /// Re-opening an existing journal (resume) never writes a second header.
  [[nodiscard]] static Result<std::unique_ptr<Journal>> Open(const std::string& path);

  /// Flushes pending events and closes the file.
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one event. `event` must be a JSON object with an "event"
  /// member; "seq" and "ts_ms" are stamped here. Thread-safe; events are
  /// written in Append order.
  void Append(Json event) EXCLUDES(mutex_);

  /// Convenience: Append({"event": kind, ...fields}).
  void Event(const std::string& kind, Json::Object fields = {});

  /// Blocks until every appended event has reached the OS.
  void Flush();

  /// Fencing hook for multi-process shard failover: when a gate is set,
  /// `Append` consults it and silently DROPS the event when it returns
  /// false (counted in the `journal.appends_fenced` metric). A deposed
  /// lease holder installs a gate that reads its fenced flag, so its
  /// in-flight trial cannot scribble on a journal that a surviving shard
  /// has already adopted. The gate runs on every Append under the journal's
  /// leaf mutex — it MUST be lock-free (read atomics only) and MUST NOT
  /// call back into the journal or any subsystem that takes locks.
  using WriteGate = std::function<bool()>;
  void SetWriteGate(WriteGate gate) EXCLUDES(mutex_);

  const std::string& path() const { return path_; }
  int64_t events_written() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

 private:
  Journal(std::string path, std::FILE* file);

  std::string path_;
  /// Written and flushed only on the single writer thread (and in the
  /// destructor, after the writer has joined).
  std::FILE* file_;
  Mutex mutex_{"obs.journal"};  ///< Orders seq stamping with queue submission.
  WriteGate gate_ GUARDED_BY(mutex_);
  /// Incremented only under `mutex_` (atomic so `events_written()` can read
  /// it from any thread without taking the lock).
  std::atomic<int64_t> next_seq_{0};
  /// Declared last so it drains and joins before `file_` is closed.
  std::unique_ptr<ThreadPool> writer_;
};

// ---- Journal file reading --------------------------------------------------
//
// The payload schemas (observations, configs, checkpoints) live in
// `record/codec.h`, keeping this transport layer ignorant of core domain
// types; `record::ReplayJournal` is the full-history reader.

/// Reads the raw text of a journal file (NotFound if it cannot be opened).
/// Building block for replay parsers in higher layers.
[[nodiscard]] Result<std::string> ReadJournalText(const std::string& path);

/// Scans a journal for the first event of the given kind, without needing
/// a configuration space (used by the CLI to recover session metadata
/// before it can construct the environment). NotFound if absent. Truncated
/// or foreign lines are skipped.
[[nodiscard]] Result<Json> ReadFirstEvent(const std::string& path,
                            const std::string& kind);

}  // namespace obs
}  // namespace autotune

#endif  // AUTOTUNE_OBS_JOURNAL_H_
