#include "obs/env_bridge.h"

#include "env/env_observer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace autotune {
namespace obs {

namespace {

/// Forwards the env layer's narrow observer interface to the obs backends.
/// Span tokens are heap-allocated `obs::Span`s, so nesting and
/// multi-threaded environments behave exactly like direct Span usage.
class ObsEnvBridge : public env::EnvObserver {
 public:
  void* BeginSpan(const char* name) override { return new Span(name); }

  void EndSpan(void* token) override { delete static_cast<Span*>(token); }

  void IncrementCounter(const char* name, double delta) override {
    MetricsRegistry::Global().Increment(name,
                                        static_cast<int64_t>(delta));
  }
};

}  // namespace

void InstallEnvObserver() {
  static ObsEnvBridge bridge;
  env::SetEnvObserver(&bridge);
}

namespace {

/// Best-effort install at static-init time for binaries that use
/// environments without a TrialRunner.
struct EnvBridgeRegistrar {
  EnvBridgeRegistrar() { InstallEnvObserver(); }
} env_bridge_registrar;

}  // namespace

}  // namespace obs
}  // namespace autotune
