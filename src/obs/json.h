#ifndef AUTOTUNE_OBS_JSON_H_
#define AUTOTUNE_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace autotune {
namespace obs {

/// Minimal JSON document model for the observability layer: journal events,
/// metrics exports, and trace dumps. Deliberately small — objects keep keys
/// sorted (std::map) so output is deterministic and diffable, integers are
/// kept distinct from doubles so 64-bit knob values survive a round trip.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}        // NOLINT(runtime/explicit)
  Json(bool value) : value_(value) {}              // NOLINT(runtime/explicit)
  Json(int value) : value_(int64_t{value}) {}      // NOLINT(runtime/explicit)
  Json(int64_t value) : value_(value) {}           // NOLINT(runtime/explicit)
  Json(uint64_t value)                             // NOLINT(runtime/explicit)
      : value_(static_cast<int64_t>(value)) {}
  Json(double value) : value_(value) {}            // NOLINT(runtime/explicit)
  Json(const char* value)                          // NOLINT(runtime/explicit)
      : value_(std::string(value)) {}
  Json(std::string value)                          // NOLINT(runtime/explicit)
      : value_(std::move(value)) {}
  Json(Array value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Json(Object value)                               // NOLINT(runtime/explicit)
      : value_(std::move(value)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  /// Typed accessors; CHECK-fail on alternative mismatch (`AsDouble` accepts
  /// both numeric alternatives).
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  const Object& AsObject() const;
  Array& AsArray();
  Object& AsObject();

  /// Object lookup: the member value, or NotFound.
  [[nodiscard]] Result<Json> Get(const std::string& key) const;

  /// Object lookup with a default when the key is absent.
  bool GetBool(const std::string& key, bool fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

  /// True if this is an object containing `key`.
  bool Has(const std::string& key) const;

  /// Serializes to compact JSON (no whitespace). Doubles render with enough
  /// digits to round-trip; NaN/Inf (not representable in JSON) render null.
  std::string Dump() const;

  /// Serializes with 2-space indentation (for human-facing exports).
  std::string Pretty() const;

  /// Parses one JSON document (surrounding whitespace allowed; trailing
  /// garbage is an error).
  [[nodiscard]] static Result<Json> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      value_;
};

/// Appends `text` JSON-escaped (quotes included) to `out`.
void AppendJsonString(const std::string& text, std::string* out);

}  // namespace obs
}  // namespace autotune

#endif  // AUTOTUNE_OBS_JSON_H_
