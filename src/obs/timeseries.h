#ifndef AUTOTUNE_OBS_TIMESERIES_H_
#define AUTOTUNE_OBS_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace autotune {
namespace obs {

/// One retained sample: wall-clock timestamp (epoch ms, from the
/// `NowEpochMs` shim) and the sampled value.
struct SamplePoint {
  int64_t ts_ms = 0;
  double value = 0.0;
};

/// Fixed-memory in-process time-series store: a bounded ring buffer per
/// series, filled by periodically sampling a `MetricsRegistry` snapshot.
///
/// Sampling rules (one series per scalar the dashboard can draw):
///   counter `c`     -> series `c`, value = delta since the previous tick.
///                      The first sight of a counter only primes the delta
///                      baseline (no point emitted), so a counter that is
///                      already at 10^6 when sampling starts does not show
///                      a phantom spike.
///   gauge `g`       -> series `g`, value as-is.
///   histogram `h`   -> series `h.p50` and `h.p99` (the registry's
///                      interpolated quantile estimates, cumulative since
///                      process start) plus `h.count` as a per-tick delta.
///
/// Memory is strictly bounded: at most `max_series` series of
/// `samples_per_series` points each. A full ring overwrites its oldest
/// point and counts the loss in the `obs.timeseries.samples_dropped`
/// counter (retention math: docs/OBSERVABILITY.md); a full series table
/// drops NEW series and counts them in `obs.timeseries.series_dropped`.
///
/// Wall-clock sampling lives strictly OUTSIDE the bit-exact journal: the
/// store is diagnostic state, never tuning state (the PR 5 precedent of
/// keeping non-deterministic latency payloads out of replayed history).
///
/// Thread-safety: all methods are safe from any thread (one leaf mutex; no
/// callbacks run under it).
class TimeSeriesStore {
 public:
  struct Options {
    /// Ring capacity per series (how many ticks of history survive).
    size_t samples_per_series = 600;
    /// Upper bound on distinct series (fixed-memory guarantee).
    size_t max_series = 4096;
  };

  explicit TimeSeriesStore(Options options);
  TimeSeriesStore() : TimeSeriesStore(Options()) {}

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Takes one sample of `registry` (see the class comment for the
  /// per-kind rules), stamped `now_ms`. Typically called on a sampler tick
  /// thread; scrapes may run concurrently.
  void Sample(const MetricsRegistry& registry, int64_t now_ms)
      EXCLUDES(mutex_);

  /// Appends one point to `name` directly (tests; derived series).
  void Push(const std::string& name, int64_t ts_ms, double value)
      EXCLUDES(mutex_);

  /// Points of `name` with `ts_ms >= now_ms - window_ms`, oldest first.
  /// `window_ms <= 0` returns the full retained ring. Unknown series ->
  /// empty.
  std::vector<SamplePoint> Query(const std::string& name, int64_t window_ms,
                                 int64_t now_ms) const EXCLUDES(mutex_);

  /// True if the series exists (has ever stored a point).
  bool Has(const std::string& name) const EXCLUDES(mutex_);

  /// All series names, sorted.
  std::vector<std::string> Names() const EXCLUDES(mutex_);

  size_t num_series() const EXCLUDES(mutex_);
  int64_t ticks() const EXCLUDES(mutex_);

  /// {"series": {name: [{"ts_ms":..., "value":...}, ...]}, "ticks": N}
  /// restricted to `window_ms` (<= 0 = everything) — the
  /// GET /metrics/history payload. When `name` is non-empty only that
  /// series is included (NotFound when it does not exist).
  [[nodiscard]] Result<Json> HistoryJson(const std::string& name,
                                         int64_t window_ms,
                                         int64_t now_ms) const
      EXCLUDES(mutex_);

  const Options& options() const { return options_; }

 private:
  /// Bounded ring of points plus the delta baseline for counter series.
  struct Series {
    std::vector<SamplePoint> ring;  ///< capacity = samples_per_series.
    size_t head = 0;                ///< Index of the OLDEST point.
    size_t size = 0;
    double last_cumulative = 0.0;  ///< Counter delta baseline.
    bool primed = false;           ///< Counter baseline captured.
  };

  void PushLocked(const std::string& name, int64_t ts_ms, double value)
      REQUIRES(mutex_);
  /// Counter-style ingestion: emits the delta vs the stored baseline (and
  /// primes silently on first sight).
  void PushDeltaLocked(const std::string& name, int64_t ts_ms,
                       double cumulative) REQUIRES(mutex_);
  /// nullptr when the series table is full and `name` is new.
  Series* FindOrCreateLocked(const std::string& name) REQUIRES(mutex_);
  std::vector<SamplePoint> SnapshotLocked(const Series& series,
                                          int64_t min_ts_ms) const
      REQUIRES(mutex_);

  const Options options_;

  mutable Mutex mutex_{"obs.timeseries"};
  std::map<std::string, Series> series_ GUARDED_BY(mutex_);
  int64_t ticks_ GUARDED_BY(mutex_) = 0;
};

}  // namespace obs
}  // namespace autotune

#endif  // AUTOTUNE_OBS_TIMESERIES_H_
