#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <map>
#include <thread>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/trace_context.h"
#include "obs/metrics.h"

namespace autotune {
namespace obs {

namespace {

std::atomic<bool> g_trace_enabled{true};

/// Steady-clock ns relative to the first use in this process, so span
/// timestamps stay small and comparable across threads.
int64_t NowNs() {
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - anchor)
      .count();
}

uint64_t ThisThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

/// Ring storage behind a plain mutex: spans end at trial granularity
/// (microseconds and up), so contention here is negligible next to the
/// work being traced.
struct Ring {
  Mutex mutex{"obs.trace_ring"};
  std::vector<SpanRecord> records GUARDED_BY(mutex);
  size_t capacity GUARDED_BY(mutex) = 8192;
  size_t next GUARDED_BY(mutex) = 0;  ///< Overwrite position once full.
  bool wrapped GUARDED_BY(mutex) = false;
  /// Display names for traces (Chrome process_name metadata). Survives
  /// SetCapacity/Clear: names describe traces, not buffered spans.
  std::map<uint64_t, std::string> trace_names GUARDED_BY(mutex);
};

Ring& GetRing() {
  static Ring* ring = new Ring();
  return *ring;
}

thread_local int t_span_depth = 0;

}  // namespace

void TraceBuffer::SetEnabled(bool enabled) {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

bool TraceBuffer::enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void TraceBuffer::SetCapacity(size_t capacity) {
  Ring& ring = GetRing();
  MutexLock lock(ring.mutex);
  ring.capacity = capacity == 0 ? 1 : capacity;
  ring.records.clear();
  ring.records.shrink_to_fit();
  ring.next = 0;
  ring.wrapped = false;
}

void TraceBuffer::Clear() {
  Ring& ring = GetRing();
  MutexLock lock(ring.mutex);
  ring.records.clear();
  ring.next = 0;
  ring.wrapped = false;
}

void TraceBuffer::Record(SpanRecord record) {
  Ring& ring = GetRing();
  MutexLock lock(ring.mutex);
  if (ring.records.size() < ring.capacity) {
    ring.records.push_back(std::move(record));
  } else {
    ring.records[ring.next] = std::move(record);
    ring.next = (ring.next + 1) % ring.capacity;
    ring.wrapped = true;
  }
}

void TraceBuffer::SetTraceName(uint64_t trace_id, const std::string& name) {
  Ring& ring = GetRing();
  MutexLock lock(ring.mutex);
  ring.trace_names[trace_id] = name;
}

int64_t TraceBuffer::NowOnSpanClockNs() { return NowNs(); }

std::vector<SpanRecord> TraceBuffer::Snapshot() {
  Ring& ring = GetRing();
  MutexLock lock(ring.mutex);
  std::vector<SpanRecord> out;
  out.reserve(ring.records.size());
  if (ring.wrapped) {
    out.insert(out.end(), ring.records.begin() + ring.next,
               ring.records.end());
    out.insert(out.end(), ring.records.begin(),
               ring.records.begin() + ring.next);
  } else {
    out = ring.records;
  }
  return out;
}

Json TraceBuffer::ToChromeTraceJson() {
  const std::vector<SpanRecord> spans = Snapshot();
  std::map<uint64_t, std::string> trace_names;
  {
    Ring& ring = GetRing();
    MutexLock lock(ring.mutex);
    trace_names = ring.trace_names;
  }
  Json::Array events;
  // process_name metadata first (only for traces with buffered spans), so
  // viewers label trace groups immediately.
  for (const auto& [trace_id, name] : trace_names) {
    bool present = false;
    for (const SpanRecord& span : spans) {
      if (span.trace_id == trace_id) {
        present = true;
        break;
      }
    }
    if (!present) continue;
    Json::Object meta;
    meta["name"] = Json("process_name");
    meta["ph"] = Json("M");
    meta["pid"] = Json(static_cast<int64_t>(trace_id));
    Json::Object args;
    args["name"] = Json(name);
    meta["args"] = Json(std::move(args));
    events.push_back(Json(std::move(meta)));
  }
  for (const SpanRecord& span : spans) {
    Json::Object event;
    event["name"] = Json(span.name);
    event["ph"] = Json("X");
    // One Chrome "process" per trace groups an experiment's spans into a
    // single tree; untraced spans share the legacy pid 1.
    event["pid"] = Json(static_cast<int64_t>(
        span.trace_id == 0 ? 1 : span.trace_id));
    event["tid"] = Json(span.thread_id % 100000);
    event["ts"] = Json(static_cast<double>(span.start_ns) / 1000.0);
    event["dur"] = Json(static_cast<double>(span.duration_ns) / 1000.0);
    Json::Object args;
    args["depth"] = Json(int64_t{span.depth});
    if (span.span_id != 0) {
      args["span_id"] = Json(static_cast<int64_t>(span.span_id));
      args["parent_span_id"] =
          Json(static_cast<int64_t>(span.parent_span_id));
    }
    event["args"] = Json(std::move(args));
    events.push_back(Json(std::move(event)));
  }
  Json::Object root;
  root["traceEvents"] = Json(std::move(events));
  return Json(std::move(root));
}

Status TraceBuffer::WriteChromeTraceFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Unavailable("cannot open '" + path + "' for writing");
  }
  const std::string text = ToChromeTraceJson().Dump();
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  if (written != text.size()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Span::Span(const char* name)
    : name_(name),
      start_ns_(NowNs()),
      depth_(t_span_depth++),
      parent_(CurrentTraceContext()),
      span_id_(NewSpanId()) {
  SetCurrentTraceContext(TraceContext{parent_.trace_id, span_id_});
}

int64_t Span::ElapsedNs() const { return NowNs() - start_ns_; }

Span::~Span() {
  const int64_t duration_ns = ElapsedNs();
  --t_span_depth;
  SetCurrentTraceContext(parent_);
  MetricsRegistry::Global().Record(std::string("span.") + name_,
                                   static_cast<double>(duration_ns) * 1e-9);
  if (TraceBuffer::enabled()) {
    TraceBuffer::Record(SpanRecord{name_, ThisThreadId(), start_ns_,
                                   duration_ns, depth_, parent_.trace_id,
                                   span_id_, parent_.span_id});
  }
}

}  // namespace obs
}  // namespace autotune
