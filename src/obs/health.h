#ifndef AUTOTUNE_OBS_HEALTH_H_
#define AUTOTUNE_OBS_HEALTH_H_

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/json.h"
#include "obs/timeseries.h"

namespace autotune {
namespace obs {

/// Alert lifecycle. A rule whose condition holds for `for_ticks`
/// consecutive evaluations (hysteresis — one noisy tick never pages)
/// transitions pending -> firing; a firing rule whose condition clears
/// transitions to resolved, which is a latched "was firing, now ok"
/// display state until the condition returns (-> pending again).
///
///   inactive --(cond)--> pending --(held >= for_ticks)--> firing
///   pending --(!cond)--> inactive
///   firing --(!cond)--> resolved --(cond)--> pending
enum class AlertState { kInactive, kPending, kFiring, kResolved };

const char* AlertStateName(AlertState state);

/// How a rule turns retained samples into a boolean condition.
enum class RuleKind {
  /// Latest value in the window `compare` threshold.
  kThreshold,
  /// Sum of values in the window `compare` threshold. On counter series
  /// (stored as per-tick deltas) this is the windowed increment — e.g.
  /// "more than 3 faults in the last minute".
  kRateOfChange,
  /// No sample in the window at all (sampler dead, shard not reporting,
  /// metric vanished).
  kAbsence,
  /// Samples span most of the window but the value moved by <= threshold
  /// (progress counter flatlined). Needs at least half a window of points,
  /// so a freshly admitted tenant is never declared stalled off two
  /// samples.
  kStall,
  /// Linear projection of the windowed slope crosses `budget` before
  /// `deadline_at_ms` (budget burn-rate alarm: "at this spend rate the
  /// tenant exhausts its budget before its deadline").
  kBudgetBurn,
  /// Latest value exceeds `threshold` x the frozen baseline (the mean of
  /// the series' first `baseline_samples` points — "p99 regressed vs the
  /// first window").
  kRegression,
};

const char* RuleKindName(RuleKind kind);

enum class RuleCompare { kGreaterThan, kLessThan };

/// One declarative health rule over the time-series store.
struct AlertRule {
  /// Unique id; also the alert's display name ("tenant.db.stall").
  std::string name;
  std::string severity = "warning";  ///< "warning" | "critical".
  std::string description;           ///< Human text for /alerts, /statusz.

  RuleKind kind = RuleKind::kThreshold;
  std::string series;  ///< Input series in the store.
  RuleCompare compare = RuleCompare::kGreaterThan;
  double threshold = 0.0;
  int64_t window_ms = 60000;
  int for_ticks = 3;  ///< Consecutive true evaluations before firing.

  /// Optional activation gate: the rule only evaluates while the latest
  /// value of `gate_series` (within the window) is >= `gate_min`; otherwise
  /// the condition is treated as false — so e.g. a stall rule gated on
  /// `tenant.<t>.active` resolves when the tenant is cancelled instead of
  /// firing forever on its flat progress counter.
  std::string gate_series;
  double gate_min = 1.0;

  /// kBudgetBurn inputs.
  double budget = std::numeric_limits<double>::infinity();
  int64_t deadline_at_ms = 0;  ///< Absolute epoch ms.

  /// kRegression: how many of the series' first samples freeze the
  /// baseline.
  int baseline_samples = 8;
};

/// Point-in-time state of one rule.
struct AlertStatus {
  AlertRule rule;
  AlertState state = AlertState::kInactive;
  int held_ticks = 0;      ///< Consecutive true evaluations so far.
  int64_t since_ms = 0;    ///< When the current state was entered.
  double value = 0.0;      ///< Last evaluated input value.
  std::string detail;      ///< e.g. "42 fenced appends in 60s".
};

/// Declarative alert engine over a `TimeSeriesStore`: rules are upserted /
/// removed as tenants come and go, `Evaluate` advances every state machine
/// one tick, and the firing set is exported to `GET /alerts`, `/statusz`,
/// and the `alerts.firing` gauge (-> `autotune_alerts_firing` in the
/// Prometheus exposition, so external scrapers can page on it).
///
/// Thread-safety: all methods are safe from any thread. The engine mutex is
/// held across store reads during `Evaluate` (lock order: obs.health ->
/// obs.timeseries; both are leaves of the service stack).
class HealthEngine {
 public:
  HealthEngine() = default;
  HealthEngine(const HealthEngine&) = delete;
  HealthEngine& operator=(const HealthEngine&) = delete;

  /// Installs or replaces a rule. Replacing keeps the existing alert state
  /// machine (so re-reconciling a tenant's rules every tick never resets a
  /// pending alert); only the rule definition is refreshed.
  void UpsertRule(AlertRule rule) EXCLUDES(mutex_);

  /// Removes the rule entirely (state machine included). False if absent.
  bool RemoveRule(const std::string& name) EXCLUDES(mutex_);

  /// Removes every rule whose name starts with `prefix`; returns the count
  /// (retiring all of one tenant's rules on eviction).
  int RemoveRulesWithPrefix(const std::string& prefix) EXCLUDES(mutex_);

  bool HasRule(const std::string& name) const EXCLUDES(mutex_);
  size_t num_rules() const EXCLUDES(mutex_);

  /// Evaluates every rule against `store` at `now_ms`, advancing the
  /// pending -> firing -> resolved state machines by one tick.
  void Evaluate(const TimeSeriesStore& store, int64_t now_ms)
      EXCLUDES(mutex_);

  /// All rules' current status, sorted by name.
  std::vector<AlertStatus> Alerts() const EXCLUDES(mutex_);

  int FiringCount() const EXCLUDES(mutex_);

  /// {"alerts": [{"name", "state", "severity", "kind", "series", "value",
  ///   "threshold", "since_ms", "detail", "description"}, ...],
  ///  "firing": N} — the GET /alerts payload.
  Json ToJson() const EXCLUDES(mutex_);

 private:
  struct RuleState {
    AlertRule rule;
    AlertState state = AlertState::kInactive;
    int held_ticks = 0;
    int64_t since_ms = 0;
    double value = 0.0;
    std::string detail;
    /// kRegression: frozen once `baseline_samples` points exist.
    double baseline = std::numeric_limits<double>::quiet_NaN();
  };

  /// Evaluates one rule's raw condition (no hysteresis); fills
  /// `state->value` / `state->detail`.
  bool ConditionHolds(const TimeSeriesStore& store, int64_t now_ms,
                      RuleState* state) REQUIRES(mutex_);

  mutable Mutex mutex_{"obs.health"};
  std::map<std::string, RuleState> rules_ GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace autotune

#endif  // AUTOTUNE_OBS_HEALTH_H_
