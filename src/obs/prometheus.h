#ifndef AUTOTUNE_OBS_PROMETHEUS_H_
#define AUTOTUNE_OBS_PROMETHEUS_H_

#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace autotune {
namespace obs {

/// Renders a `MetricsRegistry::ToJson()` snapshot in the Prometheus text
/// exposition format (version 0.0.4): `# TYPE` comments, sanitized metric
/// names (dots become underscores), cumulative `_bucket{le="..."}` series
/// plus `_sum`/`_count` for histograms. `prefix` is prepended to every
/// metric name (e.g. "autotune_").
std::string RenderPrometheus(const Json& snapshot,
                             const std::string& prefix = "autotune_");

/// Convenience: snapshot + render in one call.
std::string RenderPrometheus(const MetricsRegistry& registry,
                             const std::string& prefix = "autotune_");

/// Sanitizes one metric name to the Prometheus charset
/// [a-zA-Z_:][a-zA-Z0-9_:]*; every other character becomes '_'.
std::string PrometheusName(const std::string& name);

}  // namespace obs
}  // namespace autotune

#endif  // AUTOTUNE_OBS_PROMETHEUS_H_
