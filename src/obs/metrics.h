#ifndef AUTOTUNE_OBS_METRICS_H_
#define AUTOTUNE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/table.h"
#include "common/thread_annotations.h"
#include "obs/json.h"

namespace autotune {
namespace obs {

/// Monotonically increasing event count (trials started, refits, ...).
/// Increment is a single relaxed atomic add — safe to call from any thread.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-written instantaneous value (incumbent objective, queue depth, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: counts per bucket plus sum/min/max, all updated
/// with atomics so concurrent `Record` calls never block each other. Bucket
/// `i` counts values `<= upper_bounds[i]`; one implicit overflow bucket
/// catches the rest. Quantiles are estimated by linear interpolation inside
/// the containing bucket (the usual Prometheus-style approximation).
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void Record(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double min() const;
  double max() const;
  double mean() const;

  /// Estimated q-quantile (q in [0, 1]); 0 when empty.
  double Quantile(double q) const;

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }

  /// Count in bucket `i` (i == upper_bounds().size() is the overflow
  /// bucket).
  int64_t bucket_count(size_t i) const;

  /// Default upper bounds for latency-in-seconds histograms: a 1-2-5 series
  /// from 1 microsecond to 100 seconds.
  static std::vector<double> LatencyBuckets();

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // upper_bounds_.size() + 1.
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Process-wide metric namespace. Lookups hash the metric name onto one of
/// several independently locked shards (lock striping), so concurrent
/// workers registering or fetching different metrics rarely contend; the
/// returned pointers are stable for the registry's lifetime, and updates
/// through them are lock-free atomics.
///
/// Naming convention: dotted lowercase paths, e.g. "loop.trials.started",
/// "span.bo.fit" (seconds histograms created by the trace layer).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric. CHECK-fails if the name already
  /// names a metric of a different kind.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `upper_bounds` applies only on first creation (empty = latency
  /// buckets).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds = {});

  /// One-shot conveniences for cold paths.
  void Increment(const std::string& name, int64_t delta = 1);
  void SetGauge(const std::string& name, double value);
  void Record(const std::string& name, double value);

  /// Drops all metrics (tests / between bench phases).
  void Reset();

  /// Point-in-time export:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  ///  mean, min, max, p50, p95, p99, buckets: [{le, count}, ...]}}}.
  Json ToJson() const;

  /// Flat tabular export: one row per scalar and per histogram summary
  /// statistic (metric, kind, field, value).
  Table ToTable() const;

  [[nodiscard]] Status WriteJsonFile(const std::string& path) const;
  [[nodiscard]] Status WriteCsvFile(const std::string& path) const;

  /// The process-wide registry used by the tracing layer and the tuning
  /// loop.
  static MetricsRegistry& Global();

 private:
  static constexpr size_t kNumShards = 16;

  struct Shard {
    mutable Mutex mutex{"obs.metrics_shard"};
    std::map<std::string, std::unique_ptr<Counter>> counters
        GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<Gauge>> gauges GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<Histogram>> histograms
        GUARDED_BY(mutex);
  };

  Shard& ShardFor(const std::string& name);

  Shard shards_[kNumShards];
};

}  // namespace obs
}  // namespace autotune

#endif  // AUTOTUNE_OBS_METRICS_H_
