#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace autotune {
namespace obs {

bool Json::AsBool() const {
  AUTOTUNE_CHECK(is_bool());
  return std::get<bool>(value_);
}

int64_t Json::AsInt() const {
  AUTOTUNE_CHECK(is_int());
  return std::get<int64_t>(value_);
}

double Json::AsDouble() const {
  AUTOTUNE_CHECK(is_number());
  if (is_int()) return static_cast<double>(std::get<int64_t>(value_));
  return std::get<double>(value_);
}

const std::string& Json::AsString() const {
  AUTOTUNE_CHECK(is_string());
  return std::get<std::string>(value_);
}

const Json::Array& Json::AsArray() const {
  AUTOTUNE_CHECK(is_array());
  return std::get<Array>(value_);
}

const Json::Object& Json::AsObject() const {
  AUTOTUNE_CHECK(is_object());
  return std::get<Object>(value_);
}

Json::Array& Json::AsArray() {
  AUTOTUNE_CHECK(is_array());
  return std::get<Array>(value_);
}

Json::Object& Json::AsObject() {
  AUTOTUNE_CHECK(is_object());
  return std::get<Object>(value_);
}

Result<Json> Json::Get(const std::string& key) const {
  if (!is_object()) return Status::InvalidArgument("not a JSON object");
  const Object& object = std::get<Object>(value_);
  auto it = object.find(key);
  if (it == object.end()) return Status::NotFound("no member '" + key + "'");
  return it->second;
}

bool Json::GetBool(const std::string& key, bool fallback) const {
  auto member = Get(key);
  return member.ok() && member->is_bool() ? member->AsBool() : fallback;
}

int64_t Json::GetInt(const std::string& key, int64_t fallback) const {
  auto member = Get(key);
  return member.ok() && member->is_int() ? member->AsInt() : fallback;
}

double Json::GetDouble(const std::string& key, double fallback) const {
  auto member = Get(key);
  return member.ok() && member->is_number() ? member->AsDouble() : fallback;
}

std::string Json::GetString(const std::string& key,
                            const std::string& fallback) const {
  auto member = Get(key);
  return member.ok() && member->is_string() ? member->AsString() : fallback;
}

bool Json::Has(const std::string& key) const {
  return is_object() &&
         std::get<Object>(value_).find(key) != std::get<Object>(value_).end();
}

void AppendJsonString(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

namespace {

void AppendDouble(double value, std::string* out) {
  if (!std::isfinite(value)) {
    *out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int digits = 1; digits < 17; ++digits) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", digits, value);
    if (std::strtod(shorter, nullptr) == value) {
      std::memcpy(buf, shorter, sizeof(shorter));
      break;
    }
  }
  *out += buf;
  // "1e+30" is valid JSON, but bare integers like "5" would re-parse as
  // int64; keep the double-ness explicit.
  if (std::strpbrk(buf, ".eE") == nullptr) *out += ".0";
}

void AppendNewlineIndent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  if (is_null()) {
    *out += "null";
  } else if (is_bool()) {
    *out += AsBool() ? "true" : "false";
  } else if (is_int()) {
    *out += std::to_string(AsInt());
  } else if (is_double()) {
    AppendDouble(std::get<double>(value_), out);
  } else if (is_string()) {
    AppendJsonString(AsString(), out);
  } else if (is_array()) {
    const Array& array = AsArray();
    if (array.empty()) {
      *out += "[]";
      return;
    }
    out->push_back('[');
    for (size_t i = 0; i < array.size(); ++i) {
      if (i > 0) out->push_back(',');
      AppendNewlineIndent(out, indent, depth + 1);
      array[i].DumpTo(out, indent, depth + 1);
    }
    AppendNewlineIndent(out, indent, depth);
    out->push_back(']');
  } else {
    const Object& object = AsObject();
    if (object.empty()) {
      *out += "{}";
      return;
    }
    out->push_back('{');
    bool first = true;
    for (const auto& [key, value] : object) {
      if (!first) out->push_back(',');
      first = false;
      AppendNewlineIndent(out, indent, depth + 1);
      AppendJsonString(key, out);
      out->push_back(':');
      if (indent > 0) out->push_back(' ');
      value.DumpTo(out, indent, depth + 1);
    }
    AppendNewlineIndent(out, indent, depth);
    out->push_back('}');
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string Json::Pretty() const {
  std::string out;
  DumpTo(&out, /*indent=*/2, /*depth=*/0);
  return out;
}

namespace {

/// Recursive-descent parser over a string view of the input.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> ParseDocument() {
    AUTOTUNE_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      AUTOTUNE_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json(std::move(s));
    }
    if (ConsumeLiteral("true")) return Json(true);
    if (ConsumeLiteral("false")) return Json(false);
    if (ConsumeLiteral("null")) return Json(nullptr);
    return ParseNumber();
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    Json::Object object;
    SkipWhitespace();
    if (Consume('}')) return Json(std::move(object));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      AUTOTUNE_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      AUTOTUNE_ASSIGN_OR_RETURN(Json value, ParseValue());
      object[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume('}')) return Json(std::move(object));
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    Json::Array array;
    SkipWhitespace();
    if (Consume(']')) return Json(std::move(array));
    while (true) {
      AUTOTUNE_ASSIGN_OR_RETURN(Json value, ParseValue());
      array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Json(std::move(array));
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out.push_back(escape);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // UTF-8 encode (surrogate pairs not needed for our own output,
          // which only escapes control characters).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid value");
    const std::string token = text_.substr(start, pos_ - start);
    const bool integral =
        token.find_first_of(".eE") == std::string::npos;
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long parsed = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(static_cast<int64_t>(parsed));
      }
      // Out of int64 range: fall through to double.
    }
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("invalid number");
    return Json(parsed);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

}  // namespace obs
}  // namespace autotune
