#ifndef AUTOTUNE_OBS_TRACE_H_
#define AUTOTUNE_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/trace_context.h"
#include "obs/json.h"

namespace autotune {
namespace obs {

/// One completed span, as stored in the trace ring buffer.
struct SpanRecord {
  std::string name;       ///< Span name, e.g. "bo.fit".
  uint64_t thread_id;     ///< Hashed std::thread::id.
  int64_t start_ns;       ///< Steady-clock start, ns since process anchor.
  int64_t duration_ns;    ///< Wall time inside the span.
  int depth;              ///< Nesting depth on its thread (0 = root).
  uint64_t trace_id = 0;        ///< Owning trace (0 = untraced).
  uint64_t span_id = 0;         ///< This span's id (0 for legacy records).
  uint64_t parent_span_id = 0;  ///< Enclosing span's id (0 = trace root).
};

/// Process-wide trace sink: a fixed-capacity ring buffer of completed spans
/// (oldest overwritten first) plus an on/off switch. Span *latencies* always
/// flow into `MetricsRegistry::Global()` (histogram "span.<name>"); the ring
/// buffer additionally keeps the most recent individual spans for timeline
/// debugging, and can be exported in Chrome's trace-event format for
/// chrome://tracing / Perfetto.
class TraceBuffer {
 public:
  /// Enables/disables span *recording* into the ring buffer (latency
  /// histograms are unaffected). Enabled by default.
  static void SetEnabled(bool enabled);
  static bool enabled();

  /// Resizes the ring buffer (default 8192 spans) and clears it.
  static void SetCapacity(size_t capacity);

  /// Drops all recorded spans.
  static void Clear();

  /// Copies out the recorded spans, oldest first.
  static std::vector<SpanRecord> Snapshot();

  /// Names a trace (typically `NewTraceId()` from common/trace_context.h).
  /// Named traces export as their own Chrome "process" with this name, so an
  /// experiment's spans group into one coherent tree in the trace viewer.
  static void SetTraceName(uint64_t trace_id, const std::string& name);

  /// Returns current steady-clock nanoseconds on the span timebase. Lets
  /// callers synthesize records (e.g. an experiment's root span) whose
  /// timestamps are comparable with real spans.
  [[nodiscard]] static int64_t NowOnSpanClockNs();

  /// Chrome trace-event JSON: {"traceEvents": [{"name", "ph": "X", "pid",
  /// "tid", "ts" (us), "dur" (us)}, ...]}. Spans belonging to a trace use
  /// `pid = trace_id` (with a process_name metadata event when the trace was
  /// named via SetTraceName); untraced spans use pid 1.
  static Json ToChromeTraceJson();
  [[nodiscard]] static Status WriteChromeTraceFile(const std::string& path);

  /// Internal: called by ~Span.
  static void Record(SpanRecord record);
};

/// RAII timed span. Construct at the top of the phase being measured; on
/// destruction the elapsed time is recorded to the latency histogram
/// "span.<name>" and (when tracing is enabled) appended to the ring buffer.
/// Spans nest via a thread-local depth counter, so traces reconstruct the
/// call tree (loop.evaluate > trial.evaluate > env.run).
///
/// Each span also participates in the ambient `TraceContext`
/// (common/trace_context.h): on construction it records the current context
/// as its parent and installs its own span id; on destruction it restores the
/// parent. Combined with `ThreadPool`'s context capture this yields a single
/// parent/child tree per trace even when phases hop threads.
///
/// `name` must be a string literal (or otherwise outlive the span).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Nanoseconds elapsed since construction.
  int64_t ElapsedNs() const;

  /// This span's process-unique id (parent for spans opened inside it).
  [[nodiscard]] uint64_t span_id() const { return span_id_; }

 private:
  const char* name_;
  int64_t start_ns_;
  int depth_;
  TraceContext parent_;
  uint64_t span_id_;
};

}  // namespace obs
}  // namespace autotune

#endif  // AUTOTUNE_OBS_TRACE_H_
