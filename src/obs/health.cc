#include "obs/health.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

namespace autotune {
namespace obs {
namespace {

std::string FormatValue(double value) {
  char buf[64];
  if (value == static_cast<int64_t>(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", value);
  }
  return buf;
}

bool Compare(RuleCompare compare, double value, double threshold) {
  return compare == RuleCompare::kGreaterThan ? value > threshold
                                              : value < threshold;
}

}  // namespace

const char* AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kInactive:
      return "inactive";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
    case AlertState::kResolved:
      return "resolved";
  }
  return "unknown";
}

const char* RuleKindName(RuleKind kind) {
  switch (kind) {
    case RuleKind::kThreshold:
      return "threshold";
    case RuleKind::kRateOfChange:
      return "rate_of_change";
    case RuleKind::kAbsence:
      return "absence";
    case RuleKind::kStall:
      return "stall";
    case RuleKind::kBudgetBurn:
      return "budget_burn";
    case RuleKind::kRegression:
      return "regression";
  }
  return "unknown";
}

void HealthEngine::UpsertRule(AlertRule rule) {
  MutexLock lock(mutex_);
  RuleState& state = rules_[rule.name];
  state.rule = std::move(rule);
}

bool HealthEngine::RemoveRule(const std::string& name) {
  MutexLock lock(mutex_);
  return rules_.erase(name) > 0;
}

int HealthEngine::RemoveRulesWithPrefix(const std::string& prefix) {
  MutexLock lock(mutex_);
  int removed = 0;
  for (auto it = rules_.lower_bound(prefix); it != rules_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    it = rules_.erase(it);
    ++removed;
  }
  return removed;
}

bool HealthEngine::HasRule(const std::string& name) const {
  MutexLock lock(mutex_);
  return rules_.count(name) > 0;
}

size_t HealthEngine::num_rules() const {
  MutexLock lock(mutex_);
  return rules_.size();
}

bool HealthEngine::ConditionHolds(const TimeSeriesStore& store,
                                  int64_t now_ms, RuleState* state) {
  const AlertRule& rule = state->rule;

  if (!rule.gate_series.empty()) {
    const auto gate = store.Query(rule.gate_series, rule.window_ms, now_ms);
    if (gate.empty() || gate.back().value < rule.gate_min) {
      state->detail = "gated off (" + rule.gate_series + ")";
      return false;
    }
  }

  const auto points = store.Query(rule.series, rule.window_ms, now_ms);

  if (rule.kind == RuleKind::kAbsence) {
    state->value = static_cast<double>(points.size());
    if (points.empty()) {
      state->detail = "no samples of " + rule.series + " in window";
      return true;
    }
    state->detail = "";
    return false;
  }

  if (points.empty()) {
    state->detail = "";
    return false;
  }

  switch (rule.kind) {
    case RuleKind::kThreshold: {
      state->value = points.back().value;
      state->detail = rule.series + " = " + FormatValue(state->value);
      return Compare(rule.compare, state->value, rule.threshold);
    }
    case RuleKind::kRateOfChange: {
      double sum = 0.0;
      for (const SamplePoint& point : points) sum += point.value;
      state->value = sum;
      state->detail = FormatValue(sum) + " over window on " + rule.series;
      return Compare(rule.compare, sum, rule.threshold);
    }
    case RuleKind::kStall: {
      // Require coverage of at least half the window so a tenant admitted
      // mid-window is never declared stalled off a couple of samples.
      if (points.size() < 3 ||
          points.back().ts_ms - points.front().ts_ms < rule.window_ms / 2) {
        state->detail = "insufficient history";
        return false;
      }
      const double moved =
          std::fabs(points.back().value - points.front().value);
      state->value = moved;
      state->detail =
          rule.series + " moved " + FormatValue(moved) + " over window";
      return moved <= rule.threshold;
    }
    case RuleKind::kBudgetBurn: {
      if (!(rule.budget < std::numeric_limits<double>::infinity()) ||
          rule.deadline_at_ms <= now_ms || points.size() < 3) {
        state->detail = "";
        return false;
      }
      const SamplePoint& first = points.front();
      const SamplePoint& last = points.back();
      const int64_t span_ms = last.ts_ms - first.ts_ms;
      if (span_ms < rule.window_ms / 2) {
        state->detail = "insufficient history";
        return false;
      }
      const double rate_per_ms = (last.value - first.value) / span_ms;
      if (rate_per_ms <= 0.0) {
        state->detail = "spend flat";
        return false;
      }
      const double projected =
          last.value + rate_per_ms * (rule.deadline_at_ms - last.ts_ms);
      state->value = projected;
      state->detail = "projected spend " + FormatValue(projected) +
                      " vs budget " + FormatValue(rule.budget) +
                      " at deadline";
      return projected > rule.budget;
    }
    case RuleKind::kRegression: {
      // Freeze the baseline once: the mean of the series' first
      // baseline_samples points ("vs the first window").
      if (std::isnan(state->baseline)) {
        const auto all = store.Query(rule.series, /*window_ms=*/0, now_ms);
        if (static_cast<int>(all.size()) < rule.baseline_samples) {
          state->detail = "collecting baseline";
          return false;
        }
        double sum = 0.0;
        for (int i = 0; i < rule.baseline_samples; ++i) sum += all[i].value;
        state->baseline = sum / rule.baseline_samples;
      }
      state->value = points.back().value;
      state->detail = rule.series + " = " + FormatValue(state->value) +
                      " vs baseline " + FormatValue(state->baseline);
      if (state->baseline <= 0.0) return false;
      return state->value > state->baseline * rule.threshold;
    }
    case RuleKind::kAbsence:
      break;  // Handled above.
  }
  return false;
}

void HealthEngine::Evaluate(const TimeSeriesStore& store, int64_t now_ms) {
  MutexLock lock(mutex_);
  for (auto& [name, state] : rules_) {
    const bool holds = ConditionHolds(store, now_ms, &state);
    if (holds) {
      switch (state.state) {
        case AlertState::kInactive:
        case AlertState::kResolved:
          state.state = AlertState::kPending;
          state.held_ticks = 1;
          state.since_ms = now_ms;
          break;
        case AlertState::kPending:
          ++state.held_ticks;
          break;
        case AlertState::kFiring:
          ++state.held_ticks;
          continue;
      }
      if (state.state == AlertState::kPending &&
          state.held_ticks >= state.rule.for_ticks) {
        state.state = AlertState::kFiring;
        state.since_ms = now_ms;
      }
    } else {
      switch (state.state) {
        case AlertState::kPending:
          state.state = AlertState::kInactive;
          state.held_ticks = 0;
          state.since_ms = now_ms;
          break;
        case AlertState::kFiring:
          state.state = AlertState::kResolved;
          state.held_ticks = 0;
          state.since_ms = now_ms;
          break;
        case AlertState::kInactive:
        case AlertState::kResolved:
          break;
      }
    }
  }
}

std::vector<AlertStatus> HealthEngine::Alerts() const {
  std::vector<AlertStatus> out;
  MutexLock lock(mutex_);
  out.reserve(rules_.size());
  for (const auto& [name, state] : rules_) {
    AlertStatus status;
    status.rule = state.rule;
    status.state = state.state;
    status.held_ticks = state.held_ticks;
    status.since_ms = state.since_ms;
    status.value = state.value;
    status.detail = state.detail;
    out.push_back(std::move(status));
  }
  return out;
}

int HealthEngine::FiringCount() const {
  MutexLock lock(mutex_);
  int firing = 0;
  for (const auto& [name, state] : rules_) {
    if (state.state == AlertState::kFiring) ++firing;
  }
  return firing;
}

Json HealthEngine::ToJson() const {
  Json::Array alerts;
  int firing = 0;
  {
    MutexLock lock(mutex_);
    for (const auto& [name, state] : rules_) {
      if (state.state == AlertState::kFiring) ++firing;
      alerts.push_back(Json(Json::Object{
          {"name", Json(state.rule.name)},
          {"state", Json(std::string(AlertStateName(state.state)))},
          {"severity", Json(state.rule.severity)},
          {"kind", Json(std::string(RuleKindName(state.rule.kind)))},
          {"series", Json(state.rule.series)},
          {"value", Json(state.value)},
          {"threshold", Json(state.rule.threshold)},
          {"held_ticks", Json(static_cast<int64_t>(state.held_ticks))},
          {"since_ms", Json(state.since_ms)},
          {"detail", Json(state.detail)},
          {"description", Json(state.rule.description)},
      }));
    }
  }
  return Json(Json::Object{{"alerts", Json(std::move(alerts))},
                           {"firing", Json(static_cast<int64_t>(firing))}});
}

}  // namespace obs
}  // namespace autotune
