#include "obs/metrics.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace autotune {
namespace obs {

namespace {

/// CAS loop replacing `target` with `value` whenever `better(value, old)`.
template <typename Better>
void AtomicExtreme(std::atomic<double>* target, double value, Better better) {
  double current = target->load(std::memory_order_relaxed);
  while (better(value, current) &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size() + 1) {
  AUTOTUNE_CHECK(!upper_bounds_.empty());
  AUTOTUNE_CHECK(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()));
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::Record(double value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
      upper_bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicExtreme(&min_, value, [](double a, double b) { return a < b; });
  AtomicExtreme(&max_, value, [](double a, double b) { return a > b; });
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const int64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

int64_t Histogram::bucket_count(size_t i) const {
  AUTOTUNE_CHECK(i < buckets_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  const int64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const int64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      // Interpolate within [lower, upper); clamp the open-ended edges to the
      // observed extremes.
      const double lower = i == 0 ? min() : upper_bounds_[i - 1];
      const double upper =
          i == upper_bounds_.size() ? max() : upper_bounds_[i];
      const double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return max();
}

std::vector<double> Histogram::LatencyBuckets() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 200.0; decade *= 10.0) {
    for (double step : {1.0, 2.0, 5.0}) {
      bounds.push_back(decade * step);
    }
  }
  return bounds;  // 1us, 2us, 5us, ..., 100s, 200s, 500s.
}

MetricsRegistry::Shard& MetricsRegistry::ShardFor(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kNumShards];
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mutex);
  AUTOTUNE_CHECK_MSG(shard.gauges.find(name) == shard.gauges.end() &&
                         shard.histograms.find(name) == shard.histograms.end(),
                     "metric name already used by another kind");
  auto& slot = shard.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mutex);
  AUTOTUNE_CHECK_MSG(shard.counters.find(name) == shard.counters.end() &&
                         shard.histograms.find(name) == shard.histograms.end(),
                     "metric name already used by another kind");
  auto& slot = shard.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mutex);
  AUTOTUNE_CHECK_MSG(shard.counters.find(name) == shard.counters.end() &&
                         shard.gauges.find(name) == shard.gauges.end(),
                     "metric name already used by another kind");
  auto& slot = shard.histograms[name];
  if (slot == nullptr) {
    if (upper_bounds.empty()) upper_bounds = Histogram::LatencyBuckets();
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return slot.get();
}

void MetricsRegistry::Increment(const std::string& name, int64_t delta) {
  GetCounter(name)->Increment(delta);
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  GetGauge(name)->Set(value);
}

void MetricsRegistry::Record(const std::string& name, double value) {
  GetHistogram(name)->Record(value);
}

void MetricsRegistry::Reset() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    shard.counters.clear();
    shard.gauges.clear();
    shard.histograms.clear();
  }
}

Json MetricsRegistry::ToJson() const {
  Json::Object counters;
  Json::Object gauges;
  Json::Object histograms;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (const auto& [name, counter] : shard.counters) {
      counters[name] = Json(counter->value());
    }
    for (const auto& [name, gauge] : shard.gauges) {
      gauges[name] = Json(gauge->value());
    }
    for (const auto& [name, histogram] : shard.histograms) {
      Json::Object h;
      h["count"] = Json(histogram->count());
      h["sum"] = Json(histogram->sum());
      h["mean"] = Json(histogram->mean());
      h["min"] = Json(histogram->min());
      h["max"] = Json(histogram->max());
      h["p50"] = Json(histogram->Quantile(0.50));
      h["p95"] = Json(histogram->Quantile(0.95));
      h["p99"] = Json(histogram->Quantile(0.99));
      Json::Array buckets;
      const auto& bounds = histogram->upper_bounds();
      for (size_t i = 0; i <= bounds.size(); ++i) {
        const int64_t in_bucket = histogram->bucket_count(i);
        if (in_bucket == 0) continue;  // Keep exports compact.
        Json::Object bucket;
        bucket["le"] = i == bounds.size()
                           ? Json("+inf")
                           : Json(bounds[i]);
        bucket["count"] = Json(in_bucket);
        buckets.push_back(Json(std::move(bucket)));
      }
      h["buckets"] = Json(std::move(buckets));
      histograms[name] = Json(std::move(h));
    }
  }
  Json::Object root;
  root["counters"] = Json(std::move(counters));
  root["gauges"] = Json(std::move(gauges));
  root["histograms"] = Json(std::move(histograms));
  return Json(std::move(root));
}

Table MetricsRegistry::ToTable() const {
  Table table({"metric", "kind", "field", "value"});
  const Json snapshot = ToJson();
  const auto append = [&table](const std::string& metric,
                               const std::string& kind,
                               const std::string& field, double value) {
    Status status =
        table.AppendRow({metric, kind, field, FormatDouble(value, 17)});
    AUTOTUNE_CHECK(status.ok());
  };
  // Keep the Result<Json> temporaries alive across the loops: Get returns
  // by value, so iterating `Get(...)->AsObject()` directly would dangle.
  const Result<Json> counters = snapshot.Get("counters");
  const Result<Json> gauges = snapshot.Get("gauges");
  const Result<Json> histograms = snapshot.Get("histograms");
  for (const auto& [name, value] : counters->AsObject()) {
    append(name, "counter", "value", value.AsDouble());
  }
  for (const auto& [name, value] : gauges->AsObject()) {
    append(name, "gauge", "value", value.AsDouble());
  }
  for (const auto& [name, histogram] : histograms->AsObject()) {
    for (const char* field :
         {"count", "sum", "mean", "min", "max", "p50", "p95", "p99"}) {
      append(name, "histogram", field, histogram.GetDouble(field, 0.0));
    }
  }
  return table;
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Unavailable("cannot open '" + path + "' for writing");
  }
  const std::string text = ToJson().Pretty();
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  if (written != text.size()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Status MetricsRegistry::WriteCsvFile(const std::string& path) const {
  return ToTable().WriteCsvFile(path);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace autotune
