#include "obs/timeseries.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace autotune {
namespace obs {

TimeSeriesStore::TimeSeriesStore(Options options) : options_(options) {
  AUTOTUNE_CHECK(options_.samples_per_series > 0);
  AUTOTUNE_CHECK(options_.max_series > 0);
}

TimeSeriesStore::Series* TimeSeriesStore::FindOrCreateLocked(
    const std::string& name) {
  auto it = series_.find(name);
  if (it != series_.end()) return &it->second;
  if (series_.size() >= options_.max_series) {
    MetricsRegistry::Global().Increment("obs.timeseries.series_dropped");
    return nullptr;
  }
  Series& series = series_[name];
  series.ring.resize(options_.samples_per_series);
  return &series;
}

void TimeSeriesStore::PushLocked(const std::string& name, int64_t ts_ms,
                                 double value) {
  Series* series = FindOrCreateLocked(name);
  if (series == nullptr) return;
  if (series->size == series->ring.size()) {
    // Full ring: the new point overwrites the oldest. History loss is
    // counted, never silent (docs/OBSERVABILITY.md retention math).
    series->ring[series->head] = {ts_ms, value};
    series->head = (series->head + 1) % series->ring.size();
    MetricsRegistry::Global().Increment("obs.timeseries.samples_dropped");
  } else {
    series->ring[(series->head + series->size) % series->ring.size()] = {
        ts_ms, value};
    ++series->size;
  }
}

void TimeSeriesStore::PushDeltaLocked(const std::string& name, int64_t ts_ms,
                                      double cumulative) {
  Series* series = FindOrCreateLocked(name);
  if (series == nullptr) return;
  if (!series->primed) {
    series->primed = true;
    series->last_cumulative = cumulative;
    return;
  }
  const double delta = cumulative - series->last_cumulative;
  series->last_cumulative = cumulative;
  PushLocked(name, ts_ms, delta);
}

void TimeSeriesStore::Sample(const MetricsRegistry& registry,
                             int64_t now_ms) {
  // Snapshot outside the store mutex: ToJson takes the registry's shard
  // locks and the store mutex must stay a leaf.
  const Json snapshot = registry.ToJson();
  const Result<Json> counters = snapshot.Get("counters");
  const Result<Json> gauges = snapshot.Get("gauges");
  const Result<Json> histograms = snapshot.Get("histograms");

  MutexLock lock(mutex_);
  ++ticks_;
  if (counters.ok()) {
    for (const auto& [name, value] : counters->AsObject()) {
      PushDeltaLocked(name, now_ms, value.AsDouble());
    }
  }
  if (gauges.ok()) {
    for (const auto& [name, value] : gauges->AsObject()) {
      PushLocked(name, now_ms, value.AsDouble());
    }
  }
  if (histograms.ok()) {
    for (const auto& [name, histogram] : histograms->AsObject()) {
      PushLocked(name + ".p50", now_ms, histogram.GetDouble("p50", 0.0));
      PushLocked(name + ".p99", now_ms, histogram.GetDouble("p99", 0.0));
      PushDeltaLocked(name + ".count", now_ms,
                      histogram.GetDouble("count", 0.0));
    }
  }
}

void TimeSeriesStore::Push(const std::string& name, int64_t ts_ms,
                           double value) {
  MutexLock lock(mutex_);
  PushLocked(name, ts_ms, value);
}

std::vector<SamplePoint> TimeSeriesStore::SnapshotLocked(
    const Series& series, int64_t min_ts_ms) const {
  std::vector<SamplePoint> points;
  points.reserve(series.size);
  for (size_t i = 0; i < series.size; ++i) {
    const SamplePoint& point =
        series.ring[(series.head + i) % series.ring.size()];
    if (point.ts_ms >= min_ts_ms) points.push_back(point);
  }
  return points;
}

std::vector<SamplePoint> TimeSeriesStore::Query(const std::string& name,
                                                int64_t window_ms,
                                                int64_t now_ms) const {
  const int64_t min_ts_ms =
      window_ms > 0 ? now_ms - window_ms
                    : std::numeric_limits<int64_t>::min();
  MutexLock lock(mutex_);
  const auto it = series_.find(name);
  if (it == series_.end()) return {};
  return SnapshotLocked(it->second, min_ts_ms);
}

bool TimeSeriesStore::Has(const std::string& name) const {
  MutexLock lock(mutex_);
  return series_.count(name) > 0;
}

std::vector<std::string> TimeSeriesStore::Names() const {
  std::vector<std::string> names;
  MutexLock lock(mutex_);
  names.reserve(series_.size());
  for (const auto& [name, series] : series_) names.push_back(name);
  return names;
}

size_t TimeSeriesStore::num_series() const {
  MutexLock lock(mutex_);
  return series_.size();
}

int64_t TimeSeriesStore::ticks() const {
  MutexLock lock(mutex_);
  return ticks_;
}

Result<Json> TimeSeriesStore::HistoryJson(const std::string& name,
                                          int64_t window_ms,
                                          int64_t now_ms) const {
  const int64_t min_ts_ms =
      window_ms > 0 ? now_ms - window_ms
                    : std::numeric_limits<int64_t>::min();
  Json::Object series_out;
  int64_t ticks = 0;
  {
    MutexLock lock(mutex_);
    ticks = ticks_;
    if (!name.empty() && series_.count(name) == 0) {
      return Status::NotFound("no series named '" + name + "'");
    }
    for (const auto& [series_name, series] : series_) {
      if (!name.empty() && series_name != name) continue;
      Json::Array points;
      for (const SamplePoint& point : SnapshotLocked(series, min_ts_ms)) {
        points.push_back(Json(Json::Object{{"ts_ms", Json(point.ts_ms)},
                                           {"value", Json(point.value)}}));
      }
      series_out[series_name] = Json(std::move(points));
    }
  }
  return Json(Json::Object{{"series", Json(std::move(series_out))},
                           {"ticks", Json(ticks)}});
}

}  // namespace obs
}  // namespace autotune
