#ifndef AUTOTUNE_MULTIOBJ_PARETO_H_
#define AUTOTUNE_MULTIOBJ_PARETO_H_

#include <vector>

#include "common/status.h"
#include "math/matrix.h"

namespace autotune {

/// Multi-objective primitives (tutorial slide 58). All objectives are
/// MINIMIZED; a point dominates another if it is no worse in every
/// objective and strictly better in at least one.

/// True iff `a` dominates `b` (equal-size vectors, CHECKed).
bool Dominates(const Vector& a, const Vector& b);

/// Indices of the non-dominated points among `points` (the Pareto
/// frontier), in input order. O(n^2), fine for tuning-scale data.
std::vector<size_t> ParetoFrontier(const std::vector<Vector>& points);

/// Maintains a Pareto archive incrementally: `Insert` keeps only
/// non-dominated points and reports whether the newcomer survived.
class ParetoArchive {
 public:
  /// Inserts `point`; returns true if it is non-dominated (and is kept,
  /// evicting any points it dominates).
  bool Insert(const Vector& point);

  const std::vector<Vector>& points() const { return points_; }
  size_t size() const { return points_.size(); }

 private:
  std::vector<Vector> points_;
};

/// Exact hypervolume (area) dominated by a 2-D frontier relative to
/// `reference` (which every point must dominate). Standard quality metric
/// for comparing multi-objective optimizers. Fails if any point does not
/// dominate the reference.
[[nodiscard]] Result<double> Hypervolume2D(const std::vector<Vector>& frontier,
                             const Vector& reference);

/// Scalarizations g_theta: R^k -> R (slide 58). `weights` must be positive
/// and are normalized internally.
double LinearScalarization(const Vector& objectives, const Vector& weights);

/// Augmented Tchebycheff scalarization, as used by ParEGO:
/// max_i(w_i f_i) + rho * sum_i(w_i f_i).
double TchebycheffScalarization(const Vector& objectives,
                                const Vector& weights, double rho = 0.05);

}  // namespace autotune

#endif  // AUTOTUNE_MULTIOBJ_PARETO_H_
