#ifndef AUTOTUNE_MULTIOBJ_PAREGO_H_
#define AUTOTUNE_MULTIOBJ_PAREGO_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "math/quasirandom.h"
#include "multiobj/pareto.h"
#include "space/encoding.h"
#include "surrogate/gaussian_process.h"

namespace autotune {

/// Options for multi-objective optimizers.
struct MooOptions {
  int initial_design = 8;
  int num_candidates = 256;
  /// Tchebycheff augmentation for ParEGO.
  double rho = 0.05;
};

/// Interface for optimizers that observe a VECTOR of objectives (all
/// minimized) and maintain a Pareto archive (tutorial slide 58).
class MultiObjectiveOptimizer {
 public:
  virtual ~MultiObjectiveOptimizer() = default;

  virtual std::string name() const = 0;
  [[nodiscard]] virtual Result<Configuration> Suggest() = 0;
  [[nodiscard]] virtual Status Observe(const Configuration& config,
                         const Vector& objectives) = 0;

  /// The non-dominated objective vectors observed so far.
  virtual const ParetoArchive& archive() const = 0;
  virtual size_t num_observations() const = 0;
};

/// ParEGO (Knowles 2006; tutorial slide 58): each iteration draws a random
/// weight vector on the simplex, scalarizes all observed objective vectors
/// with the augmented Tchebycheff function, fits a GP to the scalarized
/// values, and maximizes expected improvement. Different draws push the
/// search toward different parts of the Pareto frontier.
class ParEgoOptimizer : public MultiObjectiveOptimizer {
 public:
  ParEgoOptimizer(const ConfigSpace* space, uint64_t seed,
                  size_t num_objectives, MooOptions options = {});

  std::string name() const override { return "parego"; }
  [[nodiscard]] Result<Configuration> Suggest() override;
  [[nodiscard]] Status Observe(const Configuration& config,
                 const Vector& objectives) override;
  const ParetoArchive& archive() const override { return archive_; }
  size_t num_observations() const override { return history_.size(); }

 private:
  /// Objective vectors min-max normalized over history (per dimension).
  std::vector<Vector> NormalizedObjectives() const;

  const ConfigSpace* space_;
  Rng rng_;
  size_t num_objectives_;
  MooOptions options_;
  SpaceEncoder encoder_;
  HaltonSequence halton_;
  std::vector<std::pair<Configuration, Vector>> history_;
  ParetoArchive archive_;
};

/// Baseline: fixed linear scalarization (slide 58's "linear" strategy) —
/// one weight vector for the whole run, optimized with GP-EI. Finds one
/// point per run; sweeping weights across runs traces the convex part of
/// the frontier only.
class LinearScalarizationOptimizer : public MultiObjectiveOptimizer {
 public:
  LinearScalarizationOptimizer(const ConfigSpace* space, uint64_t seed,
                               Vector weights, MooOptions options = {});

  std::string name() const override { return "linear-scalar"; }
  [[nodiscard]] Result<Configuration> Suggest() override;
  [[nodiscard]] Status Observe(const Configuration& config,
                 const Vector& objectives) override;
  const ParetoArchive& archive() const override { return archive_; }
  size_t num_observations() const override { return num_observations_; }

 private:
  const ConfigSpace* space_;
  Rng rng_;
  Vector weights_;
  MooOptions options_;
  SpaceEncoder encoder_;
  HaltonSequence halton_;
  std::vector<std::pair<Vector, double>> scalarized_;  // (encoded, value).
  ParetoArchive archive_;
  size_t num_observations_ = 0;
};

}  // namespace autotune

#endif  // AUTOTUNE_MULTIOBJ_PAREGO_H_
