#include "multiobj/parego.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "math/distributions.h"
#include "optimizers/acquisition.h"

namespace autotune {

namespace {

// Scores candidates by EI against a GP fitted to (encoded, value) pairs and
// returns the best feasible candidate.
Result<Configuration> SuggestByGpEi(
    const ConfigSpace& space, const SpaceEncoder& encoder,
    const std::vector<std::pair<Vector, double>>& data, int num_candidates,
    Rng* rng) {
  std::vector<Vector> xs;
  Vector ys;
  xs.reserve(data.size());
  ys.reserve(data.size());
  double incumbent = std::numeric_limits<double>::infinity();
  for (const auto& [x, y] : data) {
    xs.push_back(x);
    ys.push_back(y);
    incumbent = std::min(incumbent, y);
  }
  // Full `Fit` (not incremental `Observe`): the scalarization weights
  // change every iteration, so the training targets are rewritten
  // wholesale — there is no append-only stream to absorb.
  auto gp = GaussianProcess::MakeDefault();
  AUTOTUNE_RETURN_IF_ERROR(gp->Fit(xs, ys));

  AcquisitionParams params;
  double best_score = -std::numeric_limits<double>::infinity();
  std::optional<Configuration> best;
  for (int i = 0; i < num_candidates; ++i) {
    Configuration candidate = space.Sample(rng);
    if (!space.IsFeasible(candidate)) continue;
    AUTOTUNE_ASSIGN_OR_RETURN(Vector x, encoder.Encode(candidate));
    const double score =
        EvaluateAcquisition(AcquisitionKind::kExpectedImprovement, params,
                            gp->Predict(x), incumbent);
    if (score > best_score) {
      best_score = score;
      best = std::move(candidate);
    }
  }
  if (!best.has_value()) return space.SampleFeasible(rng);
  return *best;
}

}  // namespace

ParEgoOptimizer::ParEgoOptimizer(const ConfigSpace* space, uint64_t seed,
                                 size_t num_objectives, MooOptions options)
    : space_(space),
      rng_(seed),
      num_objectives_(num_objectives),
      options_(options),
      encoder_(space, SpaceEncoder::CategoricalMode::kOrdinal),
      halton_(space->size()) {
  AUTOTUNE_CHECK(space != nullptr);
  AUTOTUNE_CHECK(num_objectives >= 2);
}

std::vector<Vector> ParEgoOptimizer::NormalizedObjectives() const {
  Vector lo(num_objectives_, std::numeric_limits<double>::infinity());
  Vector hi(num_objectives_, -std::numeric_limits<double>::infinity());
  for (const auto& [config, objectives] : history_) {
    for (size_t i = 0; i < num_objectives_; ++i) {
      lo[i] = std::min(lo[i], objectives[i]);
      hi[i] = std::max(hi[i], objectives[i]);
    }
  }
  std::vector<Vector> normalized;
  normalized.reserve(history_.size());
  for (const auto& [config, objectives] : history_) {
    Vector z(num_objectives_);
    for (size_t i = 0; i < num_objectives_; ++i) {
      const double range = hi[i] - lo[i];
      z[i] = range > 1e-12 ? (objectives[i] - lo[i]) / range : 0.0;
    }
    normalized.push_back(std::move(z));
  }
  return normalized;
}

Result<Configuration> ParEgoOptimizer::Suggest() {
  if (history_.size() < static_cast<size_t>(options_.initial_design)) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      Configuration config = space_->FromUnit(halton_.Next());
      if (space_->IsFeasible(config)) return config;
    }
    return space_->SampleFeasible(&rng_);
  }
  // Random simplex weights (uniform via exponential spacings).
  Vector weights(num_objectives_);
  for (auto& w : weights) w = rng_.Exponential(1.0) + 1e-9;
  // Scalarize all history with this draw.
  const std::vector<Vector> normalized = NormalizedObjectives();
  std::vector<std::pair<Vector, double>> data;
  data.reserve(history_.size());
  for (size_t i = 0; i < history_.size(); ++i) {
    AUTOTUNE_ASSIGN_OR_RETURN(Vector x,
                              encoder_.Encode(history_[i].first));
    data.emplace_back(std::move(x),
                      TchebycheffScalarization(normalized[i], weights,
                                               options_.rho));
  }
  return SuggestByGpEi(*space_, encoder_, data, options_.num_candidates,
                       &rng_);
}

Status ParEgoOptimizer::Observe(const Configuration& config,
                                const Vector& objectives) {
  if (objectives.size() != num_objectives_) {
    return Status::InvalidArgument("expected " +
                                   std::to_string(num_objectives_) +
                                   " objectives");
  }
  history_.emplace_back(config, objectives);
  archive_.Insert(objectives);
  return Status::OK();
}

LinearScalarizationOptimizer::LinearScalarizationOptimizer(
    const ConfigSpace* space, uint64_t seed, Vector weights,
    MooOptions options)
    : space_(space),
      rng_(seed),
      weights_(std::move(weights)),
      options_(options),
      encoder_(space, SpaceEncoder::CategoricalMode::kOrdinal),
      halton_(space->size()) {
  AUTOTUNE_CHECK(space != nullptr);
  AUTOTUNE_CHECK(weights_.size() >= 2);
}

Result<Configuration> LinearScalarizationOptimizer::Suggest() {
  if (scalarized_.size() < static_cast<size_t>(options_.initial_design)) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      Configuration config = space_->FromUnit(halton_.Next());
      if (space_->IsFeasible(config)) return config;
    }
    return space_->SampleFeasible(&rng_);
  }
  return SuggestByGpEi(*space_, encoder_, scalarized_,
                       options_.num_candidates, &rng_);
}

Status LinearScalarizationOptimizer::Observe(const Configuration& config,
                                             const Vector& objectives) {
  if (objectives.size() != weights_.size()) {
    return Status::InvalidArgument("objective/weight size mismatch");
  }
  AUTOTUNE_ASSIGN_OR_RETURN(Vector x, encoder_.Encode(config));
  scalarized_.emplace_back(std::move(x),
                           LinearScalarization(objectives, weights_));
  archive_.Insert(objectives);
  ++num_observations_;
  return Status::OK();
}

}  // namespace autotune
