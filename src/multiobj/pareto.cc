#include "multiobj/pareto.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace autotune {

bool Dominates(const Vector& a, const Vector& b) {
  AUTOTUNE_CHECK(a.size() == b.size());
  AUTOTUNE_CHECK(!a.empty());
  bool strictly_better = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<size_t> ParetoFrontier(const std::vector<Vector>& points) {
  std::vector<size_t> frontier;
  for (size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < points.size(); ++j) {
      if (i != j && Dominates(points[j], points[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(i);
  }
  return frontier;
}

bool ParetoArchive::Insert(const Vector& point) {
  for (const Vector& existing : points_) {
    if (Dominates(existing, point) || existing == point) return false;
  }
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [&point](const Vector& existing) {
                                 return Dominates(point, existing);
                               }),
                points_.end());
  points_.push_back(point);
  return true;
}

Result<double> Hypervolume2D(const std::vector<Vector>& frontier,
                             const Vector& reference) {
  if (reference.size() != 2) {
    return Status::InvalidArgument("Hypervolume2D needs 2-D objectives");
  }
  if (frontier.empty()) return 0.0;
  std::vector<Vector> sorted;
  for (const Vector& p : frontier) {
    if (p.size() != 2) {
      return Status::InvalidArgument("point is not 2-D");
    }
    if (p[0] >= reference[0] || p[1] >= reference[1]) {
      return Status::InvalidArgument(
          "every frontier point must dominate the reference");
    }
    sorted.push_back(p);
  }
  // Keep only the non-dominated points, sorted by first objective.
  std::sort(sorted.begin(), sorted.end());
  double volume = 0.0;
  double prev_y = reference[1];
  for (const Vector& p : sorted) {
    if (p[1] >= prev_y) continue;  // Dominated by a previous point.
    volume += (reference[0] - p[0]) * (prev_y - p[1]);
    prev_y = p[1];
  }
  return volume;
}

namespace {

Vector NormalizedWeights(const Vector& weights, size_t size) {
  AUTOTUNE_CHECK(weights.size() == size);
  double sum = 0.0;
  for (double w : weights) {
    AUTOTUNE_CHECK(w > 0.0);
    sum += w;
  }
  Vector normalized(weights);
  for (double& w : normalized) w /= sum;
  return normalized;
}

}  // namespace

double LinearScalarization(const Vector& objectives, const Vector& weights) {
  const Vector w = NormalizedWeights(weights, objectives.size());
  double sum = 0.0;
  for (size_t i = 0; i < objectives.size(); ++i) sum += w[i] * objectives[i];
  return sum;
}

double TchebycheffScalarization(const Vector& objectives,
                                const Vector& weights, double rho) {
  const Vector w = NormalizedWeights(weights, objectives.size());
  double max_term = -1e300;
  double sum = 0.0;
  for (size_t i = 0; i < objectives.size(); ++i) {
    const double term = w[i] * objectives[i];
    max_term = std::max(max_term, term);
    sum += term;
  }
  return max_term + rho * sum;
}

}  // namespace autotune
