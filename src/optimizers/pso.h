#ifndef AUTOTUNE_OPTIMIZERS_PSO_H_
#define AUTOTUNE_OPTIMIZERS_PSO_H_

#include <deque>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "math/matrix.h"

namespace autotune {

/// Options for `ParticleSwarmOptimizer`.
struct PsoOptions {
  int num_particles = 12;
  double inertia = 0.72;          ///< Velocity carry-over (w).
  double cognitive = 1.49;        ///< Pull toward the particle's best (c1).
  double social = 1.49;           ///< Pull toward the global best (c2).
  double max_velocity = 0.25;     ///< Per-dimension velocity clamp.
};

/// Particle swarm optimization (tutorial slide 50, Gad 2022): a swarm of
/// unit-cube particles, each pulled toward its own best and the swarm's
/// best position. Ask/tell: one swarm sweep per generation.
class ParticleSwarmOptimizer : public OptimizerBase {
 public:
  ParticleSwarmOptimizer(const ConfigSpace* space, uint64_t seed,
                         PsoOptions options = {});

  std::string name() const override { return "pso"; }

  [[nodiscard]] Result<Configuration> Suggest() override;

 protected:
  void OnObserve(const Observation& observation) override;

 private:
  void AdvanceParticle(size_t index);

  PsoOptions options_;
  size_t dim_;
  std::vector<Vector> positions_;
  std::vector<Vector> velocities_;
  std::vector<Vector> personal_best_;
  Vector personal_best_objective_;
  Vector global_best_;
  double global_best_objective_;
  std::deque<size_t> awaiting_result_;
  size_t next_particle_ = 0;
  bool initialized_ = false;
};

}  // namespace autotune

#endif  // AUTOTUNE_OPTIMIZERS_PSO_H_
