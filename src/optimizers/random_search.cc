#include "optimizers/random_search.h"

namespace autotune {

RandomSearch::RandomSearch(const ConfigSpace* space, uint64_t seed, Mode mode)
    : OptimizerBase(space, seed), mode_(mode), halton_(space->size()) {}

std::string RandomSearch::name() const {
  return mode_ == Mode::kUniform ? "random" : "halton";
}

Result<OptimizerCheckpoint> RandomSearch::SaveCheckpoint() const {
  OptimizerCheckpoint checkpoint = SaveBaseCheckpoint();
  checkpoint.fields["halton_index"] = static_cast<int64_t>(halton_.index());
  return checkpoint;
}

Status RandomSearch::RestoreCheckpoint(
    const OptimizerCheckpoint& checkpoint,
    const std::vector<Observation>& history) {
  auto it = checkpoint.fields.find("halton_index");
  if (it == checkpoint.fields.end() || it->second < 0) {
    return Status::InvalidArgument("checkpoint missing 'halton_index'");
  }
  AUTOTUNE_RETURN_IF_ERROR(RestoreBaseCheckpoint(checkpoint, history));
  halton_.set_index(static_cast<size_t>(it->second));
  return Status::OK();
}

Result<Configuration> RandomSearch::Suggest() {
  constexpr int kMaxTries = 1000;
  for (int attempt = 0; attempt < kMaxTries; ++attempt) {
    Configuration config = mode_ == Mode::kUniform
                               ? space_->Sample(&rng_)
                               : space_->FromUnit(halton_.Next());
    if (space_->IsFeasible(config)) {
      DecisionRecord decision;
      decision.phase = mode_ == Mode::kUniform ? "uniform" : "halton";
      decision.candidates = attempt + 1;
      decision.chosen = DecisionCandidate{config, 0.0, 0.0, 0.0};
      if (mode_ == Mode::kHalton) {
        decision.details["halton_index"] =
            static_cast<int64_t>(halton_.index());
      }
      PushDecision(std::move(decision));
      return config;
    }
  }
  return Status::Unavailable("no feasible sample in " +
                             std::to_string(kMaxTries) + " tries");
}

}  // namespace autotune
