#include "optimizers/cmaes.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace autotune {

CmaEsOptimizer::CmaEsOptimizer(const ConfigSpace* space, uint64_t seed,
                               CmaEsOptions options)
    : OptimizerBase(space, seed),
      options_(options),
      dim_(space->size()),
      lambda_(0),
      mu_(0),
      sigma_(options.initial_sigma),
      cov_(Matrix::Identity(space->size())),
      eigen_basis_(Matrix::Identity(space->size())),
      eigen_scale_(space->size(), 1.0),
      path_sigma_(space->size(), 0.0),
      path_cov_(space->size(), 0.0) {
  AUTOTUNE_CHECK(dim_ >= 1);
  AUTOTUNE_CHECK(sigma_ > 0.0);
  const double n = static_cast<double>(dim_);
  lambda_ = options_.population > 0
                ? options_.population
                : 4 + static_cast<int>(std::floor(3.0 * std::log(n)));
  lambda_ = std::max(lambda_, 4);
  mu_ = lambda_ / 2;
  // Log-rank recombination weights (Hansen's defaults).
  weights_.resize(static_cast<size_t>(mu_));
  double sum = 0.0;
  for (int i = 0; i < mu_; ++i) {
    weights_[static_cast<size_t>(i)] =
        std::log(static_cast<double>(mu_) + 0.5) -
        std::log(static_cast<double>(i) + 1.0);
    sum += weights_[static_cast<size_t>(i)];
  }
  double sum_sq = 0.0;
  for (auto& w : weights_) {
    w /= sum;
    sum_sq += w * w;
  }
  mu_eff_ = 1.0 / sum_sq;
  cc_ = (4.0 + mu_eff_ / n) / (n + 4.0 + 2.0 * mu_eff_ / n);
  cs_ = (mu_eff_ + 2.0) / (n + mu_eff_ + 5.0);
  c1_ = 2.0 / ((n + 1.3) * (n + 1.3) + mu_eff_);
  cmu_ = std::min(1.0 - c1_,
                  2.0 * (mu_eff_ - 2.0 + 1.0 / mu_eff_) /
                      ((n + 2.0) * (n + 2.0) + mu_eff_));
  damps_ = 1.0 +
           2.0 * std::max(0.0, std::sqrt((mu_eff_ - 1.0) / (n + 1.0)) - 1.0) +
           cs_;
  chi_n_ = std::sqrt(n) * (1.0 - 1.0 / (4.0 * n) + 1.0 / (21.0 * n * n));
  // Start at the center of the unit cube.
  mean_.assign(dim_, 0.5);
  SampleGeneration();
}

void CmaEsOptimizer::RefreshEigen() {
  auto eigen = SymmetricEigen(cov_);
  AUTOTUNE_CHECK(eigen.ok());
  eigen_basis_ = eigen->eigenvectors;
  eigen_scale_ = eigen->eigenvalues;
  for (auto& value : eigen_scale_) {
    value = std::sqrt(std::max(value, 1e-14));
  }
}

void CmaEsOptimizer::SampleGeneration() {
  gen_points_.clear();
  unsuggested_.clear();
  awaiting_result_.clear();
  gen_objectives_.assign(static_cast<size_t>(lambda_), 0.0);
  observed_in_generation_ = 0;
  for (int i = 0; i < lambda_; ++i) {
    // x = m + sigma * B * D * z, clipped to the unit cube.
    Vector z(dim_);
    for (auto& v : z) v = rng_.Normal();
    Vector x(dim_, 0.0);
    for (size_t r = 0; r < dim_; ++r) {
      double acc = 0.0;
      for (size_t c = 0; c < dim_; ++c) {
        acc += eigen_basis_(r, c) * eigen_scale_[c] * z[c];
      }
      x[r] = std::clamp(mean_[r] + sigma_ * acc, 0.0, 1.0);
    }
    gen_points_.push_back(std::move(x));
    unsuggested_.push_back(static_cast<size_t>(i));
  }
}

Result<Configuration> CmaEsOptimizer::Suggest() {
  if (unsuggested_.empty()) {
    // Whole generation outstanding; re-suggest the oldest awaiting result
    // (keeps the loop alive if some observations never arrive).
    if (!awaiting_result_.empty()) {
      return space_->FromUnit(gen_points_[awaiting_result_.front()]);
    }
    return Status::Internal("CMA-ES generation bookkeeping exhausted");
  }
  const size_t index = unsuggested_.front();
  unsuggested_.pop_front();
  awaiting_result_.push_back(index);
  return space_->FromUnit(gen_points_[index]);
}

void CmaEsOptimizer::OnObserve(const Observation& /*observation*/) {
  if (awaiting_result_.empty()) return;  // External observation; ignore.
  const size_t index = awaiting_result_.front();
  awaiting_result_.pop_front();
  gen_objectives_[index] = history_.back().objective;
  ++observed_in_generation_;
  if (observed_in_generation_ == static_cast<size_t>(lambda_)) {
    UpdateDistribution();
    ++generation_;
    SampleGeneration();
  }
}

void CmaEsOptimizer::UpdateDistribution() {
  const double n = static_cast<double>(dim_);
  // Rank individuals by objective (ascending: best first).
  std::vector<size_t> order(static_cast<size_t>(lambda_));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return gen_objectives_[a] < gen_objectives_[b];
  });

  const Vector old_mean = mean_;
  Vector new_mean(dim_, 0.0);
  for (int i = 0; i < mu_; ++i) {
    const Vector& x = gen_points_[order[static_cast<size_t>(i)]];
    for (size_t d = 0; d < dim_; ++d) {
      new_mean[d] += weights_[static_cast<size_t>(i)] * x[d];
    }
  }

  // Mean shift in sigma-normalized coordinates.
  Vector shift(dim_);
  for (size_t d = 0; d < dim_; ++d) {
    shift[d] = (new_mean[d] - old_mean[d]) / sigma_;
  }

  // C^-1/2 * shift = B * D^-1 * B^T * shift.
  Vector bt_shift(dim_, 0.0);
  for (size_t c = 0; c < dim_; ++c) {
    double acc = 0.0;
    for (size_t r = 0; r < dim_; ++r) acc += eigen_basis_(r, c) * shift[r];
    bt_shift[c] = acc / eigen_scale_[c];
  }
  Vector c_inv_sqrt_shift(dim_, 0.0);
  for (size_t r = 0; r < dim_; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < dim_; ++c) {
      acc += eigen_basis_(r, c) * bt_shift[c];
    }
    c_inv_sqrt_shift[r] = acc;
  }

  // Evolution path for sigma.
  const double cs_norm = std::sqrt(cs_ * (2.0 - cs_) * mu_eff_);
  for (size_t d = 0; d < dim_; ++d) {
    path_sigma_[d] = (1.0 - cs_) * path_sigma_[d] +
                     cs_norm * c_inv_sqrt_shift[d];
  }
  const double ps_norm = Norm2(path_sigma_);
  const double expected_decay = std::sqrt(
      1.0 - std::pow(1.0 - cs_, 2.0 * static_cast<double>(generation_ + 1)));
  const bool hsig =
      ps_norm / std::max(expected_decay, 1e-12) / chi_n_ <
      1.4 + 2.0 / (n + 1.0);

  // Evolution path for C.
  const double cc_norm = std::sqrt(cc_ * (2.0 - cc_) * mu_eff_);
  for (size_t d = 0; d < dim_; ++d) {
    path_cov_[d] = (1.0 - cc_) * path_cov_[d] +
                   (hsig ? cc_norm * shift[d] : 0.0);
  }

  // Covariance update: rank-one + rank-mu.
  const double c1a =
      c1_ * (1.0 - (hsig ? 0.0 : 1.0) * cc_ * (2.0 - cc_));
  for (size_t r = 0; r < dim_; ++r) {
    for (size_t c = 0; c < dim_; ++c) {
      double rank_mu = 0.0;
      for (int i = 0; i < mu_; ++i) {
        const Vector& x = gen_points_[order[static_cast<size_t>(i)]];
        const double yr = (x[r] - old_mean[r]) / sigma_;
        const double yc = (x[c] - old_mean[c]) / sigma_;
        rank_mu += weights_[static_cast<size_t>(i)] * yr * yc;
      }
      cov_(r, c) = (1.0 - c1a - cmu_) * cov_(r, c) +
                   c1_ * path_cov_[r] * path_cov_[c] + cmu_ * rank_mu;
    }
  }

  // Step-size update.
  sigma_ *= std::exp((cs_ / damps_) * (ps_norm / chi_n_ - 1.0));
  sigma_ = std::clamp(sigma_, 1e-8, 1.0);

  mean_ = new_mean;
  RefreshEigen();
}

}  // namespace autotune
