#ifndef AUTOTUNE_OPTIMIZERS_CMAES_H_
#define AUTOTUNE_OPTIMIZERS_CMAES_H_

#include <deque>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "math/matrix.h"

namespace autotune {

/// Options for `CmaEsOptimizer`.
struct CmaEsOptions {
  /// Population size; 0 = Hansen's default 4 + floor(3 ln n).
  int population = 0;
  /// Initial step size in unit-cube coordinates.
  double initial_sigma = 0.3;
};

/// CMA-ES — covariance matrix adaptation evolution strategy (tutorial slide
/// 50, Hansen 2023). A population of unit-cube points is sampled from
/// N(m, sigma^2 C); after the whole generation is evaluated, the mean, step
/// size, and covariance adapt toward the best-ranked samples. Implemented
/// in ask/tell style so it plugs into the suggest/observe loop: `Suggest`
/// pops from the current generation and `Observe` triggers the update once
/// the generation completes.
class CmaEsOptimizer : public OptimizerBase {
 public:
  CmaEsOptimizer(const ConfigSpace* space, uint64_t seed,
                 CmaEsOptions options = {});

  std::string name() const override { return "cmaes"; }

  [[nodiscard]] Result<Configuration> Suggest() override;

  /// Current step size (diagnostic).
  double sigma() const { return sigma_; }

  /// Completed generations (diagnostic).
  int generation() const { return generation_; }

 protected:
  void OnObserve(const Observation& observation) override;

 private:
  void SampleGeneration();
  void UpdateDistribution();
  /// Refreshes B/D from C via eigendecomposition.
  void RefreshEigen();

  CmaEsOptions options_;
  size_t dim_;
  int lambda_;
  int mu_;
  Vector weights_;
  double mu_eff_ = 0.0;
  double cc_ = 0.0, cs_ = 0.0, c1_ = 0.0, cmu_ = 0.0, damps_ = 0.0;
  double chi_n_ = 0.0;

  Vector mean_;
  double sigma_;
  Matrix cov_;
  Matrix eigen_basis_;   // B.
  Vector eigen_scale_;   // D (sqrt of eigenvalues).
  Vector path_sigma_;
  Vector path_cov_;
  int generation_ = 0;

  // Current generation bookkeeping.
  std::vector<Vector> gen_points_;      // Unit-cube sample per individual.
  std::deque<size_t> unsuggested_;      // Individuals not yet handed out.
  std::deque<size_t> awaiting_result_;  // Suggested, not yet observed (FIFO).
  Vector gen_objectives_;
  size_t observed_in_generation_ = 0;
};

}  // namespace autotune

#endif  // AUTOTUNE_OPTIMIZERS_CMAES_H_
