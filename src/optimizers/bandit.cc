#include "optimizers/bandit.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace autotune {

BanditOptimizer::BanditOptimizer(const ConfigSpace* space, uint64_t seed,
                                 std::vector<Configuration> arms,
                                 BanditOptions options)
    : OptimizerBase(space, seed),
      options_(options),
      arms_(std::move(arms)) {
  AUTOTUNE_CHECK_MSG(!arms_.empty(), "bandit needs at least one arm");
  plays_.assign(arms_.size(), 0);
  mean_objective_.assign(arms_.size(), 0.0);
  m2_.assign(arms_.size(), 0.0);
  for (size_t i = 0; i < arms_.size(); ++i) {
    arm_index_[arms_[i].ToString()] = i;
  }
}

std::unique_ptr<BanditOptimizer> BanditOptimizer::FromGrid(
    const ConfigSpace* space, uint64_t seed, size_t points_per_numeric,
    BanditOptions options) {
  return std::make_unique<BanditOptimizer>(
      space, seed, space->Grid(points_per_numeric), options);
}

std::string BanditOptimizer::name() const {
  switch (options_.policy) {
    case BanditPolicy::kEpsilonGreedy:
      return "bandit-egreedy";
    case BanditPolicy::kUcb1:
      return "bandit-ucb1";
    case BanditPolicy::kThompson:
      return "bandit-ts";
  }
  return "bandit";
}

size_t BanditOptimizer::BestArm() const {
  size_t best = 0;
  double best_mean = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < arms_.size(); ++i) {
    if (plays_[i] > 0 && mean_objective_[i] < best_mean) {
      best_mean = mean_objective_[i];
      best = i;
    }
  }
  return best;
}

const Configuration& BanditOptimizer::arm(size_t index) const {
  AUTOTUNE_CHECK(index < arms_.size());
  return arms_[index];
}

Result<Configuration> BanditOptimizer::Suggest() {
  // Play every arm once first.
  for (size_t i = 0; i < arms_.size(); ++i) {
    if (plays_[i] == 0) return arms_[i];
  }
  size_t choice = 0;
  switch (options_.policy) {
    case BanditPolicy::kEpsilonGreedy: {
      if (rng_.Bernoulli(options_.epsilon)) {
        choice = static_cast<size_t>(
            rng_.UniformInt(0, static_cast<int64_t>(arms_.size()) - 1));
      } else {
        choice = BestArm();
      }
      break;
    }
    case BanditPolicy::kUcb1: {
      // Minimization: pick the lowest lower-confidence bound on the mean
      // objective (equivalently UCB on reward = -objective).
      double best_score = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < arms_.size(); ++i) {
        const double bonus =
            std::sqrt(options_.ucb_c * std::log(total_plays_ + 1.0) /
                      plays_[i]);
        const double score = mean_objective_[i] - bonus;
        if (score < best_score) {
          best_score = score;
          choice = i;
        }
      }
      break;
    }
    case BanditPolicy::kThompson: {
      double best_draw = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < arms_.size(); ++i) {
        const double n = plays_[i];
        const double var = plays_[i] > 1 ? m2_[i] / (n - 1.0) : 1.0;
        const double draw =
            rng_.Normal(mean_objective_[i], std::sqrt(var / n) + 1e-9);
        if (draw < best_draw) {
          best_draw = draw;
          choice = i;
        }
      }
      break;
    }
  }
  return arms_[choice];
}

void BanditOptimizer::OnObserve(const Observation& observation) {
  auto it = arm_index_.find(observation.config.ToString());
  if (it == arm_index_.end()) return;  // Not one of our arms; ignore.
  const size_t arm = it->second;
  ++plays_[arm];
  ++total_plays_;
  // Welford online mean/variance update.
  const double delta = observation.objective - mean_objective_[arm];
  mean_objective_[arm] += delta / plays_[arm];
  m2_[arm] += delta * (observation.objective - mean_objective_[arm]);
}

}  // namespace autotune
