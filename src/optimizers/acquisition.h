#ifndef AUTOTUNE_OPTIMIZERS_ACQUISITION_H_
#define AUTOTUNE_OPTIMIZERS_ACQUISITION_H_

#include <string>

#include "surrogate/surrogate.h"

namespace autotune {

/// Acquisition functions (tutorial slides 47-48): score how "interesting"
/// a candidate point is given the surrogate posterior. All scores are
/// HIGHER-IS-BETTER, and the objective is MINIMIZED, so UCB from the slides
/// becomes the lower confidence bound here (slide 48: "in our case, Lower
/// Confidence Bound").
enum class AcquisitionKind {
  /// Probability of improving on the incumbent.
  kProbabilityOfImprovement,
  /// Expected improvement: magnitude-aware (slide 47).
  kExpectedImprovement,
  /// Negated lower confidence bound -(mean - beta * stddev).
  kLowerConfidenceBound,
  /// Thompson sampling: score = -posterior_sample (handled by the BO driver
  /// drawing joint samples; pointwise fallback draws an independent normal).
  kThompsonSampling,
};

const char* AcquisitionKindToString(AcquisitionKind kind);

/// Parameters for acquisition evaluation.
struct AcquisitionParams {
  /// Exploration weight for LCB (slide 48's beta >= 0).
  double beta = 2.0;
  /// Jitter xi subtracted from the incumbent in EI/PI to avoid premature
  /// exploitation.
  double xi = 0.0;
};

/// Scores a prediction. `best_objective` is the incumbent (lowest observed
/// objective). For kThompsonSampling this pointwise form returns
/// -(mean) plus noise supplied by the caller as `thompson_draw` (a standard
/// normal); the BO driver passes a per-candidate draw.
///
/// DEPRECATED for hot paths: this per-point form is kept as a thin adapter
/// over the same scalar core the batched entry point uses; candidate-pool
/// scoring should go through `EvaluateAcquisitionBatch`.
double EvaluateAcquisition(AcquisitionKind kind,
                           const AcquisitionParams& params,
                           const Prediction& prediction,
                           double best_objective,
                           double thompson_draw = 0.0);

/// Scores a whole structure-of-arrays prediction batch into `*scores`
/// (resized to `predictions.size()`), allocation-free after the first call
/// with a reused output vector. `thompson_draws` must be empty (non-TS
/// kinds) or one standard-normal draw per candidate. Score i is
/// bit-identical to the per-point `EvaluateAcquisition` on
/// `predictions.At(i)`.
void EvaluateAcquisitionBatch(AcquisitionKind kind,
                              const AcquisitionParams& params,
                              const PredictionBatch& predictions,
                              double best_objective,
                              const Vector& thompson_draws, Vector* scores);

}  // namespace autotune

#endif  // AUTOTUNE_OPTIMIZERS_ACQUISITION_H_
