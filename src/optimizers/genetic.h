#ifndef AUTOTUNE_OPTIMIZERS_GENETIC_H_
#define AUTOTUNE_OPTIMIZERS_GENETIC_H_

#include <deque>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "math/matrix.h"

namespace autotune {

/// Options for `GeneticOptimizer`.
struct GeneticOptions {
  int population = 16;
  int elite = 2;                 ///< Individuals copied unchanged.
  int tournament_size = 3;
  double crossover_rate = 0.9;   ///< Probability of uniform crossover.
  double mutation_rate = 0.15;   ///< Per-gene mutation probability.
  double mutation_scale = 0.2;   ///< Stddev of the Gaussian gene mutation.
};

/// Genetic algorithm over unit-cube genomes (the online-tuning GA family of
/// tutorial slide 81: HUNTER, RFHOC): tournament selection, uniform
/// crossover, Gaussian mutation, elitism. Ask/tell generational loop like
/// CMA-ES.
class GeneticOptimizer : public OptimizerBase {
 public:
  GeneticOptimizer(const ConfigSpace* space, uint64_t seed,
                   GeneticOptions options = {});

  std::string name() const override { return "ga"; }

  [[nodiscard]] Result<Configuration> Suggest() override;

  int generation() const { return generation_; }

 protected:
  void OnObserve(const Observation& observation) override;

 private:
  void NextGeneration();
  size_t TournamentPick() const;

  GeneticOptions options_;
  size_t dim_;
  std::vector<Vector> genomes_;
  Vector fitness_;  // Objective per genome (lower = fitter).
  std::deque<size_t> unsuggested_;
  std::deque<size_t> awaiting_result_;
  size_t observed_in_generation_ = 0;
  int generation_ = 0;
  mutable Rng tournament_rng_;
};

}  // namespace autotune

#endif  // AUTOTUNE_OPTIMIZERS_GENETIC_H_
