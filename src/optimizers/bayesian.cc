#include "optimizers/bayesian.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "surrogate/gaussian_process.h"
#include "surrogate/random_forest.h"

namespace autotune {

BayesianOptimizer::BayesianOptimizer(const ConfigSpace* space, uint64_t seed,
                                     std::unique_ptr<Surrogate> surrogate,
                                     BayesianOptimizerOptions options)
    : OptimizerBase(space, seed),
      surrogate_(std::move(surrogate)),
      options_(options),
      encoder_(space, options.encoding, options.impute_inactive),
      halton_(space->size()) {
  AUTOTUNE_CHECK(surrogate_ != nullptr);
  AUTOTUNE_CHECK(options_.initial_design >= 2);
  AUTOTUNE_CHECK(options_.num_candidates >= 2);
  AUTOTUNE_CHECK(options_.refit_every >= 1);
}

std::string BayesianOptimizer::name() const {
  return std::string("bo-") +
         AcquisitionKindToString(options_.acquisition);
}

void BayesianOptimizer::OnObserve(const Observation& /*observation*/) {
  surrogate_stale_ = true;
}

Status BayesianOptimizer::RefitWith(
    const std::vector<std::pair<Vector, double>>& extra,
    size_t history_count) {
  obs::Span span("bo.fit");
  obs::MetricsRegistry::Global().Increment("bo.surrogate_refits");
  const size_t count = std::min(history_count, history_.size());
  std::vector<Vector> xs;
  Vector ys;
  xs.reserve(count + extra.size());
  ys.reserve(count + extra.size());
  for (size_t i = 0; i < count; ++i) {
    const Observation& obs = history_[i];
    AUTOTUNE_ASSIGN_OR_RETURN(Vector x, encoder_.Encode(obs.config));
    xs.push_back(std::move(x));
    ys.push_back(obs.objective);
  }
  for (const auto& [x, y] : extra) {
    xs.push_back(x);
    ys.push_back(y);
  }
  if (xs.empty()) return Status::FailedPrecondition("no observations");
  AUTOTUNE_RETURN_IF_ERROR(surrogate_->Fit(xs, ys));
  if (extra.empty()) {
    clean_fit_history_size_ = count;
    fit_is_fantasy_ = false;
  } else {
    fit_is_fantasy_ = true;
  }
  return Status::OK();
}

Result<OptimizerCheckpoint> BayesianOptimizer::SaveCheckpoint() const {
  // A fantasy (batch) fit is not reconstructible from history. It is still
  // checkpointable when the next model read is guaranteed to clean-refit
  // first (SuggestBatch always does; Suggest does iff the stale counter
  // will trip), because then the fitted state is dead weight either way.
  const bool refit_before_use =
      surrogate_stale_ && observations_since_fit_ + 1 >= options_.refit_every;
  if (fit_is_fantasy_ && !refit_before_use) {
    return Status::FailedPrecondition(
        "surrogate holds a live fantasy fit; checkpoint at the next trial "
        "boundary after a clean refit");
  }
  OptimizerCheckpoint checkpoint = SaveBaseCheckpoint();
  checkpoint.fields["halton_index"] =
      static_cast<int64_t>(halton_.index());
  checkpoint.fields["surrogate_stale"] = surrogate_stale_ ? 1 : 0;
  checkpoint.fields["observations_since_fit"] = observations_since_fit_;
  checkpoint.fields["clean_fit_history_size"] =
      static_cast<int64_t>(clean_fit_history_size_);
  return checkpoint;
}

Status BayesianOptimizer::RestoreCheckpoint(
    const OptimizerCheckpoint& checkpoint,
    const std::vector<Observation>& history) {
  const auto field = [&checkpoint](const char* name) -> Result<int64_t> {
    auto it = checkpoint.fields.find(name);
    if (it == checkpoint.fields.end()) {
      return Status::InvalidArgument(std::string("checkpoint missing '") +
                                     name + "'");
    }
    return it->second;
  };
  AUTOTUNE_ASSIGN_OR_RETURN(const int64_t halton_index,
                            field("halton_index"));
  AUTOTUNE_ASSIGN_OR_RETURN(const int64_t stale, field("surrogate_stale"));
  AUTOTUNE_ASSIGN_OR_RETURN(const int64_t since_fit,
                            field("observations_since_fit"));
  AUTOTUNE_ASSIGN_OR_RETURN(const int64_t clean_fit,
                            field("clean_fit_history_size"));
  if (clean_fit < 0 || static_cast<size_t>(clean_fit) > history.size()) {
    return Status::InvalidArgument(
        "checkpoint clean_fit_history_size out of range");
  }
  AUTOTUNE_RETURN_IF_ERROR(RestoreBaseCheckpoint(checkpoint, history));
  halton_.set_index(static_cast<size_t>(halton_index));
  // Surrogate fits are pure functions of their training set, so ONE refit
  // on the journaled prefix reproduces the model the interrupted run had —
  // this is what bounds resume cost by the snapshot interval.
  fit_is_fantasy_ = false;
  clean_fit_history_size_ = 0;
  if (clean_fit > 0) {
    AUTOTUNE_RETURN_IF_ERROR(RefitWith({}, static_cast<size_t>(clean_fit)));
  }
  surrogate_stale_ = stale != 0;
  observations_since_fit_ = static_cast<int>(since_fit);
  return Status::OK();
}

Result<Configuration> BayesianOptimizer::MaximizeAcquisition(
    const char* phase) {
  AUTOTUNE_CHECK(best_.has_value());
  const double incumbent = best_->objective;

  // Candidate pool: uniform exploration + local perturbations of the best.
  std::vector<Configuration> candidates;
  candidates.reserve(static_cast<size_t>(options_.num_candidates));
  const int local = static_cast<int>(options_.local_fraction *
                                     options_.num_candidates);
  for (int i = 0; i < options_.num_candidates; ++i) {
    Configuration candidate =
        (i < local && !best_->failed)
            ? space_->Neighbor(best_->config, options_.local_scale, &rng_)
            : space_->Sample(&rng_);
    if (!space_->IsFeasible(candidate)) continue;
    candidates.push_back(std::move(candidate));
  }
  if (candidates.empty()) {
    AUTOTUNE_ASSIGN_OR_RETURN(Configuration fallback,
                              space_->SampleFeasible(&rng_));
    DecisionRecord decision;
    decision.phase = "random_fallback";
    decision.candidates = 0;
    decision.chosen = DecisionCandidate{fallback, 0.0, 0.0, 0.0};
    PushDecision(std::move(decision));
    return fallback;
  }

  std::vector<double> scores(candidates.size());
  std::vector<double> means(candidates.size());
  std::vector<double> variances(candidates.size());
  double best_score = -std::numeric_limits<double>::infinity();
  size_t best_index = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    AUTOTUNE_ASSIGN_OR_RETURN(Vector x, encoder_.Encode(candidates[i]));
    const Prediction prediction = surrogate_->Predict(x);
    const double draw =
        options_.acquisition == AcquisitionKind::kThompsonSampling
            ? rng_.Normal()
            : 0.0;
    double score =
        EvaluateAcquisition(options_.acquisition,
                            options_.acquisition_params, prediction,
                            incumbent, draw);
    if (options_.cost_fn && score > 0.0) {
      // Cost-adjusted acquisition: improvement per unit cost.
      score /= std::max(options_.cost_fn(candidates[i]), 1e-9);
    }
    scores[i] = score;
    means[i] = prediction.mean;
    variances[i] = prediction.variance;
    if (score > best_score) {
      best_score = score;
      best_index = i;
    }
  }

  // Rank candidates for the explain record: score desc, scan order on ties
  // (so top_k[0] is exactly the chosen argmax).
  std::vector<size_t> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const size_t top_n = std::min(kDecisionTopK, order.size());
  std::partial_sort(order.begin(), order.begin() + top_n, order.end(),
                    [&scores](size_t a, size_t b) {
                      if (scores[a] != scores[b]) {
                        return scores[a] > scores[b];
                      }
                      return a < b;
                    });
  DecisionRecord decision;
  decision.phase = phase;
  decision.candidates = static_cast<int64_t>(candidates.size());
  decision.chosen = DecisionCandidate{candidates[best_index],
                                      scores[best_index], means[best_index],
                                      variances[best_index]};
  decision.top_k.reserve(top_n);
  for (size_t rank = 0; rank < top_n; ++rank) {
    const size_t i = order[rank];
    decision.top_k.push_back(
        DecisionCandidate{candidates[i], scores[i], means[i], variances[i]});
  }
  PushDecision(std::move(decision));
  return candidates[best_index];
}

Result<Configuration> BayesianOptimizer::Suggest() {
  obs::Span span("bo.suggest");
  // Phase 1: space-filling initial design.
  if (history_.size() < static_cast<size_t>(options_.initial_design)) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      Configuration config = space_->FromUnit(halton_.Next());
      if (space_->IsFeasible(config)) {
        DecisionRecord decision;
        decision.phase = "initial_design";
        decision.candidates = attempt + 1;
        decision.chosen = DecisionCandidate{config, 0.0, 0.0, 0.0};
        decision.details["halton_index"] =
            static_cast<int64_t>(halton_.index());
        PushDecision(std::move(decision));
        return config;
      }
    }
    AUTOTUNE_ASSIGN_OR_RETURN(Configuration fallback,
                              space_->SampleFeasible(&rng_));
    DecisionRecord decision;
    decision.phase = "random_fallback";
    decision.candidates = 0;
    decision.chosen = DecisionCandidate{fallback, 0.0, 0.0, 0.0};
    PushDecision(std::move(decision));
    return fallback;
  }
  // Phase 2: model-guided.
  if (surrogate_stale_ &&
      ++observations_since_fit_ >= options_.refit_every) {
    Status status = RefitWith({});
    if (!status.ok()) {
      AUTOTUNE_LOG(kWarning) << "surrogate refit failed: "
                             << status.ToString()
                             << "; falling back to random";
      AUTOTUNE_ASSIGN_OR_RETURN(Configuration fallback,
                                space_->SampleFeasible(&rng_));
      DecisionRecord decision;
      decision.phase = "random_fallback";
      decision.candidates = 0;
      decision.chosen = DecisionCandidate{fallback, 0.0, 0.0, 0.0};
      PushDecision(std::move(decision));
      return fallback;
    }
    surrogate_stale_ = false;
    observations_since_fit_ = 0;
  }
  return MaximizeAcquisition("model");
}

Result<std::vector<Configuration>> BayesianOptimizer::SuggestBatch(size_t k) {
  if (history_.size() < static_cast<size_t>(options_.initial_design)) {
    // Initial design is naturally diverse; no liar needed.
    return Optimizer::SuggestBatch(k);
  }
  std::vector<Configuration> batch;
  std::vector<std::pair<Vector, double>> fantasies;
  const double incumbent_lie = best_.has_value() ? best_->objective : 0.0;
  for (size_t i = 0; i < k; ++i) {
    AUTOTUNE_RETURN_IF_ERROR(RefitWith(fantasies));
    surrogate_stale_ = true;  // Fantasy fit; force a clean refit later.
    AUTOTUNE_ASSIGN_OR_RETURN(
        Configuration config,
        MaximizeAcquisition(i == 0 ? "model" : "fantasy_batch"));
    AUTOTUNE_ASSIGN_OR_RETURN(Vector x, encoder_.Encode(config));
    const double fantasy =
        options_.batch_strategy ==
                BayesianOptimizerOptions::BatchStrategy::kKrigingBeliever
            ? surrogate_->Predict(x).mean  // Believe the model.
            : incumbent_lie;               // Constant liar.
    fantasies.emplace_back(std::move(x), fantasy);
    batch.push_back(std::move(config));
  }
  return batch;
}

std::unique_ptr<BayesianOptimizer> MakeGpBo(const ConfigSpace* space,
                                            uint64_t seed) {
  return std::make_unique<BayesianOptimizer>(
      space, seed, GaussianProcess::MakeDefault(),
      BayesianOptimizerOptions{});
}

std::unique_ptr<BayesianOptimizer> MakeSmac(const ConfigSpace* space,
                                            uint64_t seed) {
  BayesianOptimizerOptions options;
  options.encoding = SpaceEncoder::CategoricalMode::kOneHot;
  RandomForestOptions rf_options;
  rf_options.seed = seed ^ 0x5eed5eedULL;
  return std::make_unique<BayesianOptimizer>(
      space, seed, std::make_unique<RandomForestSurrogate>(rf_options),
      options);
}

}  // namespace autotune
