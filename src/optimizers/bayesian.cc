#include "optimizers/bayesian.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "surrogate/gaussian_process.h"
#include "surrogate/random_forest.h"
#include "surrogate/sparse_gp.h"

namespace autotune {

BayesianOptimizer::BayesianOptimizer(const ConfigSpace* space, uint64_t seed,
                                     std::unique_ptr<Surrogate> surrogate,
                                     BayesianOptimizerOptions options)
    : OptimizerBase(space, seed),
      surrogate_(std::move(surrogate)),
      options_(options),
      encoder_(space, options.encoding, options.impute_inactive),
      halton_(space->size()) {
  AUTOTUNE_CHECK(surrogate_ != nullptr);
  AUTOTUNE_CHECK(options_.initial_design >= 2);
  AUTOTUNE_CHECK(options_.num_candidates >= 2);
  AUTOTUNE_CHECK(options_.refit_every >= 1);
}

std::string BayesianOptimizer::name() const {
  return std::string("bo-") +
         AcquisitionKindToString(options_.acquisition);
}

size_t BayesianOptimizer::NextFullRefitSize() const {
  const size_t by_growth = static_cast<size_t>(
      static_cast<double>(last_full_fit_size_) * options_.full_refit_growth);
  const size_t by_gap =
      last_full_fit_size_ + static_cast<size_t>(options_.full_refit_min_gap);
  return std::max(by_growth, by_gap);
}

void BayesianOptimizer::OnObserve(const Observation& observation) {
  if (!options_.incremental_updates ||
      !surrogate().SupportsIncrementalObserve() ||
      history_.size() < static_cast<size_t>(options_.initial_design)) {
    // Legacy path: mark stale and let Suggest refit per `refit_every`.
    surrogate_stale_ = true;
    return;
  }
  if (fit_is_fantasy_ || last_full_fit_size_ == 0 ||
      history_.size() >= NextFullRefitSize()) {
    // Scheduled full refit: hyperparameter re-selection (and the sparse
    // switch) happen here, at geometrically spaced history sizes, so the
    // amortized per-observation fit cost stays O(n²). Also the recovery
    // path out of a fantasy (batch) fit. Deterministic in the history, so
    // resumed runs refit at the same points.
    Status status = RefitWith({});
    if (!status.ok()) {
      AUTOTUNE_LOG(kWarning) << "scheduled surrogate refit failed: "
                             << status.ToString();
      surrogate_stale_ = true;
      return;
    }
    surrogate_stale_ = false;
    observations_since_fit_ = 0;
    return;
  }
  // Steady state: absorb the one new observation in place.
  obs::Span span("bo.observe_incremental");
  Result<Vector> x = encoder_.Encode(observation.config);
  if (!x.ok()) {
    surrogate_stale_ = true;
    return;
  }
  Result<SurrogateUpdate> update =
      active_surrogate().Observe(std::move(x).value(), observation.objective);
  if (!update.ok()) {
    AUTOTUNE_LOG(kWarning) << "incremental surrogate update failed: "
                           << update.status().ToString();
    surrogate_stale_ = true;
    return;
  }
  if (update.value() == SurrogateUpdate::kRefit) {
    // Numerical drift forced a refactorization inside Observe; surface it
    // in the next DecisionRecord (`surrogate_refit` marker).
    ++refits_since_decision_;
  }
  ++model_observed_through_;
  obs::MetricsRegistry::Global().Increment("bo.surrogate_incremental_updates");
  surrogate_stale_ = false;
  observations_since_fit_ = 0;
}

Status BayesianOptimizer::RefitWith(
    const std::vector<std::pair<Vector, double>>& extra,
    size_t history_count) {
  obs::Span span("bo.fit");
  obs::MetricsRegistry::Global().Increment("bo.surrogate_refits");
  const size_t count = std::min(history_count, history_.size());
  // Monotone sparse switch: once the clean training set crosses the
  // threshold, a GP primary hands off to the bounded-cost FITC fallback.
  if (extra.empty() && !use_sparse_ && options_.sparse_history_threshold > 0 &&
      count >= options_.sparse_history_threshold) {
    const auto* gp = dynamic_cast<const GaussianProcess*>(surrogate_.get());
    if (gp != nullptr) {
      SparseGpOptions sparse_options;
      sparse_options.num_inducing = options_.sparse_num_inducing;
      sparse_ = std::make_unique<SparseGaussianProcess>(gp->kernel().Clone(),
                                                        sparse_options);
      use_sparse_ = true;
      obs::MetricsRegistry::Global().Increment("bo.sparse_switches");
    }
  }
  std::vector<Vector> xs;
  Vector ys;
  xs.reserve(count + extra.size());
  ys.reserve(count + extra.size());
  for (size_t i = 0; i < count; ++i) {
    const Observation& obs = history_[i];
    AUTOTUNE_ASSIGN_OR_RETURN(Vector x, encoder_.Encode(obs.config));
    xs.push_back(std::move(x));
    ys.push_back(obs.objective);
  }
  for (const auto& [x, y] : extra) {
    xs.push_back(x);
    ys.push_back(y);
  }
  if (xs.empty()) return Status::FailedPrecondition("no observations");
  AUTOTUNE_RETURN_IF_ERROR(active_surrogate().Fit(xs, ys));
  ++refits_since_decision_;
  if (extra.empty()) {
    clean_fit_history_size_ = count;
    last_full_fit_size_ = count;
    model_observed_through_ = count;
    fit_is_fantasy_ = false;
  } else {
    fit_is_fantasy_ = true;
  }
  return Status::OK();
}

Result<OptimizerCheckpoint> BayesianOptimizer::SaveCheckpoint() const {
  // A fantasy (batch) fit is not reconstructible from history. It is still
  // checkpointable when the next model read is guaranteed to clean-refit
  // first (SuggestBatch always does; Suggest does iff the stale counter
  // will trip), because then the fitted state is dead weight either way.
  const bool refit_before_use =
      surrogate_stale_ && observations_since_fit_ + 1 >= options_.refit_every;
  if (fit_is_fantasy_ && !refit_before_use) {
    return Status::FailedPrecondition(
        "surrogate holds a live fantasy fit; checkpoint at the next trial "
        "boundary after a clean refit");
  }
  OptimizerCheckpoint checkpoint = SaveBaseCheckpoint();
  checkpoint.fields["halton_index"] =
      static_cast<int64_t>(halton_.index());
  checkpoint.fields["surrogate_stale"] = surrogate_stale_ ? 1 : 0;
  checkpoint.fields["observations_since_fit"] = observations_since_fit_;
  checkpoint.fields["clean_fit_history_size"] =
      static_cast<int64_t>(clean_fit_history_size_);
  checkpoint.fields["last_full_fit_size"] =
      static_cast<int64_t>(last_full_fit_size_);
  checkpoint.fields["model_observed_through"] =
      static_cast<int64_t>(model_observed_through_);
  checkpoint.fields["use_sparse"] = use_sparse_ ? 1 : 0;
  checkpoint.fields["refits_since_decision"] = refits_since_decision_;
  return checkpoint;
}

Status BayesianOptimizer::RestoreCheckpoint(
    const OptimizerCheckpoint& checkpoint,
    const std::vector<Observation>& history) {
  const auto field = [&checkpoint](const char* name) -> Result<int64_t> {
    auto it = checkpoint.fields.find(name);
    if (it == checkpoint.fields.end()) {
      return Status::InvalidArgument(std::string("checkpoint missing '") +
                                     name + "'");
    }
    return it->second;
  };
  AUTOTUNE_ASSIGN_OR_RETURN(const int64_t halton_index,
                            field("halton_index"));
  AUTOTUNE_ASSIGN_OR_RETURN(const int64_t stale, field("surrogate_stale"));
  AUTOTUNE_ASSIGN_OR_RETURN(const int64_t since_fit,
                            field("observations_since_fit"));
  AUTOTUNE_ASSIGN_OR_RETURN(const int64_t clean_fit,
                            field("clean_fit_history_size"));
  if (clean_fit < 0 || static_cast<size_t>(clean_fit) > history.size()) {
    return Status::InvalidArgument(
        "checkpoint clean_fit_history_size out of range");
  }
  // Incremental-path fields; absent in pre-incremental journals, which
  // behave as "model state == the one clean fit".
  const auto optional_field = [&checkpoint](const char* name,
                                            int64_t fallback) -> int64_t {
    auto it = checkpoint.fields.find(name);
    return it == checkpoint.fields.end() ? fallback : it->second;
  };
  const int64_t last_full = optional_field("last_full_fit_size", clean_fit);
  const int64_t observed_through =
      optional_field("model_observed_through", last_full);
  const int64_t sparse_flag = optional_field("use_sparse", 0);
  const int64_t refits_pending = optional_field("refits_since_decision", 0);
  if (last_full < 0 || observed_through < last_full ||
      static_cast<size_t>(observed_through) > history.size()) {
    return Status::InvalidArgument(
        "checkpoint incremental-fit range out of order");
  }
  AUTOTUNE_RETURN_IF_ERROR(RestoreBaseCheckpoint(checkpoint, history));
  halton_.set_index(static_cast<size_t>(halton_index));
  // The model state is a pure function of (history prefix, options): ONE
  // full refit on the prefix the interrupted run last fully fitted, then an
  // incremental Observe replay of the tail it had absorbed, reproduces the
  // live model bit-exactly — resume cost stays bounded by the refit
  // schedule, not the history length.
  fit_is_fantasy_ = false;
  clean_fit_history_size_ = 0;
  last_full_fit_size_ = 0;
  model_observed_through_ = 0;
  use_sparse_ = false;
  sparse_.reset();
  if (sparse_flag != 0) {
    const auto* gp = dynamic_cast<const GaussianProcess*>(surrogate_.get());
    if (gp == nullptr) {
      return Status::InvalidArgument(
          "checkpoint says use_sparse but the primary surrogate is not a GP");
    }
    SparseGpOptions sparse_options;
    sparse_options.num_inducing = options_.sparse_num_inducing;
    sparse_ = std::make_unique<SparseGaussianProcess>(gp->kernel().Clone(),
                                                      sparse_options);
    use_sparse_ = true;
  }
  if (last_full > 0) {
    AUTOTUNE_RETURN_IF_ERROR(RefitWith({}, static_cast<size_t>(last_full)));
    for (size_t i = static_cast<size_t>(last_full);
         i < static_cast<size_t>(observed_through); ++i) {
      AUTOTUNE_ASSIGN_OR_RETURN(Vector x, encoder_.Encode(history[i].config));
      Result<SurrogateUpdate> update =
          active_surrogate().Observe(std::move(x), history[i].objective);
      if (!update.ok()) return update.status();
      ++model_observed_through_;
    }
  }
  surrogate_stale_ = stale != 0;
  observations_since_fit_ = static_cast<int>(since_fit);
  refits_since_decision_ = refits_pending;
  return Status::OK();
}

Result<Configuration> BayesianOptimizer::MaximizeAcquisition(
    const char* phase) {
  AUTOTUNE_CHECK(best_.has_value());
  const double incumbent = best_->objective;

  // Candidate pool: uniform exploration + local perturbations of the best.
  std::vector<Configuration> candidates;
  candidates.reserve(static_cast<size_t>(options_.num_candidates));
  const int local = static_cast<int>(options_.local_fraction *
                                     options_.num_candidates);
  for (int i = 0; i < options_.num_candidates; ++i) {
    Configuration candidate =
        (i < local && !best_->failed)
            ? space_->Neighbor(best_->config, options_.local_scale, &rng_)
            : space_->Sample(&rng_);
    if (!space_->IsFeasible(candidate)) continue;
    candidates.push_back(std::move(candidate));
  }
  if (candidates.empty()) {
    AUTOTUNE_ASSIGN_OR_RETURN(Configuration fallback,
                              space_->SampleFeasible(&rng_));
    DecisionRecord decision;
    decision.phase = "random_fallback";
    decision.candidates = 0;
    decision.chosen = DecisionCandidate{fallback, 0.0, 0.0, 0.0};
    PushDecision(std::move(decision));
    return fallback;
  }

  // Structure-of-arrays scoring: encode the pool into one contiguous
  // feature matrix, predict the whole batch (one triangular solve per
  // batch inside the GP), then score with an allocation-free loop. The
  // per-candidate arithmetic and RNG draw order match the old per-point
  // path exactly, so suggest streams are unchanged.
  const size_t pool = candidates.size();
  candidate_features_.Resize(pool, encoder_.encoded_dim());
  for (size_t i = 0; i < pool; ++i) {
    AUTOTUNE_ASSIGN_OR_RETURN(Vector x, encoder_.Encode(candidates[i]));
    candidate_features_.SetRow(i, x);
  }
  predictions_ = surrogate().PredictBatch(candidate_features_);
  if (options_.acquisition == AcquisitionKind::kThompsonSampling) {
    thompson_draws_.resize(pool);
    for (size_t i = 0; i < pool; ++i) thompson_draws_[i] = rng_.Normal();
  } else {
    thompson_draws_.clear();
  }
  EvaluateAcquisitionBatch(options_.acquisition, options_.acquisition_params,
                           predictions_, incumbent, thompson_draws_,
                           &scores_);
  if (options_.cost_fn) {
    for (size_t i = 0; i < pool; ++i) {
      if (scores_[i] > 0.0) {
        // Cost-adjusted acquisition: improvement per unit cost.
        scores_[i] /= std::max(options_.cost_fn(candidates[i]), 1e-9);
      }
    }
  }
  double best_score = -std::numeric_limits<double>::infinity();
  size_t best_index = 0;
  for (size_t i = 0; i < pool; ++i) {
    if (scores_[i] > best_score) {
      best_score = scores_[i];
      best_index = i;
    }
  }

  // Rank candidates for the explain record: score desc, scan order on ties
  // (so top_k[0] is exactly the chosen argmax).
  std::vector<size_t> order(pool);
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const size_t top_n = std::min(kDecisionTopK, order.size());
  std::partial_sort(order.begin(), order.begin() + top_n, order.end(),
                    [this](size_t a, size_t b) {
                      if (scores_[a] != scores_[b]) {
                        return scores_[a] > scores_[b];
                      }
                      return a < b;
                    });
  DecisionRecord decision;
  decision.phase = phase;
  decision.candidates = static_cast<int64_t>(pool);
  decision.chosen =
      DecisionCandidate{candidates[best_index], scores_[best_index],
                        predictions_.mean[best_index],
                        predictions_.variance[best_index]};
  decision.top_k.reserve(top_n);
  for (size_t rank = 0; rank < top_n; ++rank) {
    const size_t i = order[rank];
    decision.top_k.push_back(DecisionCandidate{candidates[i], scores_[i],
                                               predictions_.mean[i],
                                               predictions_.variance[i]});
  }
  if (refits_since_decision_ > 0) {
    // Audit trail for replay: how many full refits fed this decision.
    decision.details["surrogate_refit"] = refits_since_decision_;
    refits_since_decision_ = 0;
  }
  PushDecision(std::move(decision));
  return candidates[best_index];
}

Result<Configuration> BayesianOptimizer::Suggest() {
  obs::Span span("bo.suggest");
  // Phase 1: space-filling initial design.
  if (history_.size() < static_cast<size_t>(options_.initial_design)) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      Configuration config = space_->FromUnit(halton_.Next());
      if (space_->IsFeasible(config)) {
        DecisionRecord decision;
        decision.phase = "initial_design";
        decision.candidates = attempt + 1;
        decision.chosen = DecisionCandidate{config, 0.0, 0.0, 0.0};
        decision.details["halton_index"] =
            static_cast<int64_t>(halton_.index());
        PushDecision(std::move(decision));
        return config;
      }
    }
    AUTOTUNE_ASSIGN_OR_RETURN(Configuration fallback,
                              space_->SampleFeasible(&rng_));
    DecisionRecord decision;
    decision.phase = "random_fallback";
    decision.candidates = 0;
    decision.chosen = DecisionCandidate{fallback, 0.0, 0.0, 0.0};
    PushDecision(std::move(decision));
    return fallback;
  }
  // Phase 2: model-guided.
  if (surrogate_stale_ &&
      ++observations_since_fit_ >= options_.refit_every) {
    Status status = RefitWith({});
    if (!status.ok()) {
      AUTOTUNE_LOG(kWarning) << "surrogate refit failed: "
                             << status.ToString()
                             << "; falling back to random";
      AUTOTUNE_ASSIGN_OR_RETURN(Configuration fallback,
                                space_->SampleFeasible(&rng_));
      DecisionRecord decision;
      decision.phase = "random_fallback";
      decision.candidates = 0;
      decision.chosen = DecisionCandidate{fallback, 0.0, 0.0, 0.0};
      PushDecision(std::move(decision));
      return fallback;
    }
    surrogate_stale_ = false;
    observations_since_fit_ = 0;
  }
  return MaximizeAcquisition("model");
}

Result<std::vector<Configuration>> BayesianOptimizer::SuggestBatch(size_t k) {
  if (history_.size() < static_cast<size_t>(options_.initial_design)) {
    // Initial design is naturally diverse; no liar needed.
    return Optimizer::SuggestBatch(k);
  }
  std::vector<Configuration> batch;
  std::vector<std::pair<Vector, double>> fantasies;
  const double incumbent_lie = best_.has_value() ? best_->objective : 0.0;
  for (size_t i = 0; i < k; ++i) {
    // The first pick can reuse a model that is already current (clean fit
    // plus incremental updates covering the whole history); later picks
    // must refit to absorb the accumulated fantasies.
    const bool model_current = i == 0 && !fit_is_fantasy_ &&
                               !surrogate_stale_ && last_full_fit_size_ > 0 &&
                               model_observed_through_ == history_.size();
    if (!model_current) {
      AUTOTUNE_RETURN_IF_ERROR(RefitWith(fantasies));
      surrogate_stale_ = true;  // Fantasy fit; force a clean refit later.
    }
    AUTOTUNE_ASSIGN_OR_RETURN(
        Configuration config,
        MaximizeAcquisition(i == 0 ? "model" : "fantasy_batch"));
    AUTOTUNE_ASSIGN_OR_RETURN(Vector x, encoder_.Encode(config));
    const double fantasy =
        options_.batch_strategy ==
                BayesianOptimizerOptions::BatchStrategy::kKrigingBeliever
            ? surrogate().Predict(x).mean  // Believe the model.
            : incumbent_lie;               // Constant liar.
    fantasies.emplace_back(std::move(x), fantasy);
    batch.push_back(std::move(config));
  }
  return batch;
}

std::unique_ptr<BayesianOptimizer> MakeGpBo(const ConfigSpace* space,
                                            uint64_t seed) {
  return std::make_unique<BayesianOptimizer>(
      space, seed, GaussianProcess::MakeDefault(),
      BayesianOptimizerOptions{});
}

std::unique_ptr<BayesianOptimizer> MakeSmac(const ConfigSpace* space,
                                            uint64_t seed) {
  BayesianOptimizerOptions options;
  options.encoding = SpaceEncoder::CategoricalMode::kOneHot;
  RandomForestOptions rf_options;
  rf_options.seed = seed ^ 0x5eed5eedULL;
  return std::make_unique<BayesianOptimizer>(
      space, seed, std::make_unique<RandomForestSurrogate>(rf_options),
      options);
}

}  // namespace autotune
