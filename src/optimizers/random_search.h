#ifndef AUTOTUNE_OPTIMIZERS_RANDOM_SEARCH_H_
#define AUTOTUNE_OPTIMIZERS_RANDOM_SEARCH_H_

#include <string>

#include "core/optimizer.h"
#include "math/quasirandom.h"

namespace autotune {

/// Random search (tutorial slide 30): fixed trial budget, configurations
/// sampled independently — uniformly, or via a Halton low-discrepancy
/// sequence for better space coverage. Respects space constraints by
/// rejection sampling. The standard baseline every model-guided optimizer
/// must beat.
class RandomSearch : public OptimizerBase {
 public:
  enum class Mode { kUniform, kHalton };

  RandomSearch(const ConfigSpace* space, uint64_t seed,
               Mode mode = Mode::kUniform);

  std::string name() const override;

  [[nodiscard]] Result<Configuration> Suggest() override;

  /// Checkpoint/restore for journal compaction: base RNG/history state plus
  /// the Halton sequence position.
  [[nodiscard]] Result<OptimizerCheckpoint> SaveCheckpoint() const override;
  [[nodiscard]] Status RestoreCheckpoint(
      const OptimizerCheckpoint& checkpoint,
      const std::vector<Observation>& history) override;

 private:
  Mode mode_;
  HaltonSequence halton_;
};

}  // namespace autotune

#endif  // AUTOTUNE_OPTIMIZERS_RANDOM_SEARCH_H_
