#include "optimizers/genetic.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace autotune {

GeneticOptimizer::GeneticOptimizer(const ConfigSpace* space, uint64_t seed,
                                   GeneticOptions options)
    : OptimizerBase(space, seed),
      options_(options),
      dim_(space->size()),
      tournament_rng_(seed ^ 0x9e3779b97f4a7c15ULL) {
  AUTOTUNE_CHECK(options_.population >= 4);
  AUTOTUNE_CHECK(options_.elite >= 0 &&
                 options_.elite < options_.population);
  AUTOTUNE_CHECK(options_.tournament_size >= 1);
  const size_t n = static_cast<size_t>(options_.population);
  genomes_.resize(n);
  fitness_.assign(n, std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < n; ++i) {
    genomes_[i].resize(dim_);
    for (auto& g : genomes_[i]) g = rng_.Uniform();
    unsuggested_.push_back(i);
  }
}

Result<Configuration> GeneticOptimizer::Suggest() {
  if (unsuggested_.empty()) {
    if (!awaiting_result_.empty()) {
      return space_->FromUnit(genomes_[awaiting_result_.front()]);
    }
    return Status::Internal("GA generation bookkeeping exhausted");
  }
  const size_t index = unsuggested_.front();
  unsuggested_.pop_front();
  awaiting_result_.push_back(index);
  return space_->FromUnit(genomes_[index]);
}

void GeneticOptimizer::OnObserve(const Observation& observation) {
  if (awaiting_result_.empty()) return;
  const size_t index = awaiting_result_.front();
  awaiting_result_.pop_front();
  fitness_[index] = observation.objective;
  ++observed_in_generation_;
  if (observed_in_generation_ == static_cast<size_t>(options_.population)) {
    NextGeneration();
    ++generation_;
    observed_in_generation_ = 0;
  }
}

size_t GeneticOptimizer::TournamentPick() const {
  size_t best = static_cast<size_t>(
      tournament_rng_.UniformInt(0, options_.population - 1));
  for (int t = 1; t < options_.tournament_size; ++t) {
    const size_t challenger = static_cast<size_t>(
        tournament_rng_.UniformInt(0, options_.population - 1));
    if (fitness_[challenger] < fitness_[best]) best = challenger;
  }
  return best;
}

void GeneticOptimizer::NextGeneration() {
  const size_t n = static_cast<size_t>(options_.population);
  // Rank current genomes (ascending objective).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return fitness_[a] < fitness_[b];
  });

  std::vector<Vector> next;
  next.reserve(n);
  for (int e = 0; e < options_.elite; ++e) {
    next.push_back(genomes_[order[static_cast<size_t>(e)]]);
  }
  while (next.size() < n) {
    const Vector& parent_a = genomes_[TournamentPick()];
    const Vector& parent_b = genomes_[TournamentPick()];
    Vector child(dim_);
    if (rng_.Bernoulli(options_.crossover_rate)) {
      for (size_t d = 0; d < dim_; ++d) {
        child[d] = rng_.Bernoulli(0.5) ? parent_a[d] : parent_b[d];
      }
    } else {
      child = parent_a;
    }
    for (size_t d = 0; d < dim_; ++d) {
      if (rng_.Bernoulli(options_.mutation_rate)) {
        child[d] = std::clamp(
            child[d] + rng_.Normal(0.0, options_.mutation_scale), 0.0, 1.0);
      }
    }
    next.push_back(std::move(child));
  }
  genomes_ = std::move(next);
  fitness_.assign(n, std::numeric_limits<double>::infinity());
  unsuggested_.clear();
  awaiting_result_.clear();
  for (size_t i = 0; i < n; ++i) unsuggested_.push_back(i);
}

}  // namespace autotune
