#ifndef AUTOTUNE_OPTIMIZERS_SIMULATED_ANNEALING_H_
#define AUTOTUNE_OPTIMIZERS_SIMULATED_ANNEALING_H_

#include <optional>
#include <string>

#include "core/optimizer.h"

namespace autotune {

/// Options for `SimulatedAnnealing`.
struct SimulatedAnnealingOptions {
  double initial_temperature = 1.0;
  /// Temperature multiplier per accepted/observed step (geometric cooling).
  double cooling_rate = 0.95;
  /// Stddev of the unit-space perturbation proposing a neighbor.
  double neighbor_scale = 0.15;
  /// Random restarts: probability of jumping to a fresh uniform sample when
  /// temperature has cooled below `restart_temperature`.
  double restart_temperature = 1e-3;
};

/// Simulated annealing (tutorial slide 7 lists it under "search based"):
/// hill climbing over `ConfigSpace::Neighbor` moves with a Metropolis
/// acceptance rule, so early high-temperature steps can escape local optima
/// of the response surface.
class SimulatedAnnealing : public OptimizerBase {
 public:
  SimulatedAnnealing(const ConfigSpace* space, uint64_t seed,
                     SimulatedAnnealingOptions options = {});

  std::string name() const override { return "anneal"; }

  [[nodiscard]] Result<Configuration> Suggest() override;

  double temperature() const { return temperature_; }

 protected:
  void OnObserve(const Observation& observation) override;

 private:
  SimulatedAnnealingOptions options_;
  double temperature_;
  std::optional<Configuration> current_;
  double current_objective_ = 0.0;
  std::optional<Configuration> pending_;
};

}  // namespace autotune

#endif  // AUTOTUNE_OPTIMIZERS_SIMULATED_ANNEALING_H_
