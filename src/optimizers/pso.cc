#include "optimizers/pso.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace autotune {

ParticleSwarmOptimizer::ParticleSwarmOptimizer(const ConfigSpace* space,
                                               uint64_t seed,
                                               PsoOptions options)
    : OptimizerBase(space, seed),
      options_(options),
      dim_(space->size()),
      global_best_objective_(std::numeric_limits<double>::infinity()) {
  AUTOTUNE_CHECK(options_.num_particles >= 2);
  const size_t n = static_cast<size_t>(options_.num_particles);
  positions_.resize(n);
  velocities_.resize(n);
  personal_best_.resize(n);
  personal_best_objective_.assign(n,
                                  std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < n; ++i) {
    positions_[i].resize(dim_);
    velocities_[i].resize(dim_);
    for (size_t d = 0; d < dim_; ++d) {
      positions_[i][d] = rng_.Uniform();
      velocities_[i][d] =
          rng_.Uniform(-options_.max_velocity, options_.max_velocity);
    }
    personal_best_[i] = positions_[i];
  }
  global_best_ = positions_[0];
}

Result<Configuration> ParticleSwarmOptimizer::Suggest() {
  const size_t index = next_particle_;
  next_particle_ = (next_particle_ + 1) %
                   static_cast<size_t>(options_.num_particles);
  if (initialized_) AdvanceParticle(index);
  awaiting_result_.push_back(index);
  if (next_particle_ == 0) initialized_ = true;
  return space_->FromUnit(positions_[index]);
}

void ParticleSwarmOptimizer::OnObserve(const Observation& observation) {
  if (awaiting_result_.empty()) return;  // External observation.
  const size_t index = awaiting_result_.front();
  awaiting_result_.pop_front();
  const double objective = observation.objective;
  if (objective < personal_best_objective_[index]) {
    personal_best_objective_[index] = objective;
    personal_best_[index] = positions_[index];
  }
  if (objective < global_best_objective_) {
    global_best_objective_ = objective;
    global_best_ = positions_[index];
  }
}

void ParticleSwarmOptimizer::AdvanceParticle(size_t index) {
  for (size_t d = 0; d < dim_; ++d) {
    const double r1 = rng_.Uniform();
    const double r2 = rng_.Uniform();
    double v = options_.inertia * velocities_[index][d] +
               options_.cognitive * r1 *
                   (personal_best_[index][d] - positions_[index][d]) +
               options_.social * r2 *
                   (global_best_[d] - positions_[index][d]);
    v = std::clamp(v, -options_.max_velocity, options_.max_velocity);
    velocities_[index][d] = v;
    double x = positions_[index][d] + v;
    // Reflective boundary handling keeps particles in the cube.
    if (x < 0.0) {
      x = -x;
      velocities_[index][d] = -velocities_[index][d];
    } else if (x > 1.0) {
      x = 2.0 - x;
      velocities_[index][d] = -velocities_[index][d];
    }
    positions_[index][d] = std::clamp(x, 0.0, 1.0);
  }
}

}  // namespace autotune
