#include "optimizers/constrained_bo.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "math/distributions.h"

namespace autotune {

ConstrainedBoOptimizer::ConstrainedBoOptimizer(const ConfigSpace* space,
                                               uint64_t seed,
                                               size_t num_constraints,
                                               ConstrainedBoOptions options)
    : OptimizerBase(space, seed),
      options_(options),
      encoder_(space, SpaceEncoder::CategoricalMode::kOrdinal),
      halton_(space->size()),
      constraint_values_(num_constraints) {
  AUTOTUNE_CHECK(num_constraints >= 1);
  AUTOTUNE_CHECK(options_.initial_design >= 2);
}

Status ConstrainedBoOptimizer::ObserveWithConstraints(
    const Observation& observation, const Vector& constraints) {
  if (constraints.size() != constraint_values_.size()) {
    return Status::InvalidArgument(
        "expected " + std::to_string(constraint_values_.size()) +
        " constraint values, got " + std::to_string(constraints.size()));
  }
  AUTOTUNE_ASSIGN_OR_RETURN(Vector x, encoder_.Encode(observation.config));
  AUTOTUNE_RETURN_IF_ERROR(Observe(observation));
  encoded_.push_back(std::move(x));
  for (size_t c = 0; c < constraints.size(); ++c) {
    constraint_values_[c].push_back(constraints[c]);
  }
  bool feasible = !observation.failed;
  for (double value : constraints) {
    if (value > 0.0) feasible = false;
  }
  if (feasible && (!best_feasible_.has_value() ||
                   observation.objective < best_feasible_->objective)) {
    best_feasible_ = observation;
  }
  return Status::OK();
}

Result<Configuration> ConstrainedBoOptimizer::Suggest() {
  if (encoded_.size() < static_cast<size_t>(options_.initial_design)) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      Configuration config = space_->FromUnit(halton_.Next());
      if (space_->IsFeasible(config)) return config;
    }
    return space_->SampleFeasible(&rng_);
  }

  // Fit the objective surrogate on FEASIBLE points only (infeasible
  // objectives can be arbitrary), and one surrogate per constraint on all
  // points.
  std::vector<Vector> feasible_x;
  Vector feasible_y;
  for (size_t i = 0; i < encoded_.size(); ++i) {
    bool feasible = !history_[i].failed;
    for (size_t c = 0; c < constraint_values_.size(); ++c) {
      if (constraint_values_[c][i] > 0.0) feasible = false;
    }
    if (feasible) {
      feasible_x.push_back(encoded_[i]);
      feasible_y.push_back(history_[i].objective);
    }
  }

  auto objective_gp = GaussianProcess::MakeDefault();
  const bool have_objective_model = feasible_x.size() >= 3;
  if (have_objective_model) {
    AUTOTUNE_RETURN_IF_ERROR(objective_gp->Fit(feasible_x, feasible_y));
  }

  std::vector<std::unique_ptr<GaussianProcess>> constraint_gps;
  for (const Vector& values : constraint_values_) {
    auto gp = GaussianProcess::MakeDefault();
    AUTOTUNE_RETURN_IF_ERROR(gp->Fit(encoded_, values));
    constraint_gps.push_back(std::move(gp));
  }

  const double incumbent = best_feasible_.has_value()
                               ? best_feasible_->objective
                               : std::numeric_limits<double>::infinity();

  double best_score = -std::numeric_limits<double>::infinity();
  std::optional<Configuration> best_candidate;
  for (int i = 0; i < options_.num_candidates; ++i) {
    Configuration candidate = space_->Sample(&rng_);
    if (!space_->IsFeasible(candidate)) continue;
    AUTOTUNE_ASSIGN_OR_RETURN(Vector x, encoder_.Encode(candidate));
    // P(all constraints satisfied).
    double p_feasible = 1.0;
    for (const auto& gp : constraint_gps) {
      const Prediction p = gp->Predict(x);
      const double stddev = std::max(p.stddev(), 1e-9);
      p_feasible *= NormalCdf((0.0 - p.mean) / stddev);
    }
    double score;
    if (!have_objective_model || !std::isfinite(incumbent)) {
      // No feasible incumbent yet: pure feasibility search.
      score = p_feasible;
    } else {
      const Prediction p = objective_gp->Predict(x);
      const double ei =
          EvaluateAcquisition(AcquisitionKind::kExpectedImprovement,
                              options_.acquisition_params, p, incumbent);
      score = ei * p_feasible;
    }
    if (score > best_score) {
      best_score = score;
      best_candidate = std::move(candidate);
    }
  }
  if (!best_candidate.has_value()) return space_->SampleFeasible(&rng_);
  return *best_candidate;
}

}  // namespace autotune
