#include "optimizers/constrained_bo.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "math/distributions.h"

namespace autotune {

ConstrainedBoOptimizer::ConstrainedBoOptimizer(const ConfigSpace* space,
                                               uint64_t seed,
                                               size_t num_constraints,
                                               ConstrainedBoOptions options)
    : OptimizerBase(space, seed),
      options_(options),
      encoder_(space, SpaceEncoder::CategoricalMode::kOrdinal),
      halton_(space->size()),
      constraint_values_(num_constraints) {
  AUTOTUNE_CHECK(num_constraints >= 1);
  AUTOTUNE_CHECK(options_.initial_design >= 2);
}

Status ConstrainedBoOptimizer::ObserveWithConstraints(
    const Observation& observation, const Vector& constraints) {
  if (constraints.size() != constraint_values_.size()) {
    return Status::InvalidArgument(
        "expected " + std::to_string(constraint_values_.size()) +
        " constraint values, got " + std::to_string(constraints.size()));
  }
  AUTOTUNE_ASSIGN_OR_RETURN(Vector x, encoder_.Encode(observation.config));
  AUTOTUNE_RETURN_IF_ERROR(Observe(observation));
  encoded_.push_back(x);
  for (size_t c = 0; c < constraints.size(); ++c) {
    constraint_values_[c].push_back(constraints[c]);
  }
  // Keep the persistent constraint models current: incremental rank-1
  // absorb, full refit (hyperparameter re-selection) on a geometric
  // schedule. On any numerical failure the models are dropped and rebuilt
  // lazily at the next Suggest.
  if (constraint_fit_size_ > 0) {
    const size_t next_full =
        std::max(static_cast<size_t>(
                     static_cast<double>(constraint_fit_size_) * 1.5),
                 constraint_fit_size_ + 8);
    if (encoded_.size() >= next_full) {
      Status refit = RefitConstraintGps();
      if (!refit.ok()) {
        constraint_gps_.clear();
        constraint_fit_size_ = 0;
      }
    } else {
      for (size_t c = 0; c < constraint_gps_.size(); ++c) {
        if (!constraint_gps_[c]->Observe(x, constraints[c]).ok()) {
          constraint_gps_.clear();
          constraint_fit_size_ = 0;
          break;
        }
      }
    }
  }
  bool feasible = !observation.failed;
  for (double value : constraints) {
    if (value > 0.0) feasible = false;
  }
  if (feasible && (!best_feasible_.has_value() ||
                   observation.objective < best_feasible_->objective)) {
    best_feasible_ = observation;
  }
  return Status::OK();
}

Status ConstrainedBoOptimizer::RefitConstraintGps() {
  if (constraint_gps_.size() != constraint_values_.size()) {
    constraint_gps_.clear();
    for (size_t c = 0; c < constraint_values_.size(); ++c) {
      constraint_gps_.push_back(GaussianProcess::MakeDefault());
    }
  }
  for (size_t c = 0; c < constraint_values_.size(); ++c) {
    AUTOTUNE_RETURN_IF_ERROR(
        constraint_gps_[c]->Fit(encoded_, constraint_values_[c]));
  }
  constraint_fit_size_ = encoded_.size();
  return Status::OK();
}

Result<Configuration> ConstrainedBoOptimizer::Suggest() {
  if (encoded_.size() < static_cast<size_t>(options_.initial_design)) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      Configuration config = space_->FromUnit(halton_.Next());
      if (space_->IsFeasible(config)) return config;
    }
    return space_->SampleFeasible(&rng_);
  }

  // Fit the objective surrogate on FEASIBLE points only (infeasible
  // objectives can be arbitrary), and one surrogate per constraint on all
  // points.
  std::vector<Vector> feasible_x;
  Vector feasible_y;
  for (size_t i = 0; i < encoded_.size(); ++i) {
    bool feasible = !history_[i].failed;
    for (size_t c = 0; c < constraint_values_.size(); ++c) {
      if (constraint_values_[c][i] > 0.0) feasible = false;
    }
    if (feasible) {
      feasible_x.push_back(encoded_[i]);
      feasible_y.push_back(history_[i].objective);
    }
  }

  // The objective surrogate is fitted per call with `Fit`, NOT kept
  // incremental: its training set is the feasible subset, which changes
  // non-monotonically (a point can only be classified once its constraint
  // values arrive), so there is no append-only stream to Observe.
  auto objective_gp = GaussianProcess::MakeDefault();
  const bool have_objective_model = feasible_x.size() >= 3;
  if (have_objective_model) {
    AUTOTUNE_RETURN_IF_ERROR(objective_gp->Fit(feasible_x, feasible_y));
  }

  // Constraint histories ARE append-only, so those GPs persist across
  // calls and were updated incrementally in ObserveWithConstraints.
  if (constraint_fit_size_ == 0) {
    AUTOTUNE_RETURN_IF_ERROR(RefitConstraintGps());
  }

  const double incumbent = best_feasible_.has_value()
                               ? best_feasible_->objective
                               : std::numeric_limits<double>::infinity();

  std::vector<Configuration> candidates;
  candidates.reserve(static_cast<size_t>(options_.num_candidates));
  for (int i = 0; i < options_.num_candidates; ++i) {
    Configuration candidate = space_->Sample(&rng_);
    if (!space_->IsFeasible(candidate)) continue;
    candidates.push_back(std::move(candidate));
  }
  if (candidates.empty()) return space_->SampleFeasible(&rng_);

  // Batched posteriors: one PredictBatch per model instead of a Predict
  // per (candidate, model) pair.
  Matrix features(candidates.size(), encoder_.encoded_dim());
  for (size_t i = 0; i < candidates.size(); ++i) {
    AUTOTUNE_ASSIGN_OR_RETURN(Vector x, encoder_.Encode(candidates[i]));
    features.SetRow(i, x);
  }
  std::vector<PredictionBatch> constraint_predictions;
  constraint_predictions.reserve(constraint_gps_.size());
  for (const auto& gp : constraint_gps_) {
    constraint_predictions.push_back(gp->PredictBatch(features));
  }
  PredictionBatch objective_predictions;
  if (have_objective_model && std::isfinite(incumbent)) {
    objective_predictions = objective_gp->PredictBatch(features);
  }

  double best_score = -std::numeric_limits<double>::infinity();
  std::optional<size_t> best_candidate;
  for (size_t i = 0; i < candidates.size(); ++i) {
    // P(all constraints satisfied).
    double p_feasible = 1.0;
    for (const PredictionBatch& batch : constraint_predictions) {
      const Prediction p = batch.At(i);
      const double stddev = std::max(p.stddev(), 1e-9);
      p_feasible *= NormalCdf((0.0 - p.mean) / stddev);
    }
    double score;
    if (!have_objective_model || !std::isfinite(incumbent)) {
      // No feasible incumbent yet: pure feasibility search.
      score = p_feasible;
    } else {
      const double ei = EvaluateAcquisition(
          AcquisitionKind::kExpectedImprovement, options_.acquisition_params,
          objective_predictions.At(i), incumbent);
      score = ei * p_feasible;
    }
    if (score > best_score) {
      best_score = score;
      best_candidate = i;
    }
  }
  if (!best_candidate.has_value()) return space_->SampleFeasible(&rng_);
  return candidates[*best_candidate];
}

}  // namespace autotune
