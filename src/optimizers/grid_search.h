#ifndef AUTOTUNE_OPTIMIZERS_GRID_SEARCH_H_
#define AUTOTUNE_OPTIMIZERS_GRID_SEARCH_H_

#include <string>
#include <vector>

#include "core/optimizer.h"

namespace autotune {

/// Grid search (tutorial slide 29): a fixed trial budget spread at even
/// intervals over the space; try every combination, keep the best. Exhausts
/// after the full grid has been suggested (Suggest then returns
/// Unavailable), which ends the tuning loop.
class GridSearch : public OptimizerBase {
 public:
  /// `points_per_numeric` levels per numeric parameter; categoricals/bools
  /// enumerate every level. The grid is capped at `max_points`.
  GridSearch(const ConfigSpace* space, size_t points_per_numeric,
             size_t max_points = 100000);

  std::string name() const override { return "grid"; }

  [[nodiscard]] Result<Configuration> Suggest() override;

  /// Total number of grid points.
  size_t grid_size() const { return grid_.size(); }

  /// Checkpoint/restore for journal compaction: base state plus the grid
  /// cursor. The grid itself is rebuilt deterministically by the ctor.
  [[nodiscard]] Result<OptimizerCheckpoint> SaveCheckpoint() const override;
  [[nodiscard]] Status RestoreCheckpoint(
      const OptimizerCheckpoint& checkpoint,
      const std::vector<Observation>& history) override;

 private:
  std::vector<Configuration> grid_;
  size_t next_ = 0;
};

}  // namespace autotune

#endif  // AUTOTUNE_OPTIMIZERS_GRID_SEARCH_H_
