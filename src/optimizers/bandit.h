#ifndef AUTOTUNE_OPTIMIZERS_BANDIT_H_
#define AUTOTUNE_OPTIMIZERS_BANDIT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/optimizer.h"

namespace autotune {

/// Arm-selection policy.
enum class BanditPolicy {
  kEpsilonGreedy,
  kUcb1,
  kThompson,  ///< Gaussian Thompson sampling on the arm-mean posterior.
};

/// Options for `BanditOptimizer`.
struct BanditOptions {
  BanditPolicy policy = BanditPolicy::kUcb1;
  double epsilon = 0.1;   ///< For kEpsilonGreedy.
  double ucb_c = 2.0;     ///< Exploration constant for kUcb1.
};

/// Multi-armed bandit over a FINITE set of configurations (tutorial slide
/// 51: bandits are the natural treatment for discrete/hybrid spaces, and
/// slide 81's OPPerTune uses hybrid bandits online). Each distinct
/// configuration is an arm; rewards are negated objectives.
class BanditOptimizer : public OptimizerBase {
 public:
  /// `arms` must be non-empty configurations of `space`.
  BanditOptimizer(const ConfigSpace* space, uint64_t seed,
                  std::vector<Configuration> arms,
                  BanditOptions options = {});

  /// Builds the arm set from the space's grid (categoricals fully
  /// enumerated, `points_per_numeric` levels per numeric knob).
  static std::unique_ptr<BanditOptimizer> FromGrid(
      const ConfigSpace* space, uint64_t seed, size_t points_per_numeric,
      BanditOptions options = {});

  std::string name() const override;

  [[nodiscard]] Result<Configuration> Suggest() override;

  size_t num_arms() const { return arms_.size(); }

  /// Times each arm was played (diagnostic).
  const std::vector<int>& play_counts() const { return plays_; }

  /// Index of the arm with the best (lowest) mean objective so far.
  size_t BestArm() const;

  /// The configuration of arm `index` (CHECKed).
  const Configuration& arm(size_t index) const;

  /// The arm a bandit recommends after tuning: the one with the best MEAN
  /// objective. Under noise this is far more robust than the luckiest
  /// single observation.
  const Configuration& Recommend() const { return arm(BestArm()); }

 protected:
  void OnObserve(const Observation& observation) override;

 private:
  BanditOptions options_;
  std::vector<Configuration> arms_;
  std::map<std::string, size_t> arm_index_;  // Keyed by config ToString.
  std::vector<int> plays_;
  Vector mean_objective_;
  Vector m2_;  // Welford sum of squared deviations per arm.
  int total_plays_ = 0;
};

}  // namespace autotune

#endif  // AUTOTUNE_OPTIMIZERS_BANDIT_H_
