#include "optimizers/simulated_annealing.h"

#include <cmath>

namespace autotune {

SimulatedAnnealing::SimulatedAnnealing(const ConfigSpace* space,
                                       uint64_t seed,
                                       SimulatedAnnealingOptions options)
    : OptimizerBase(space, seed),
      options_(options),
      temperature_(options.initial_temperature) {}

Result<Configuration> SimulatedAnnealing::Suggest() {
  Configuration proposal =
      !current_.has_value()
          ? space_->Sample(&rng_)
          : (temperature_ < options_.restart_temperature &&
                     rng_.Bernoulli(0.1)
                 ? space_->Sample(&rng_)
                 : space_->Neighbor(*current_, options_.neighbor_scale,
                                    &rng_));
  // Respect constraints; fall back to feasible uniform sampling.
  if (!space_->IsFeasible(proposal)) {
    AUTOTUNE_ASSIGN_OR_RETURN(proposal, space_->SampleFeasible(&rng_));
  }
  pending_ = proposal;
  return proposal;
}

void SimulatedAnnealing::OnObserve(const Observation& observation) {
  // Only walk from configurations we proposed (external observations still
  // enter history/best via the base class).
  const bool is_pending =
      pending_.has_value() && observation.config == *pending_;
  if (is_pending) pending_.reset();

  if (!current_.has_value()) {
    current_ = observation.config;
    current_objective_ = observation.objective;
    return;
  }
  if (!is_pending) return;

  const double delta = observation.objective - current_objective_;
  bool accept = delta <= 0.0;
  if (!accept && !observation.failed && temperature_ > 0.0) {
    // Metropolis: accept worse moves with probability exp(-delta / T),
    // where delta is normalized by the scale of objectives seen so far.
    const double scale =
        std::max(1e-12, std::abs(current_objective_) * 0.1 + 1e-9);
    accept = rng_.Bernoulli(std::exp(-delta / (scale * temperature_)));
  }
  if (accept && !observation.failed) {
    current_ = observation.config;
    current_objective_ = observation.objective;
  }
  temperature_ *= options_.cooling_rate;
}

}  // namespace autotune
