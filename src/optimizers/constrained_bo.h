#ifndef AUTOTUNE_OPTIMIZERS_CONSTRAINED_BO_H_
#define AUTOTUNE_OPTIMIZERS_CONSTRAINED_BO_H_

#include <memory>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "math/quasirandom.h"
#include "optimizers/acquisition.h"
#include "space/encoding.h"
#include "surrogate/gaussian_process.h"

namespace autotune {

/// Options for `ConstrainedBoOptimizer`.
struct ConstrainedBoOptions {
  int initial_design = 10;
  int num_candidates = 512;
  AcquisitionParams acquisition_params;
};

/// Bayesian optimization with BLACK-BOX constraints (tutorial slide 60,
/// SCBO: "constraints can involve multiple tunables and/or be black-box").
/// Unlike `ConfigSpace::AddConstraint` (checked before running a trial),
/// black-box constraints are only observed by RUNNING the trial — e.g.
/// "replication lag must stay under 1 s" or "memory headroom >= 10%".
///
/// Each constraint gets its own GP surrogate over the observed constraint
/// values; candidates are scored by expected improvement weighted by the
/// probability that every constraint is satisfied (EI x prod_i P(c_i <= 0)).
/// Constraint convention: a trial is FEASIBLE iff every reported constraint
/// value is <= 0.
class ConstrainedBoOptimizer : public OptimizerBase {
 public:
  ConstrainedBoOptimizer(const ConfigSpace* space, uint64_t seed,
                         size_t num_constraints,
                         ConstrainedBoOptions options = ConstrainedBoOptions());

  std::string name() const override { return "cbo"; }

  [[nodiscard]] Result<Configuration> Suggest() override;

  /// Records a trial with its objective AND measured constraint values
  /// (`constraints.size()` must equal `num_constraints`). Prefer this over
  /// plain `Observe`, which assumes the trial was feasible.
  [[nodiscard]] Status ObserveWithConstraints(const Observation& observation,
                                const Vector& constraints);

  /// Best FEASIBLE observation so far (objective among trials whose every
  /// constraint value was <= 0).
  const std::optional<Observation>& best_feasible() const {
    return best_feasible_;
  }

  size_t num_constraints() const { return constraint_values_.size(); }

 private:
  /// (Re)builds the per-constraint GPs from scratch on all observations.
  [[nodiscard]] Status RefitConstraintGps();

  ConstrainedBoOptions options_;
  SpaceEncoder encoder_;
  HaltonSequence halton_;
  // Parallel to history_: encoded features and per-constraint values.
  std::vector<Vector> encoded_;
  std::vector<Vector> constraint_values_;  // [constraint][observation].
  std::optional<Observation> best_feasible_;

  /// Persistent per-constraint GPs: constraint histories are append-only,
  /// so these absorb observations incrementally and fully refit only on a
  /// geometric schedule. (The OBJECTIVE surrogate cannot be persistent: it
  /// is fitted on the feasible subset, which changes non-monotonically as
  /// constraint outcomes arrive, so `Suggest` still uses `Fit` for it.)
  std::vector<std::unique_ptr<GaussianProcess>> constraint_gps_;
  /// History size at the last full constraint-GP fit; 0 = never fitted.
  size_t constraint_fit_size_ = 0;
};

}  // namespace autotune

#endif  // AUTOTUNE_OPTIMIZERS_CONSTRAINED_BO_H_
