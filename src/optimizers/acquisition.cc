#include "optimizers/acquisition.h"

#include <algorithm>
#include <cmath>

#include "math/distributions.h"

namespace autotune {

const char* AcquisitionKindToString(AcquisitionKind kind) {
  switch (kind) {
    case AcquisitionKind::kProbabilityOfImprovement:
      return "pi";
    case AcquisitionKind::kExpectedImprovement:
      return "ei";
    case AcquisitionKind::kLowerConfidenceBound:
      return "lcb";
    case AcquisitionKind::kThompsonSampling:
      return "ts";
  }
  return "?";
}

double EvaluateAcquisition(AcquisitionKind kind,
                           const AcquisitionParams& params,
                           const Prediction& prediction,
                           double best_objective, double thompson_draw) {
  const double mean = prediction.mean;
  const double stddev = std::max(prediction.stddev(), 1e-12);
  // Improvement means going BELOW the incumbent (minimization).
  const double target = best_objective - params.xi;
  const double z = (target - mean) / stddev;
  switch (kind) {
    case AcquisitionKind::kProbabilityOfImprovement:
      return NormalCdf(z);
    case AcquisitionKind::kExpectedImprovement:
      // E[max(target - f(x), 0)] = s * (z Phi(z) + phi(z)).
      return stddev * (z * NormalCdf(z) + NormalPdf(z));
    case AcquisitionKind::kLowerConfidenceBound:
      return -(mean - params.beta * stddev);
    case AcquisitionKind::kThompsonSampling:
      return -(mean + stddev * thompson_draw);
  }
  return 0.0;
}

}  // namespace autotune
