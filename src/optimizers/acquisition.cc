#include "optimizers/acquisition.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "math/distributions.h"

namespace autotune {

const char* AcquisitionKindToString(AcquisitionKind kind) {
  switch (kind) {
    case AcquisitionKind::kProbabilityOfImprovement:
      return "pi";
    case AcquisitionKind::kExpectedImprovement:
      return "ei";
    case AcquisitionKind::kLowerConfidenceBound:
      return "lcb";
    case AcquisitionKind::kThompsonSampling:
      return "ts";
  }
  return "?";
}

namespace {

// Scalar scoring core shared by the per-point adapter and the batch loop so
// the two paths are bit-identical by construction.
inline double ScoreOne(AcquisitionKind kind, const AcquisitionParams& params,
                       double mean, double variance, double best_objective,
                       double thompson_draw) {
  const double stddev =
      std::max(std::sqrt(std::max(variance, 0.0)), 1e-12);
  // Improvement means going BELOW the incumbent (minimization).
  const double target = best_objective - params.xi;
  const double z = (target - mean) / stddev;
  switch (kind) {
    case AcquisitionKind::kProbabilityOfImprovement:
      return NormalCdf(z);
    case AcquisitionKind::kExpectedImprovement:
      // E[max(target - f(x), 0)] = s * (z Phi(z) + phi(z)).
      return stddev * (z * NormalCdf(z) + NormalPdf(z));
    case AcquisitionKind::kLowerConfidenceBound:
      return -(mean - params.beta * stddev);
    case AcquisitionKind::kThompsonSampling:
      return -(mean + stddev * thompson_draw);
  }
  return 0.0;
}

}  // namespace

double EvaluateAcquisition(AcquisitionKind kind,
                           const AcquisitionParams& params,
                           const Prediction& prediction,
                           double best_objective, double thompson_draw) {
  return ScoreOne(kind, params, prediction.mean, prediction.variance,
                  best_objective, thompson_draw);
}

void EvaluateAcquisitionBatch(AcquisitionKind kind,
                              const AcquisitionParams& params,
                              const PredictionBatch& predictions,
                              double best_objective,
                              const Vector& thompson_draws, Vector* scores) {
  const size_t n = predictions.size();
  if (!thompson_draws.empty()) {
    AUTOTUNE_CHECK(thompson_draws.size() == n);
  }
  scores->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double draw = thompson_draws.empty() ? 0.0 : thompson_draws[i];
    (*scores)[i] = ScoreOne(kind, params, predictions.mean[i],
                            predictions.variance[i], best_objective, draw);
  }
}

}  // namespace autotune
