#include "optimizers/grid_search.h"

namespace autotune {

GridSearch::GridSearch(const ConfigSpace* space, size_t points_per_numeric,
                       size_t max_points)
    : OptimizerBase(space, /*seed=*/0),
      grid_(space->Grid(points_per_numeric, max_points)) {}

Result<Configuration> GridSearch::Suggest() {
  if (next_ >= grid_.size()) {
    return Status::Unavailable("grid exhausted after " +
                               std::to_string(grid_.size()) + " points");
  }
  return grid_[next_++];
}

}  // namespace autotune
