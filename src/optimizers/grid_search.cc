#include "optimizers/grid_search.h"

namespace autotune {

GridSearch::GridSearch(const ConfigSpace* space, size_t points_per_numeric,
                       size_t max_points)
    : OptimizerBase(space, /*seed=*/0),
      grid_(space->Grid(points_per_numeric, max_points)) {}

Result<OptimizerCheckpoint> GridSearch::SaveCheckpoint() const {
  OptimizerCheckpoint checkpoint = SaveBaseCheckpoint();
  checkpoint.fields["next"] = static_cast<int64_t>(next_);
  return checkpoint;
}

Status GridSearch::RestoreCheckpoint(
    const OptimizerCheckpoint& checkpoint,
    const std::vector<Observation>& history) {
  auto it = checkpoint.fields.find("next");
  if (it == checkpoint.fields.end() || it->second < 0 ||
      static_cast<size_t>(it->second) > grid_.size()) {
    return Status::InvalidArgument("checkpoint 'next' missing or out of range");
  }
  AUTOTUNE_RETURN_IF_ERROR(RestoreBaseCheckpoint(checkpoint, history));
  next_ = static_cast<size_t>(it->second);
  return Status::OK();
}

Result<Configuration> GridSearch::Suggest() {
  if (next_ >= grid_.size()) {
    return Status::Unavailable("grid exhausted after " +
                               std::to_string(grid_.size()) + " points");
  }
  const size_t index = next_++;
  DecisionRecord decision;
  decision.phase = "grid";
  decision.candidates = static_cast<int64_t>(grid_.size());
  decision.chosen = DecisionCandidate{grid_[index], 0.0, 0.0, 0.0};
  decision.details["grid_index"] = static_cast<int64_t>(index);
  PushDecision(std::move(decision));
  return grid_[index];
}

}  // namespace autotune
