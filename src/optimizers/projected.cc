#include "optimizers/projected.h"

#include "common/check.h"

namespace autotune {

ProjectedOptimizer::ProjectedOptimizer(
    std::unique_ptr<ProjectedSpace> adapter, std::unique_ptr<Optimizer> inner)
    : adapter_(std::move(adapter)), inner_(std::move(inner)) {
  AUTOTUNE_CHECK(adapter_ != nullptr);
  AUTOTUNE_CHECK(inner_ != nullptr);
  AUTOTUNE_CHECK_MSG(&inner_->space() == &adapter_->low_space(),
                     "inner optimizer must search the adapter's low space");
}

std::string ProjectedOptimizer::name() const {
  return "llamatune-" + inner_->name();
}

Result<Configuration> ProjectedOptimizer::Suggest() {
  AUTOTUNE_ASSIGN_OR_RETURN(Configuration low, inner_->Suggest());
  AUTOTUNE_ASSIGN_OR_RETURN(Configuration lifted, adapter_->Lift(low));
  pending_.emplace_back(std::move(low), lifted);
  return lifted;
}

Status ProjectedOptimizer::Observe(const Observation& observation) {
  ++num_observations_;
  if (!best_.has_value() ||
      (best_->failed && !observation.failed) ||
      (best_->failed == observation.failed &&
       observation.objective < best_->objective)) {
    best_ = observation;
  }
  // Route to the inner optimizer: find the matching pending suggestion
  // (usually the front; batch loops may interleave).
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->second == observation.config) {
      Observation low_obs(it->first, observation.objective);
      low_obs.failed = observation.failed;
      low_obs.cost = observation.cost;
      low_obs.fidelity = observation.fidelity;
      pending_.erase(it);
      return inner_->Observe(low_obs);
    }
  }
  // Observation for a config we did not suggest: nothing to route.
  return Status::OK();
}

}  // namespace autotune
