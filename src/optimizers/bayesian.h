#ifndef AUTOTUNE_OPTIMIZERS_BAYESIAN_H_
#define AUTOTUNE_OPTIMIZERS_BAYESIAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "math/quasirandom.h"
#include "optimizers/acquisition.h"
#include "space/encoding.h"
#include "surrogate/surrogate.h"

namespace autotune {

/// Options for `BayesianOptimizer`.
struct BayesianOptimizerOptions {
  /// Space-filling (Halton) trials before the surrogate takes over.
  int initial_design = 8;

  AcquisitionKind acquisition = AcquisitionKind::kExpectedImprovement;
  AcquisitionParams acquisition_params;

  /// Candidate pool size for acquisition maximization.
  int num_candidates = 512;

  /// Fraction of candidates drawn as perturbations of the incumbent
  /// (local exploitation); the rest are uniform (global exploration).
  double local_fraction = 0.3;
  double local_scale = 0.08;

  /// Categorical encoding for the surrogate input.
  SpaceEncoder::CategoricalMode encoding =
      SpaceEncoder::CategoricalMode::kOrdinal;

  /// Impute inactive conditional knobs with defaults before encoding
  /// (slide 61's tree-structured-dependency treatment); false ablates it.
  bool impute_inactive = true;

  /// Refit the surrogate every `refit_every` observations (1 = always).
  int refit_every = 1;

  /// Batch-diversity strategy for `SuggestBatch` (slide 57):
  /// constant liar fantasizes the incumbent value at each picked point;
  /// kriging believer fantasizes the surrogate's own posterior mean.
  enum class BatchStrategy { kConstantLiar, kKrigingBeliever };
  BatchStrategy batch_strategy = BatchStrategy::kConstantLiar;

  /// Cost-aware acquisition (slide 65: "cost-adjusted expected
  /// improvement"): when set, positive acquisition scores are divided by
  /// this configuration cost (e.g. run time, or restart cost), steering
  /// the search toward cheap informative trials.
  std::function<double(const Configuration&)> cost_fn;
};

/// Sequential model-based (Bayesian) optimization (tutorial slides 32-48):
/// fit a surrogate to past (config, objective) pairs, maximize an
/// acquisition function over candidates, evaluate, repeat. The surrogate is
/// pluggable — a `GaussianProcess` gives textbook BO, a
/// `RandomForestSurrogate` gives SMAC (slide 50).
class BayesianOptimizer : public OptimizerBase {
 public:
  /// Takes ownership of `surrogate`.
  BayesianOptimizer(const ConfigSpace* space, uint64_t seed,
                    std::unique_ptr<Surrogate> surrogate,
                    BayesianOptimizerOptions options = {});

  std::string name() const override;

  [[nodiscard]] Result<Configuration> Suggest() override;

  /// Constant-liar batching (tutorial slide 57): after each batch pick, the
  /// chosen point is temporarily "observed" at the incumbent value so the
  /// next pick avoids it, keeping the batch diverse.
  [[nodiscard]] Result<std::vector<Configuration>> SuggestBatch(size_t k) override;

  /// Access to the fitted surrogate (for diagnostics/tests).
  const Surrogate& surrogate() const { return *surrogate_; }

  /// Checkpoint/restore for journal compaction. Works because the
  /// surrogates are pure functions of their training set: restoring refits
  /// ONCE on the history prefix the interrupted run had last cleanly
  /// fitted, instead of replaying every suggest/observe. `SaveCheckpoint`
  /// declines (FailedPrecondition) while the surrogate holds a fantasy
  /// (batch constant-liar) fit that later predictions could still read.
  [[nodiscard]] Result<OptimizerCheckpoint> SaveCheckpoint() const override;
  [[nodiscard]] Status RestoreCheckpoint(
      const OptimizerCheckpoint& checkpoint,
      const std::vector<Observation>& history) override;

 protected:
  void OnObserve(const Observation& observation) override;

 private:
  /// Refits the surrogate to the first `history_count` observations plus
  /// `extra` fantasy observations (npos = full history).
  [[nodiscard]] Status RefitWith(const std::vector<std::pair<Vector, double>>& extra,
                                 size_t history_count = static_cast<size_t>(-1));

  /// Argmax of the acquisition over a random+local candidate pool, skipping
  /// infeasible configurations.
  /// Scores the candidate pool and returns the acquisition argmax, pushing a
  /// DecisionRecord tagged with `phase` ("model" or "fantasy_batch").
  [[nodiscard]] Result<Configuration> MaximizeAcquisition(const char* phase);

  std::unique_ptr<Surrogate> surrogate_;
  BayesianOptimizerOptions options_;
  SpaceEncoder encoder_;
  HaltonSequence halton_;
  bool surrogate_stale_ = true;
  int observations_since_fit_ = 0;
  /// History prefix length of the last CLEAN (fantasy-free) fit; 0 = never
  /// fitted. Checkpoint restore reproduces that fit with one refit.
  size_t clean_fit_history_size_ = 0;
  /// True while the surrogate holds a fantasy (constant-liar / believer)
  /// fit from `SuggestBatch` — a state that is NOT a pure function of the
  /// history and therefore not checkpointable.
  bool fit_is_fantasy_ = false;
};

/// Factory: textbook GP-BO (Matérn-5/2, EI).
std::unique_ptr<BayesianOptimizer> MakeGpBo(const ConfigSpace* space,
                                            uint64_t seed);

/// Factory: SMAC-style BO (random-forest surrogate + EI, one-hot encoding
/// for hybrid spaces; tutorial slides 50-51).
std::unique_ptr<BayesianOptimizer> MakeSmac(const ConfigSpace* space,
                                            uint64_t seed);

}  // namespace autotune

#endif  // AUTOTUNE_OPTIMIZERS_BAYESIAN_H_
