#ifndef AUTOTUNE_OPTIMIZERS_BAYESIAN_H_
#define AUTOTUNE_OPTIMIZERS_BAYESIAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "math/quasirandom.h"
#include "optimizers/acquisition.h"
#include "space/encoding.h"
#include "surrogate/surrogate.h"

namespace autotune {

/// Options for `BayesianOptimizer`.
struct BayesianOptimizerOptions {
  /// Space-filling (Halton) trials before the surrogate takes over.
  int initial_design = 8;

  AcquisitionKind acquisition = AcquisitionKind::kExpectedImprovement;
  AcquisitionParams acquisition_params;

  /// Candidate pool size for acquisition maximization.
  int num_candidates = 512;

  /// Fraction of candidates drawn as perturbations of the incumbent
  /// (local exploitation); the rest are uniform (global exploration).
  double local_fraction = 0.3;
  double local_scale = 0.08;

  /// Categorical encoding for the surrogate input.
  SpaceEncoder::CategoricalMode encoding =
      SpaceEncoder::CategoricalMode::kOrdinal;

  /// Impute inactive conditional knobs with defaults before encoding
  /// (slide 61's tree-structured-dependency treatment); false ablates it.
  bool impute_inactive = true;

  /// Refit the surrogate every `refit_every` observations (1 = always).
  /// Only consulted on the legacy refit-per-suggest path, i.e. when
  /// `incremental_updates` is false or the surrogate has no incremental
  /// `Observe`.
  int refit_every = 1;

  /// Feed observations to the surrogate incrementally (`Observe`) instead
  /// of refitting from scratch each trial, when the surrogate supports it.
  /// Full refits (hyperparameter re-selection) then happen on the geometric
  /// schedule below, so total fit cost is amortized O(n²) per observation.
  bool incremental_updates = true;

  /// A scheduled full refit fires when history reaches
  /// max(last_full_fit * full_refit_growth, last_full_fit +
  /// full_refit_min_gap). Deterministic (data-size based), so live runs
  /// and resumed runs refit at identical points.
  double full_refit_growth = 1.5;
  int full_refit_min_gap = 8;

  /// Past this many observations, full refits switch a GaussianProcess
  /// surrogate to a `SparseGaussianProcess` with `sparse_num_inducing`
  /// inducing points, bounding per-trial cost regardless of history
  /// length. 0 disables the switch. The switch is monotone (never back).
  size_t sparse_history_threshold = 1024;
  size_t sparse_num_inducing = 256;

  /// Batch-diversity strategy for `SuggestBatch` (slide 57):
  /// constant liar fantasizes the incumbent value at each picked point;
  /// kriging believer fantasizes the surrogate's own posterior mean.
  enum class BatchStrategy { kConstantLiar, kKrigingBeliever };
  BatchStrategy batch_strategy = BatchStrategy::kConstantLiar;

  /// Cost-aware acquisition (slide 65: "cost-adjusted expected
  /// improvement"): when set, positive acquisition scores are divided by
  /// this configuration cost (e.g. run time, or restart cost), steering
  /// the search toward cheap informative trials.
  std::function<double(const Configuration&)> cost_fn;
};

/// Sequential model-based (Bayesian) optimization (tutorial slides 32-48):
/// fit a surrogate to past (config, objective) pairs, maximize an
/// acquisition function over candidates, evaluate, repeat. The surrogate is
/// pluggable — a `GaussianProcess` gives textbook BO, a
/// `RandomForestSurrogate` gives SMAC (slide 50).
class BayesianOptimizer : public OptimizerBase {
 public:
  /// Takes ownership of `surrogate`.
  BayesianOptimizer(const ConfigSpace* space, uint64_t seed,
                    std::unique_ptr<Surrogate> surrogate,
                    BayesianOptimizerOptions options = {});

  std::string name() const override;

  [[nodiscard]] Result<Configuration> Suggest() override;

  /// Constant-liar batching (tutorial slide 57): after each batch pick, the
  /// chosen point is temporarily "observed" at the incumbent value so the
  /// next pick avoids it, keeping the batch diverse.
  [[nodiscard]] Result<std::vector<Configuration>> SuggestBatch(size_t k) override;

  /// Access to the ACTIVE surrogate (the sparse fallback once the history
  /// threshold has tripped, the primary before; for diagnostics/tests).
  const Surrogate& surrogate() const {
    return use_sparse_ ? *sparse_ : *surrogate_;
  }

  /// Checkpoint/restore for journal compaction. Works because the
  /// surrogates are pure functions of their training set: restoring refits
  /// ONCE on the history prefix the interrupted run had last cleanly
  /// fitted, instead of replaying every suggest/observe. `SaveCheckpoint`
  /// declines (FailedPrecondition) while the surrogate holds a fantasy
  /// (batch constant-liar) fit that later predictions could still read.
  [[nodiscard]] Result<OptimizerCheckpoint> SaveCheckpoint() const override;
  [[nodiscard]] Status RestoreCheckpoint(
      const OptimizerCheckpoint& checkpoint,
      const std::vector<Observation>& history) override;

 protected:
  void OnObserve(const Observation& observation) override;

 private:
  /// Refits the surrogate to the first `history_count` observations plus
  /// `extra` fantasy observations (npos = full history). Clean (fantasy-
  /// free) refits also run the sparse-threshold switch and reset the
  /// incremental-update schedule.
  [[nodiscard]] Status RefitWith(const std::vector<std::pair<Vector, double>>& extra,
                                 size_t history_count = static_cast<size_t>(-1));

  /// Argmax of the acquisition over a random+local candidate pool, skipping
  /// infeasible configurations.
  /// Scores the candidate pool and returns the acquisition argmax, pushing a
  /// DecisionRecord tagged with `phase` ("model" or "fantasy_batch").
  [[nodiscard]] Result<Configuration> MaximizeAcquisition(const char* phase);

  /// The surrogate predictions and incremental updates go to: the sparse
  /// fallback once the threshold has tripped, the primary before.
  Surrogate& active_surrogate() { return use_sparse_ ? *sparse_ : *surrogate_; }

  /// History size at which the next scheduled full refit fires.
  size_t NextFullRefitSize() const;

  std::unique_ptr<Surrogate> surrogate_;
  BayesianOptimizerOptions options_;
  SpaceEncoder encoder_;
  HaltonSequence halton_;
  bool surrogate_stale_ = true;
  int observations_since_fit_ = 0;
  /// History prefix length of the last CLEAN (fantasy-free) fit; 0 = never
  /// fitted. Checkpoint restore reproduces that fit with one refit.
  size_t clean_fit_history_size_ = 0;
  /// True while the surrogate holds a fantasy (constant-liar / believer)
  /// fit from `SuggestBatch` — a state that is NOT a pure function of the
  /// history and therefore not checkpointable.
  bool fit_is_fantasy_ = false;

  /// Sparse fallback surrogate; created lazily at the threshold switch.
  std::unique_ptr<Surrogate> sparse_;
  bool use_sparse_ = false;
  /// History size of the last scheduled FULL fit (hyperparameter
  /// re-selection); anchors the geometric refit schedule. 0 = never.
  size_t last_full_fit_size_ = 0;
  /// Number of history observations the model has absorbed (full fit +
  /// incremental tail). Restore replays Observe for
  /// history[last_full_fit_size_, model_observed_through_).
  size_t model_observed_through_ = 0;
  /// Full refits since the last DecisionRecord — journaled as the
  /// `surrogate_refit` marker so replays can audit refit points.
  int64_t refits_since_decision_ = 0;

  /// Reused candidate-pool buffers (SoA): encoded features, posterior
  /// batch, Thompson draws, and scores. Only valid within one
  /// MaximizeAcquisition call; kept as members to make the scoring loop
  /// allocation-free at steady state.
  Matrix candidate_features_{0, 0};
  PredictionBatch predictions_;
  Vector thompson_draws_;
  Vector scores_;
};

/// Factory: textbook GP-BO (Matérn-5/2, EI).
std::unique_ptr<BayesianOptimizer> MakeGpBo(const ConfigSpace* space,
                                            uint64_t seed);

/// Factory: SMAC-style BO (random-forest surrogate + EI, one-hot encoding
/// for hybrid spaces; tutorial slides 50-51).
std::unique_ptr<BayesianOptimizer> MakeSmac(const ConfigSpace* space,
                                            uint64_t seed);

}  // namespace autotune

#endif  // AUTOTUNE_OPTIMIZERS_BAYESIAN_H_
