#ifndef AUTOTUNE_OPTIMIZERS_PROJECTED_H_
#define AUTOTUNE_OPTIMIZERS_PROJECTED_H_

#include <deque>
#include <memory>
#include <string>
#include <utility>

#include "core/optimizer.h"
#include "space/projected_space.h"

namespace autotune {

/// LlamaTune-style wrapper (tutorial slide 62): an inner optimizer searches
/// the low-dimensional projected space, while the tuning loop sees
/// configurations of the real target space. Observations are routed back to
/// the inner optimizer in the low space (FIFO pairing with suggestions,
/// matching the sequential/batch loop's ordering).
class ProjectedOptimizer : public Optimizer {
 public:
  /// `adapter` maps low <-> target; `make_inner` builds the inner optimizer
  /// over `adapter->low_space()`. Both are owned.
  ProjectedOptimizer(std::unique_ptr<ProjectedSpace> adapter,
                     std::unique_ptr<Optimizer> inner);

  std::string name() const override;

  const ConfigSpace& space() const override {
    return adapter_->target_space();
  }

  [[nodiscard]] Result<Configuration> Suggest() override;

  [[nodiscard]] Status Observe(const Observation& observation) override;

  const std::optional<Observation>& best() const override { return best_; }

  size_t num_observations() const override { return num_observations_; }

 private:
  std::unique_ptr<ProjectedSpace> adapter_;
  std::unique_ptr<Optimizer> inner_;
  // Pending (low config, lifted config) pairs awaiting observation.
  std::deque<std::pair<Configuration, Configuration>> pending_;
  std::optional<Observation> best_;
  size_t num_observations_ = 0;
};

}  // namespace autotune

#endif  // AUTOTUNE_OPTIMIZERS_PROJECTED_H_
