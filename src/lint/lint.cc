#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/check.h"
#include "lint/lock_rules.h"
#include "lint/token.h"

namespace autotune {
namespace lint {

namespace {

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

// ---- Comment / literal stripping -------------------------------------------

/// Records the rules suppressed by a NOLINT marker in `comment` (started on
/// `line`): "*" for a bare `NOLINT`, else each name inside `NOLINT(...)`.
void ParseNolint(const std::string& comment, int line,
                 std::map<int, std::set<std::string>>* nolint) {
  size_t pos = comment.find("NOLINT");
  if (pos == std::string::npos) return;
  size_t after = pos + 6;  // strlen("NOLINT")
  if (after < comment.size() && comment[after] == '(') {
    size_t close = comment.find(')', after);
    if (close == std::string::npos) return;
    std::string rules = comment.substr(after + 1, close - after - 1);
    std::istringstream stream(rules);
    std::string rule;
    while (std::getline(stream, rule, ',')) {
      const size_t first = rule.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      const size_t last = rule.find_last_not_of(" \t");
      (*nolint)[line].insert(rule.substr(first, last - first + 1));
    }
  } else {
    (*nolint)[line].insert("*");
  }
}

/// Produces a copy of `raw` with comments, string literals, and character
/// literals blanked to spaces (newlines preserved, so token line numbers
/// match the original), collecting NOLINT suppressions along the way.
std::string StripCommentsAndLiterals(
    const std::string& raw, std::map<int, std::set<std::string>>* nolint) {
  std::string code(raw.size(), ' ');
  enum class State { kCode, kLine, kBlock, kString, kChar, kRawString };
  State state = State::kCode;
  int line = 1;
  std::string comment;
  int comment_line = 0;
  std::string raw_delim;  // Closing ")delim" of an in-flight raw string.

  for (size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          comment.clear();
          comment_line = line;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          comment.clear();
          comment_line = line;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsIdentChar(raw[i - 1]))) {
          // Raw string: R"delim( ... )delim".
          size_t open = raw.find('(', i + 2);
          if (open == std::string::npos) break;
          raw_delim = ")" + raw.substr(i + 2, open - i - 2) + "\"";
          i = open;
          state = State::kRawString;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && !(i > 0 && IsIdentChar(raw[i - 1]))) {
          // Skip digit separators like 1'000'000 (preceded by ident char).
          state = State::kChar;
        } else {
          code[i] = c;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          ParseNolint(comment, comment_line, nolint);
          state = State::kCode;
        } else {
          comment.push_back(c);
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          ParseNolint(comment, comment_line, nolint);
          state = State::kCode;
          ++i;
        } else {
          comment.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
          if (next == '\n') ++line, code[i] = '\n';
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == ')' && raw.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
    if (c == '\n') {
      ++line;
      code[i] = '\n';
    }
  }
  if (state == State::kLine) ParseNolint(comment, comment_line, nolint);
  return code;
}

/// Blanks preprocessor directives (including line continuations) so token
/// rules do not fire inside macro definitions; `#include` lines are analyzed
/// separately from the unstripped view.
std::string BlankPreprocessor(const std::string& code) {
  std::string out = code;
  size_t begin = 0;
  bool continued = false;
  while (begin < out.size()) {
    size_t end = out.find('\n', begin);
    if (end == std::string::npos) end = out.size();
    const size_t first = out.find_first_not_of(" \t", begin);
    const bool directive =
        continued || (first != std::string::npos && first < end &&
                      out[first] == '#');
    continued = false;
    if (directive) {
      // A directive continues onto the next line when it ends with '\'.
      const size_t last = out.find_last_not_of(" \t\r", end - 1);
      continued = end > begin && last != std::string::npos &&
                  last >= begin && out[last] == '\\';
      for (size_t i = begin; i < end; ++i) out[i] = ' ';
    }
    begin = end + 1;
  }
  return out;
}

// The tokenizer lives in lint/token.{h,cc}, shared with the lock-graph
// rules (lint/lock_rules.cc).

// ---- Include extraction ----------------------------------------------------

struct Include {
  std::string path;  ///< The include target as written.
  bool angled = false;
  int line = 0;
};

/// `code` (comment/literal-stripped) decides what is a real directive —
/// commented-out includes are blanked there — while the path itself is read
/// from `raw`, because the stripping blanks the quoted path too. The two
/// views are position-aligned by construction.
std::vector<Include> ExtractIncludes(const std::string& code,
                                     const std::string& raw) {
  std::vector<Include> includes;
  int line = 0;
  size_t begin = 0;
  while (begin <= code.size()) {
    size_t end = code.find('\n', begin);
    if (end == std::string::npos) end = code.size();
    ++line;
    const std::string text = code.substr(begin, end - begin);
    const std::string raw_text = raw.substr(begin, end - begin);
    begin = end + 1;
    size_t pos = text.find_first_not_of(" \t");
    if (pos == std::string::npos || text[pos] != '#') continue;
    pos = text.find_first_not_of(" \t", pos + 1);
    if (pos == std::string::npos || text.compare(pos, 7, "include") != 0) {
      continue;
    }
    pos = raw_text.find_first_of("\"<", pos + 7);
    if (pos == std::string::npos) continue;
    const char close = raw_text[pos] == '<' ? '>' : '"';
    const size_t close_pos = raw_text.find(close, pos + 1);
    if (close_pos == std::string::npos) continue;
    includes.push_back(
        {raw_text.substr(pos + 1, close_pos - pos - 1), close == '>', line});
    if (begin > code.size()) break;
  }
  return includes;
}

// ---- Rule: determinism -----------------------------------------------------

/// Identifiers that introduce ambient randomness or wall-clock time. Any use
/// outside the sanctioned shims breaks same-seed replay and bit-exact
/// resume.
const std::set<std::string>& BannedIdentifiers() {
  static const std::set<std::string>* banned = new std::set<std::string>{
      "random_device", "mt19937", "mt19937_64", "minstd_rand",
      "minstd_rand0", "default_random_engine", "knuth_b", "random_shuffle",
      "rand", "srand", "drand48", "lrand48", "rand_r", "steady_clock",
      "system_clock", "high_resolution_clock", "gettimeofday",
      "clock_gettime",
  };
  return *banned;
}

/// Files allowed to touch clocks/entropy: the seeded RNG itself and the obs
/// timestamp shims (journal "ts_ms" stamps, trace span clocks) — their
/// output is diagnostic metadata, never tuning state.
bool IsDeterminismExempt(const std::string& path) {
  return StartsWith(path, "src/common/rng.") || path == "src/obs/trace.cc" ||
         path == "src/obs/journal.cc";
}

void RunDeterminismRule(const std::string& path,
                        const std::vector<Token>& tokens,
                        const std::vector<Include>& includes,
                        std::vector<Finding>* findings) {
  if (IsDeterminismExempt(path)) return;
  for (const Include& include : includes) {
    if (include.angled &&
        (include.path == "random" || include.path == "ctime" ||
         include.path == "time.h" || include.path == "sys/time.h")) {
      findings->push_back(
          {path, include.line, "determinism",
           "#include <" + include.path +
               "> — ambient randomness/clock headers are reserved for "
               "src/common/rng and the obs timestamp shims"});
    }
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& text = tokens[i].text;
    if (BannedIdentifiers().count(text) > 0) {
      findings->push_back(
          {path, tokens[i].line, "determinism",
           "'" + text +
               "' — all randomness/time must flow through src/common/rng "
               "(seeded, replayable) or the obs timestamp shims"});
      continue;
    }
    // `time(...)` / `clock(...)` only when called (plain identifiers named
    // `time` are common and harmless).
    if ((text == "time" || text == "clock") && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(" &&
        (i == 0 ||
         (tokens[i - 1].text != "." && tokens[i - 1].text != "->"))) {
      findings->push_back(
          {path, tokens[i].line, "determinism",
           "call to '" + text +
               "()' — wall-clock/CRT time sources break same-seed replay"});
    }
  }
}

// ---- Rule: unchecked-status ------------------------------------------------

/// First pass: names of functions declared or defined to return `Status` or
/// `Result<T>`, collected across every linted file. Names that are ALSO
/// declared somewhere with a `void` return (collected into `void_names`)
/// are excluded by the caller — a token-level linter cannot resolve which
/// overload a call site binds to, and flagging `void Run()` because an
/// unrelated `Status Run()` exists elsewhere would drown the signal.
void CollectReturnTypedFunctions(const std::vector<Token>& tokens,
                                 std::set<std::string>* status_names,
                                 std::set<std::string>* void_names) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    size_t after_type = 0;
    std::set<std::string>* names = status_names;
    if (tokens[i].text == "Status") {
      after_type = i + 1;
    } else if (tokens[i].text == "Result" && i + 1 < tokens.size() &&
               tokens[i + 1].text == "<") {
      const size_t closed = SkipAngles(tokens, i + 1);
      if (closed == i + 1) continue;
      after_type = closed;
    } else if (tokens[i].text == "void") {
      after_type = i + 1;
      names = void_names;
    } else {
      continue;
    }
    // Qualified declarator: ident (:: ident)* '('  — record the last name.
    size_t j = after_type;
    if (j >= tokens.size() || !IsIdentToken(tokens[j])) continue;
    std::string last = tokens[j].text;
    while (j + 2 < tokens.size() && tokens[j + 1].text == "::" &&
           IsIdentToken(tokens[j + 2])) {
      j += 2;
      last = tokens[j].text;
    }
    if (j + 1 < tokens.size() && tokens[j + 1].text == "(") {
      names->insert(last);
    }
  }
}

/// True if `index` is the start of a statement: file start, after `;` `{`
/// `}`, after an access-specifier colon, after the `)` of a control-flow
/// header, or after `else`/`do`.
bool IsStatementStart(const std::vector<Token>& tokens, size_t index) {
  if (index == 0) return true;
  const std::string& prev = tokens[index - 1].text;
  if (prev == ";" || prev == "{" || prev == "}") return true;
  if (prev == "else" || prev == "do") return true;
  if (prev == ":" && index >= 2 &&
      (tokens[index - 2].text == "public" ||
       tokens[index - 2].text == "private" ||
       tokens[index - 2].text == "protected")) {
    return true;
  }
  if (prev == ")") {
    // `(void) Foo();` is the sanctioned "intentionally discarded" spelling.
    if (index >= 3 && tokens[index - 2].text == "void" &&
        tokens[index - 3].text == "(") {
      return false;
    }
    return true;
  }
  return false;
}

void RunUncheckedStatusRule(const std::string& path,
                            const std::vector<Token>& tokens,
                            const std::set<std::string>& status_functions,
                            std::vector<Finding>* findings) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!IsIdentToken(tokens[i]) || !IsStatementStart(tokens, i)) continue;
    // Call chain: ident ((:: | . | ->) ident)* '(' ... ')' ';'.
    size_t j = i;
    std::string callee = tokens[j].text;
    while (j + 2 < tokens.size() &&
           (tokens[j + 1].text == "::" || tokens[j + 1].text == "." ||
            tokens[j + 1].text == "->") &&
           IsIdentToken(tokens[j + 2])) {
      j += 2;
      callee = tokens[j].text;
    }
    if (j + 1 >= tokens.size() || tokens[j + 1].text != "(") continue;
    size_t k = j + 1;
    int depth = 0;
    while (k < tokens.size()) {
      if (tokens[k].text == "(") ++depth;
      if (tokens[k].text == ")" && --depth == 0) break;
      ++k;
    }
    if (k + 1 >= tokens.size() || tokens[k + 1].text != ";") continue;
    if (status_functions.count(callee) == 0) continue;
    findings->push_back(
        {path, tokens[i].line, "unchecked-status",
         "result of '" + callee +
             "' (returns Status/Result) is discarded — handle it, or cast "
             "to (void) with a reason"});
  }
}

// ---- Rule: nodiscard -------------------------------------------------------

void RunNodiscardRule(const std::string& path,
                      const std::vector<Token>& tokens,
                      std::vector<Finding>* findings) {
  if (!EndsWith(path, ".h")) return;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!IsStatementStart(tokens, i)) continue;
    size_t j = i;
    bool has_nodiscard = false;
    for (;;) {
      if (j >= tokens.size()) break;
      const std::string& t = tokens[j].text;
      if (t == "static" || t == "virtual" || t == "inline" ||
          t == "constexpr" || t == "explicit" || t == "friend") {
        ++j;
        continue;
      }
      if (t == "[" && j + 1 < tokens.size() && tokens[j + 1].text == "[") {
        size_t k = j + 2;
        while (k < tokens.size() && tokens[k].text != "]") {
          if (tokens[k].text == "nodiscard") has_nodiscard = true;
          ++k;
        }
        j = k + 2;  // Past "]]".
        continue;
      }
      break;
    }
    if (j >= tokens.size()) continue;
    size_t after_type = 0;
    if (tokens[j].text == "Status") {
      after_type = j + 1;
    } else if (tokens[j].text == "Result" && j + 1 < tokens.size() &&
               tokens[j + 1].text == "<") {
      const size_t closed = SkipAngles(tokens, j + 1);
      if (closed == j + 1) continue;
      after_type = closed;
    } else {
      continue;
    }
    if (after_type + 1 >= tokens.size() ||
        !IsIdentToken(tokens[after_type]) ||
        tokens[after_type + 1].text != "(") {
      continue;
    }
    if (has_nodiscard) continue;
    findings->push_back(
        {path, tokens[j].line, "nodiscard",
         "header declaration of '" + tokens[after_type].text +
             "' returns Status/Result but is not [[nodiscard]]"});
  }
}

// ---- Rule: layering --------------------------------------------------------

/// Module of a source path: second component under src/, else the top-level
/// directory (tools, tests, bench, examples).
std::string ModuleOf(const std::string& path) {
  std::string p = path;
  if (StartsWith(p, "src/")) p = p.substr(4);
  const size_t slash = p.find('/');
  return slash == std::string::npos ? std::string() : p.substr(0, slash);
}

/// Module an include target resolves to. Quoted includes resolve against
/// src/ (the only include directory), so the first path component is the
/// module; a bare filename is a same-directory include. `../` prefixes are
/// stripped so escapes into sibling trees are still classified.
std::string IncludeModule(const std::string& include,
                          const std::string& includer_module) {
  std::string p = include;
  while (StartsWith(p, "./") || StartsWith(p, "../")) {
    p = p.substr(p.find('/') + 1);
  }
  const size_t slash = p.find('/');
  if (slash == std::string::npos) return includer_module;
  return p.substr(0, slash);
}

/// Allowed dependencies for the constrained modules (self always allowed).
/// Modules not listed are unconstrained beyond the universal rules.
const std::map<std::string, std::set<std::string>>& LayerWhitelist() {
  static const auto* map = new std::map<std::string, std::set<std::string>>{
      {"common", {}},
      {"math", {"common"}},
      {"space", {"common", "math"}},
      {"env", {"common", "math", "space"}},
      {"fault", {"common", "math", "space", "env"}},
      {"surrogate", {"common", "math"}},
      {"sim", {"common", "math", "space", "env"}},
      {"lint", {"common", "obs"}},
      {"record", {"common", "space", "core", "obs"}},
      {"kb",
       {"common", "math", "space", "env", "core", "obs", "record", "transfer",
        "workload"}},
      {"service",
       {"common", "math", "space", "env", "fault", "core", "obs", "record",
        "transfer", "kb"}},
  };
  return *map;
}

/// Explicitly forbidden edges for otherwise-unconstrained modules.
const std::map<std::string, std::set<std::string>>& LayerBlacklist() {
  static const auto* map = new std::map<std::string, std::set<std::string>>{
      {"obs", {"optimizers", "core", "record", "service"}},
  };
  return *map;
}

void RunLayeringRule(const std::string& path,
                     const std::vector<Include>& includes,
                     std::vector<Finding>* findings) {
  const std::string module = ModuleOf(path);
  for (const Include& include : includes) {
    if (include.angled) continue;
    const std::string target = IncludeModule(include.path, module);
    if (target == "tools" || target == "tests") {
      findings->push_back({path, include.line, "layering",
                           "'" + include.path +
                               "' — nothing may include tools/ or tests/"});
      continue;
    }
    if (target == module) continue;
    auto white = LayerWhitelist().find(module);
    if (white != LayerWhitelist().end() &&
        white->second.count(target) == 0) {
      std::string allowed;
      for (const std::string& dep : white->second) {
        allowed += (allowed.empty() ? "" : ", ") + dep;
      }
      findings->push_back(
          {path, include.line, "layering",
           "module '" + module + "' may only depend on {" + allowed +
               "} but includes '" + include.path + "'"});
      continue;
    }
    auto black = LayerBlacklist().find(module);
    if (black != LayerBlacklist().end() &&
        black->second.count(target) > 0) {
      findings->push_back({path, include.line, "layering",
                           "module '" + module + "' must never include '" +
                               target + "/' ('" + include.path + "')"});
    }
  }
}

// ---- Rule: include-hygiene -------------------------------------------------

bool HasIncludeGuard(const std::string& raw) {
  std::istringstream stream(raw);
  std::string line;
  std::string guard;
  while (std::getline(stream, line)) {
    std::istringstream tokens(line);
    std::string hash, word;
    tokens >> hash;
    if (hash.empty()) continue;
    if (hash == "#pragma") {
      tokens >> word;
      if (word == "once") return true;
      continue;
    }
    if (hash == "#ifndef" && guard.empty()) {
      tokens >> guard;
      continue;
    }
    if (hash == "#define" && !guard.empty()) {
      tokens >> word;
      if (word == guard) return true;
    }
  }
  return false;
}

void RunIncludeHygieneRule(const std::string& path, const std::string& raw,
                           const std::vector<Token>& tokens,
                           std::vector<Finding>* findings) {
  if (!EndsWith(path, ".h")) return;
  if (!HasIncludeGuard(raw)) {
    findings->push_back({path, 1, "include-hygiene",
                         "header has neither an include guard nor "
                         "#pragma once"});
  }
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].text == "using" && tokens[i + 1].text == "namespace") {
      findings->push_back(
          {path, tokens[i].line, "include-hygiene",
           "'using namespace' in a header leaks into every includer"});
    }
  }
}

}  // namespace

// ---- Finding / rule registry -----------------------------------------------

std::string Finding::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

const std::vector<std::string>& AllRules() {
  static const std::vector<std::string>* rules = new std::vector<std::string>{
      "determinism",     "unchecked-status", "nodiscard",
      "layering",        "include-hygiene",  "lock-order",
      "lock-discipline",
  };
  return *rules;
}

bool IsKnownRule(const std::string& rule) {
  const auto& all = AllRules();
  return std::find(all.begin(), all.end(), rule) != all.end();
}

// ---- Linter ----------------------------------------------------------------

void Linter::AddFile(std::string file, std::string contents) {
  SourceFile source;
  source.path = std::move(file);
  source.raw = std::move(contents);
  source.code = StripCommentsAndLiterals(source.raw, &source.nolint);
  source.code_nopp = BlankPreprocessor(source.code);
  files_.push_back(std::move(source));
}

void Linter::SetRules(std::vector<std::string> rules) {
  rules_ = std::move(rules);
}

bool Linter::RuleEnabled(const std::string& rule) const {
  return rules_.empty() ||
         std::find(rules_.begin(), rules_.end(), rule) != rules_.end();
}

std::vector<Finding> Linter::Run() {
  nolint_suppressed_ = 0;

  // Pass 1: the Status/Result-returning vocabulary, across all files.
  std::set<std::string> status_functions;
  std::set<std::string> void_functions;
  std::vector<std::vector<Token>> tokens_per_file;
  tokens_per_file.reserve(files_.size());
  for (const SourceFile& file : files_) {
    tokens_per_file.push_back(Tokenize(file.code_nopp));
    CollectReturnTypedFunctions(tokens_per_file.back(), &status_functions,
                                &void_functions);
  }
  for (const std::string& name : void_functions) {
    status_functions.erase(name);  // Ambiguous overloads: stay silent.
  }

  // The lock rules are inter-procedural: they see the whole file set at
  // once, then their findings are merged through each file's NOLINT filter
  // below alongside the per-file rules.
  std::map<std::string, std::vector<Finding>> lock_findings;
  if (RuleEnabled("lock-order") || RuleEnabled("lock-discipline")) {
    std::vector<LockRuleInput> inputs;
    inputs.reserve(files_.size());
    for (size_t i = 0; i < files_.size(); ++i) {
      inputs.push_back({&files_[i].path, &tokens_per_file[i]});
    }
    for (Finding& finding :
         RunLockRules(inputs, RuleEnabled("lock-order"),
                      RuleEnabled("lock-discipline"))) {
      lock_findings[finding.file].push_back(std::move(finding));
    }
  }

  // Pass 2: per-file rules.
  std::vector<Finding> findings;
  for (size_t i = 0; i < files_.size(); ++i) {
    const SourceFile& file = files_[i];
    const std::vector<Token>& tokens = tokens_per_file[i];
    const std::vector<Include> includes =
        ExtractIncludes(file.code, file.raw);
    std::vector<Finding> local;
    if (RuleEnabled("determinism")) {
      RunDeterminismRule(file.path, tokens, includes, &local);
    }
    if (RuleEnabled("unchecked-status")) {
      RunUncheckedStatusRule(file.path, tokens, status_functions, &local);
    }
    if (RuleEnabled("nodiscard")) {
      RunNodiscardRule(file.path, tokens, &local);
    }
    if (RuleEnabled("layering")) {
      RunLayeringRule(file.path, includes, &local);
    }
    if (RuleEnabled("include-hygiene")) {
      RunIncludeHygieneRule(file.path, file.raw, tokens, &local);
    }
    const auto composed = lock_findings.find(file.path);
    if (composed != lock_findings.end()) {
      for (Finding& finding : composed->second) {
        local.push_back(std::move(finding));
      }
    }
    for (Finding& finding : local) {
      const auto nolint = file.nolint.find(finding.line);
      if (nolint != file.nolint.end() &&
          (nolint->second.count("*") > 0 ||
           nolint->second.count(finding.rule) > 0)) {
        ++nolint_suppressed_;
        continue;
      }
      findings.push_back(std::move(finding));
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

// ---- Filesystem driver -----------------------------------------------------

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string text;
  char buf[1 << 16];
  size_t read;
  while ((read = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    text.append(buf, read);
  }
  std::fclose(file);
  return text;
}

Result<std::vector<std::string>> CollectSourceFiles(
    const std::string& root, const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    const fs::path absolute = fs::path(root) / path;
    std::error_code ec;
    if (fs::is_regular_file(absolute, ec)) {
      files.push_back(fs::path(path).generic_string());
      continue;
    }
    if (!fs::is_directory(absolute, ec)) {
      return Status::NotFound("'" + path + "' is not a file or directory");
    }
    for (fs::recursive_directory_iterator
             it(absolute, fs::directory_options::skip_permission_denied, ec),
         end;
         it != end; it.increment(ec)) {
      if (ec) {
        return Status::Internal("walking '" + path + "': " + ec.message());
      }
      const std::string name = it->path().filename().string();
      if (it->is_directory() &&
          (name == "build" || (!name.empty() && name[0] == '.'))) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".cc" && ext != ".h") continue;
      files.push_back(
          (fs::path(path) / fs::relative(it->path(), absolute, ec))
              .generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

// ---- Baseline --------------------------------------------------------------

Result<Baseline> ParseBaseline(const std::string& text) {
  Baseline baseline;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    int count = 0;
    std::string rule, file;
    if (!(fields >> count >> rule >> file) || count <= 0 ||
        !IsKnownRule(rule)) {
      return Status::InvalidArgument(
          "baseline line " + std::to_string(line_number) +
          ": expected '<count> <rule> <file>', got '" + line + "'");
    }
    baseline[{file, rule}] += count;
  }
  return baseline;
}

std::string SerializeBaseline(const Baseline& baseline) {
  std::string out =
      "# autotune-lint baseline: accepted pre-existing debt, one\n"
      "# '<count> <rule> <file>' triple per line. Counts may only shrink;\n"
      "# regenerate with `autotune_lint --write-baseline` after paying\n"
      "# debt down. See docs/STATIC_ANALYSIS.md.\n";
  for (const auto& [key, count] : baseline) {
    out += std::to_string(count) + " " + key.second + " " + key.first + "\n";
  }
  return out;
}

Baseline BaselineFromFindings(const std::vector<Finding>& findings) {
  Baseline baseline;
  for (const Finding& finding : findings) {
    baseline[{finding.file, finding.rule}] += 1;
  }
  return baseline;
}

std::vector<Finding> ApplyBaseline(const std::vector<Finding>& findings,
                                   const Baseline& baseline,
                                   int* suppressed) {
  const Baseline actual = BaselineFromFindings(findings);
  std::vector<Finding> out;
  int absorbed = 0;
  for (const Finding& finding : findings) {
    const auto key = std::make_pair(finding.file, finding.rule);
    const auto allowance = baseline.find(key);
    const int allowed =
        allowance == baseline.end() ? 0 : allowance->second;
    if (actual.at(key) <= allowed) {
      ++absorbed;  // Within the ratchet: pre-existing debt.
    } else {
      out.push_back(finding);  // Over allowance: report the whole group.
    }
  }
  if (suppressed != nullptr) *suppressed = absorbed;
  return out;
}

// ---- Reporting -------------------------------------------------------------

obs::Json FindingsToJson(const std::vector<Finding>& findings,
                         int nolint_suppressed, int baseline_suppressed) {
  obs::Json::Array array;
  obs::Json::Object counts;
  for (const Finding& finding : findings) {
    obs::Json::Object object;
    object["file"] = obs::Json(finding.file);
    object["line"] = obs::Json(int64_t{finding.line});
    object["rule"] = obs::Json(finding.rule);
    object["message"] = obs::Json(finding.message);
    array.push_back(obs::Json(std::move(object)));
    const auto it = counts.find(finding.rule);
    counts[finding.rule] =
        obs::Json(it == counts.end() ? int64_t{1} : it->second.AsInt() + 1);
  }
  obs::Json::Object root;
  root["findings"] = obs::Json(std::move(array));
  root["counts"] = obs::Json(std::move(counts));
  root["total"] = obs::Json(int64_t{static_cast<int64_t>(findings.size())});
  root["nolint_suppressed"] = obs::Json(int64_t{nolint_suppressed});
  root["baseline_suppressed"] = obs::Json(int64_t{baseline_suppressed});
  return obs::Json(std::move(root));
}

Table SummaryTable(const std::vector<Finding>& findings) {
  std::map<std::string, int> counts;
  for (const Finding& finding : findings) counts[finding.rule] += 1;
  Table table({"rule", "findings"});
  for (const std::string& rule : AllRules()) {
    const auto it = counts.find(rule);
    const Status status = table.AppendRow(
        {rule, std::to_string(it == counts.end() ? 0 : it->second)});
    AUTOTUNE_CHECK(status.ok());
  }
  return table;
}

}  // namespace lint
}  // namespace autotune
