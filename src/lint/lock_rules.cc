#include "lint/lock_rules.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/lint.h"

namespace autotune {
namespace lint {
namespace {

// ---- Per-function lock model -----------------------------------------------
//
// The scanner reduces each function (including each lambda, analyzed as its
// own anonymous function — a lambda body runs later, on some other stack, so
// it must NOT inherit the held-lock state of its syntactic position) to two
// event lists:
//   acquires: `MutexLock`/`CondVarLock` declarations, with the stack of
//             locks already held in this function at that point;
//   calls:    every `name(...)` call, with the held stack at the call site —
//             the raw material for inter-procedural composition.
// Mutexes are identified by qualified name: a bare member `mutex_` inside
// `ThreadPool::Enqueue` becomes `ThreadPool::mutex_`; a path expression like
// `shard.mutex` is prefixed with the enclosing class (or file, outside any
// class), so every method of one class agrees on one node per member.

struct AcquireEvent {
  std::string mutex;
  int line = 0;
  std::string var;      ///< RAII variable name (for the CondVarLock::Wait
                        ///< own-lock exemption in lock-discipline).
  bool condvar = false;
  std::vector<std::string> held;  ///< Qualified names held before this.
};

struct CallEvent {
  std::string callee;  ///< Base name as written at the call site.
  int line = 0;
  std::vector<std::string> held;
};

struct FunctionInfo {
  std::string display;  ///< "ThreadPool::Enqueue", "f.cc:<lambda@42>".
  std::string base;     ///< Call-matchable base name; empty for lambdas.
  std::string file;
  std::vector<AcquireEvent> acquires;
  std::vector<CallEvent> calls;
};

// ---- Vocabulary ------------------------------------------------------------

/// Files allowed to touch raw locking primitives: the annotated wrappers
/// themselves and the deadlock sentinel (whose internal registry must use a
/// plain `std::mutex` — an `autotune::Mutex` there would recurse into its
/// own hooks).
bool IsLockDisciplineExempt(const std::string& path) {
  return path == "src/common/mutex.h" || path == "src/common/lock_order.h" ||
         path == "src/common/lock_order.cc";
}

const std::set<std::string>& RawLockTypes() {
  static const std::set<std::string>* types = new std::set<std::string>{
      "mutex",       "recursive_mutex", "timed_mutex",
      "shared_mutex", "lock_guard",     "unique_lock",
      "scoped_lock", "shared_lock",
  };
  return *types;
}

/// Calls that block (or may block unboundedly) and therefore must not run
/// while a `MutexLock` is in scope: condition-variable and future waits,
/// trial evaluation, sleeps, thread joins, and file flushes.
const std::set<std::string>& BlockingCalls() {
  static const std::set<std::string>* calls = new std::set<std::string>{
      "wait",     "wait_for", "wait_until", "Wait",    "Evaluate",
      "sleep_for", "sleep_until", "usleep", "nanosleep", "join",
      "Flush",    "flush",    "fflush",     "fsync",
  };
  return *calls;
}

/// Tokens that can directly precede a `(` without being a callee.
const std::set<std::string>& NonCalleeKeywords() {
  static const std::set<std::string>* keywords = new std::set<std::string>{
      "if",       "for",      "while",    "switch",  "return",  "catch",
      "sizeof",   "alignof",  "alignas",  "decltype", "noexcept", "typeid",
      "new",      "delete",   "throw",    "co_await", "co_return",
      "co_yield", "assert",   "int",      "char",    "bool",    "double",
      "float",    "auto",     "void",     "long",    "short",   "unsigned",
      "signed",   "operator",
  };
  return *keywords;
}

// ---- File scanner ----------------------------------------------------------

class FileScanner {
 public:
  FileScanner(const std::string& path, const std::vector<Token>& tokens,
              bool discipline, std::vector<FunctionInfo>* functions,
              std::vector<Finding>* findings)
      : path_(path),
        tokens_(tokens),
        discipline_(discipline && !IsLockDisciplineExempt(path)),
        functions_(functions),
        findings_(findings) {}

  void Scan() {
    if (discipline_) ScanRawPrimitives();
    size_t i = 0;
    while (i < tokens_.size()) {
      if (InCodeBody()) {
        i = ScanBodyToken(i);
      } else {
        i = ParseDeclaration(i);
      }
    }
  }

 private:
  struct Context {
    enum Kind { kNamespace, kClass, kEnum, kFunction, kLambda, kBlock };
    Kind kind;
    std::string name;        ///< Namespace/class name.
    int function = -1;       ///< `functions_` index (kFunction/kLambda).
    int saved_function = -1;  ///< Active function before entering.
  };

  struct Held {
    std::string mutex;
    std::string var;
    bool condvar = false;
    size_t depth = 0;  ///< Context-stack size at acquisition.
  };

  const std::string& Text(size_t i) const { return tokens_[i].text; }

  bool InCodeBody() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Context::kFunction || it->kind == Context::kLambda ||
          it->kind == Context::kBlock || it->kind == Context::kEnum) {
        return true;
      }
      if (it->kind == Context::kClass || it->kind == Context::kNamespace) {
        return false;
      }
    }
    return false;
  }

  std::string EnclosingClass() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Context::kClass) return it->name;
    }
    return std::string();
  }

  // -- Raw-primitive pass (flat; declarations live outside function bodies) --

  void ScanRawPrimitives() {
    for (size_t i = 0; i < tokens_.size(); ++i) {
      if (Text(i) == "std" && i + 2 < tokens_.size() && Text(i + 1) == "::" &&
          RawLockTypes().count(Text(i + 2)) > 0) {
        findings_->push_back(
            {path_, tokens_[i].line, "lock-discipline",
             "raw 'std::" + Text(i + 2) +
                 "' — use autotune::Mutex/MutexLock (src/common/mutex.h) so "
                 "thread-safety analysis and the deadlock sentinel see it"});
        continue;
      }
      if ((Text(i) == "lock" || Text(i) == "unlock" ||
           Text(i) == "try_lock") &&
          i > 0 && (Text(i - 1) == "." || Text(i - 1) == "->") &&
          i + 1 < tokens_.size() && Text(i + 1) == "(") {
        findings_->push_back(
            {path_, tokens_[i].line, "lock-discipline",
             "raw '." + Text(i) +
                 "()' call — manual lock management bypasses the annotated "
                 "RAII wrappers in src/common/mutex.h"});
      }
    }
  }

  // -- Declaration parsing (namespace / class scope) --------------------------

  size_t ParseDeclaration(size_t i) {
    const std::string& t = Text(i);
    if (t == "}") {
      PopContext();
      return i + 1;
    }
    if (t == ";") return i + 1;
    if ((t == "public" || t == "private" || t == "protected") &&
        i + 1 < tokens_.size() && Text(i + 1) == ":") {
      return i + 2;
    }
    if (t == "namespace") return ParseNamespace(i);
    if (t == "class" || t == "struct" || t == "union") return ParseClass(i);
    if (t == "enum") return ParseEnum(i);
    if (t == "template") {
      if (i + 1 < tokens_.size() && Text(i + 1) == "<") {
        const size_t closed = SkipAngles(tokens_, i + 1);
        if (closed != i + 1) return closed;
      }
      return i + 1;
    }
    if (t == "using" || t == "typedef" || t == "static_assert" ||
        t == "friend") {
      return SkipToSemicolon(i);
    }
    return ParseDeclarator(i);
  }

  size_t ParseNamespace(size_t i) {
    size_t j = i + 1;
    std::string name;
    while (j < tokens_.size() && IsIdentToken(tokens_[j])) {
      name = Text(j);
      ++j;
      if (j < tokens_.size() && Text(j) == "::") ++j;
    }
    if (j < tokens_.size() && Text(j) == "{") {
      stack_.push_back({Context::kNamespace, name, -1, -1});
      return j + 1;
    }
    return SkipToSemicolon(i);  // `namespace fs = std::filesystem;`
  }

  size_t ParseClass(size_t i) {
    // The class name is the last depth-0 identifier before `{`/`:`/`;` that
    // is neither `final` nor a macro invocation (ident followed by `(`, like
    // the CAPABILITY annotation macros).
    std::string name;
    size_t j = i + 1;
    while (j < tokens_.size()) {
      const std::string& t = Text(j);
      if (t == ";") return j + 1;  // Forward declaration.
      if (t == "{" || t == ":") break;
      if (t == "(") {
        j = SkipBalanced(j, "(", ")");
        continue;
      }
      if (t == "<") {
        const size_t closed = SkipAngles(tokens_, j);
        j = closed == j ? j + 1 : closed;
        continue;
      }
      if (IsIdentToken(tokens_[j]) && t != "final" &&
          !(j + 1 < tokens_.size() && Text(j + 1) == "(")) {
        name = t;
      }
      ++j;
    }
    // Base clause: scan to the body brace.
    while (j < tokens_.size() && Text(j) != "{" && Text(j) != ";") ++j;
    if (j < tokens_.size() && Text(j) == "{") {
      stack_.push_back({Context::kClass, name, -1, -1});
      return j + 1;
    }
    return j < tokens_.size() ? j + 1 : j;
  }

  size_t ParseEnum(size_t i) {
    size_t j = i + 1;
    while (j < tokens_.size() && Text(j) != "{" && Text(j) != ";") ++j;
    if (j < tokens_.size() && Text(j) == "{") {
      stack_.push_back({Context::kEnum, "", -1, -1});
      return j + 1;
    }
    return j < tokens_.size() ? j + 1 : j;
  }

  /// Parses one declaration that may be a function definition: scans forward
  /// for a parameter list `name(...)` and then either `;`/`=...;` (plain
  /// declaration — skipped) or a body `{` (push a function context, walking
  /// any constructor-initializer list to find the real body brace).
  size_t ParseDeclarator(size_t i) {
    std::string name;
    std::string qualifier;
    bool seen_params = false;
    size_t j = i;
    while (j < tokens_.size()) {
      const std::string& t = Text(j);
      if (t == ";") return j + 1;
      if (t == "}") return j;  // Malformed; let the caller pop.
      if (t == "=") return SkipToSemicolon(j);
      if (t == "<") {
        const size_t closed = SkipAngles(tokens_, j);
        j = closed == j ? j + 1 : closed;
        continue;
      }
      if (t == "operator" && !seen_params) {
        size_t k = j + 1;
        std::string symbol;
        // `operator()` is the one case where the symbol itself is parens.
        if (k + 1 < tokens_.size() && Text(k) == "(" && Text(k + 1) == ")") {
          symbol = "()";
          k += 2;
        } else {
          while (k < tokens_.size() && Text(k) != "(" && Text(k) != ";") {
            symbol += Text(k);
            ++k;
          }
        }
        if (k >= tokens_.size() || Text(k) != "(") return SkipToSemicolon(j);
        name = "operator" + symbol;
        seen_params = true;
        j = SkipBalanced(k, "(", ")");
        continue;
      }
      if (t == "(") {
        if (!seen_params && j > i && IsIdentToken(tokens_[j - 1])) {
          name = Text(j - 1);
          if (j >= 2 && Text(j - 2) == "~") name = "~" + name;
          const size_t q = name[0] == '~' ? j - 2 : j - 1;
          if (q >= 2 && Text(q - 1) == "::" && IsIdentToken(tokens_[q - 2])) {
            qualifier = Text(q - 2);
          }
          seen_params = true;
        }
        j = SkipBalanced(j, "(", ")");
        continue;
      }
      if (t == ":" && seen_params) {
        const size_t body = SkipCtorInit(j);
        if (body == 0) return SkipToSemicolon(j);
        j = body;
        continue;  // `Text(j)` is now the body `{`.
      }
      if (t == "{") {
        if (seen_params && !name.empty()) {
          PushFunction(name, qualifier);
          return j + 1;
        }
        // Brace initializer at namespace/class scope: skip it.
        j = SkipBalanced(j, "{", "}");
        continue;
      }
      ++j;
    }
    return j;
  }

  /// From `:` after a parameter list, walks `member(init)` / `member{init}`
  /// items to the body `{`. Returns its index, or 0 on a parse failure.
  size_t SkipCtorInit(size_t colon) {
    size_t j = colon + 1;
    while (j < tokens_.size()) {
      // Member (possibly qualified/templated base-class) name.
      while (j < tokens_.size() &&
             (IsIdentToken(tokens_[j]) || Text(j) == "::")) {
        ++j;
      }
      if (j < tokens_.size() && Text(j) == "<") {
        const size_t closed = SkipAngles(tokens_, j);
        if (closed == j) return 0;
        j = closed;
      }
      if (j >= tokens_.size()) return 0;
      if (Text(j) == "(") {
        j = SkipBalanced(j, "(", ")");
      } else if (Text(j) == "{") {
        // Could be `member{init}` or the body. The body is not followed by
        // a comma-continued initializer; a `member{...}` always is (or is
        // the last item, directly followed by the body brace).
        const size_t after = SkipBalanced(j, "{", "}");
        if (after < tokens_.size() &&
            (Text(after) == "," || Text(after) == "{")) {
          j = after;
        } else {
          return j;  // This brace was the body.
        }
      } else {
        return 0;
      }
      if (j < tokens_.size() && Text(j) == ",") {
        ++j;
        continue;
      }
      if (j < tokens_.size() && Text(j) == "{") return j;
      return 0;
    }
    return 0;
  }

  void PushFunction(const std::string& name, const std::string& qualifier) {
    FunctionInfo function;
    function.base = name;
    function.file = path_;
    const std::string owner =
        !qualifier.empty() ? qualifier : EnclosingClass();
    function.display = owner.empty() ? name : owner + "::" + name;
    functions_->push_back(std::move(function));
    Context context{Context::kFunction, owner,
                    static_cast<int>(functions_->size()) - 1,
                    current_function_};
    current_function_ = context.function;
    stack_.push_back(std::move(context));
  }

  // -- Function-body scanning -------------------------------------------------

  size_t ScanBodyToken(size_t i) {
    const std::string& t = Text(i);
    if (t == "{") {
      if (lambda_bodies_.count(i) > 0) {
        PushLambda(tokens_[i].line);
      } else {
        stack_.push_back({Context::kBlock, "", -1, -1});
      }
      return i + 1;
    }
    if (t == "}") {
      PopContext();
      return i + 1;
    }
    if (t == "[") return ScanBracket(i);
    if ((t == "MutexLock" || t == "CondVarLock") && i + 2 < tokens_.size() &&
        IsIdentToken(tokens_[i + 1]) && Text(i + 2) == "(") {
      return ScanAcquire(i, t == "CondVarLock");
    }
    if (IsIdentToken(tokens_[i]) && i + 1 < tokens_.size() &&
        Text(i + 1) == "(" && NonCalleeKeywords().count(t) == 0) {
      ScanCall(i);
    }
    return i + 1;
  }

  /// `[` in a body: an attribute (skip), a lambda introducer (mark its body
  /// brace so `{` pushes a kLambda context), or a subscript (ignore).
  size_t ScanBracket(size_t i) {
    if (i + 1 < tokens_.size() && Text(i + 1) == "[") {
      return SkipBalanced(i, "[", "]");  // [[attribute]]
    }
    static const std::set<std::string>* before_lambda =
        new std::set<std::string>{"=",  "(", ",", "{",  "}",  ";", ":",
                                  "return", "<", ">", "&&", "||", "?"};
    if (i > 0 && !before_lambda->count(Text(i - 1))) return i + 1;
    size_t j = SkipBalanced(i, "[", "]");
    if (j < tokens_.size() && Text(j) == "(") j = SkipBalanced(j, "(", ")");
    // Specifiers and an optional trailing return type, then the body.
    for (int guard = 0; guard < 32 && j < tokens_.size(); ++guard) {
      const std::string& t = Text(j);
      if (t == "{") {
        lambda_bodies_.insert(j);
        break;
      }
      if (t == "mutable" || t == "noexcept" || t == "constexpr" ||
          t == "->" || t == "::" || t == "*" || t == "&" ||
          IsIdentToken(tokens_[j])) {
        ++j;
        continue;
      }
      if (t == "<") {
        const size_t closed = SkipAngles(tokens_, j);
        if (closed == j) break;
        j = closed;
        continue;
      }
      if (t == "(") {
        j = SkipBalanced(j, "(", ")");
        continue;
      }
      break;  // Not a lambda after all (e.g. an array designator).
    }
    return i + 1;  // Capture-list tokens are rescanned; they are harmless.
  }

  void PushLambda(int line) {
    FunctionInfo function;
    function.base = "";  // Lambdas are not call-matchable by name.
    function.file = path_;
    function.display =
        path_ + ":<lambda@" + std::to_string(line) + ">";
    functions_->push_back(std::move(function));
    Context context{Context::kLambda, EnclosingClass(),
                    static_cast<int>(functions_->size()) - 1,
                    current_function_};
    // The lambda body runs later on another stack: freeze the enclosing
    // held-lock state and start the lambda with none. PopContext restores.
    frozen_held_.push_back(std::move(held_));
    held_.clear();
    current_function_ = context.function;
    stack_.push_back(std::move(context));
  }

  void PopContext() {
    if (stack_.empty()) return;
    const Context context = stack_.back();
    stack_.pop_back();
    if (context.kind == Context::kLambda) {
      held_ = std::move(frozen_held_.back());
      frozen_held_.pop_back();
      current_function_ = context.saved_function;
      return;
    }
    // Drop locks whose scope was the popped block/function.
    while (!held_.empty() && held_.back().depth > stack_.size()) {
      held_.pop_back();
    }
    if (context.kind == Context::kFunction) {
      current_function_ = context.saved_function;
    }
  }

  size_t ScanAcquire(size_t i, bool condvar) {
    const std::string var = Text(i + 1);
    const size_t open = i + 2;
    const size_t close = SkipBalanced(open, "(", ")");
    std::string mutex = ResolveMutexName(open + 1, close - 1);
    if (current_function_ >= 0 && !mutex.empty()) {
      AcquireEvent event;
      event.mutex = mutex;
      event.line = tokens_[i].line;
      event.var = var;
      event.condvar = condvar;
      event.held = HeldNames();
      (*functions_)[current_function_].acquires.push_back(std::move(event));
    }
    if (!mutex.empty()) {
      held_.push_back({mutex, var, condvar, stack_.size()});
    }
    return close;
  }

  /// Qualified node name for the lock expression in tokens [begin, end):
  /// a bare member is prefixed with the enclosing class (or the file path in
  /// free functions); a path expression (`shard.mutex`, `GetRing().mutex`)
  /// is concatenated and prefixed the same way. A leading `this->` is
  /// stripped first so `this->mutex_` and `mutex_` agree.
  std::string ResolveMutexName(size_t begin, size_t end) {
    if (begin + 2 <= end && Text(begin) == "this" &&
        Text(begin + 1) == "->") {
      begin += 2;
    }
    if (begin >= end) return std::string();
    std::string owner;
    for (const auto& context : stack_) {
      if (context.kind == Context::kClass ||
          ((context.kind == Context::kFunction ||
            context.kind == Context::kLambda) &&
           !context.name.empty())) {
        owner = context.name;
      }
    }
    if (owner.empty()) owner = path_;
    std::string expr;
    for (size_t k = begin; k < end && k < tokens_.size(); ++k) {
      expr += Text(k);
    }
    return owner + "::" + expr;
  }

  std::vector<std::string> HeldNames() const {
    std::vector<std::string> names;
    names.reserve(held_.size());
    for (const Held& held : held_) names.push_back(held.mutex);
    return names;
  }

  void ScanCall(size_t i) {
    const std::string& callee = Text(i);
    if (current_function_ >= 0) {
      CallEvent event;
      event.callee = callee;
      event.line = tokens_[i].line;
      event.held = HeldNames();
      (*functions_)[current_function_].calls.push_back(std::move(event));
    }
    if (!discipline_ || held_.empty()) return;
    if (BlockingCalls().count(callee) == 0) return;
    // `lock.Wait(cv, ...)` on the lock's own CondVarLock is the sanctioned
    // wait — but only when no *other* lock is held across it.
    std::vector<std::string> other;
    std::string own;
    if (callee == "Wait" && i >= 2 &&
        (Text(i - 1) == "." || Text(i - 1) == "->") &&
        IsIdentToken(tokens_[i - 2])) {
      own = Text(i - 2);
    }
    for (const Held& held : held_) {
      if (!own.empty() && held.condvar && held.var == own) continue;
      other.push_back(held.mutex);
    }
    if (other.empty()) return;
    std::string held_list;
    for (const std::string& name : other) {
      held_list += (held_list.empty() ? "`" : ", `") + name + "`";
    }
    findings_->push_back(
        {path_, tokens_[i].line, "lock-discipline",
         "blocking call '" + callee + "' while holding " + held_list +
             " — do the blocking work outside the critical section"});
  }

  // -- Small helpers ----------------------------------------------------------

  size_t SkipBalanced(size_t open, const std::string& open_tok,
                      const std::string& close_tok) const {
    int depth = 0;
    for (size_t j = open; j < tokens_.size(); ++j) {
      if (Text(j) == open_tok) ++depth;
      if (Text(j) == close_tok && --depth == 0) return j + 1;
    }
    return tokens_.size();
  }

  size_t SkipToSemicolon(size_t i) const {
    int paren = 0, brace = 0, bracket = 0;
    for (size_t j = i; j < tokens_.size(); ++j) {
      const std::string& t = Text(j);
      if (t == "(") ++paren;
      if (t == ")") --paren;
      if (t == "{") ++brace;
      if (t == "}") {
        --brace;
        if (brace < 0) return j;  // Ran out of our scope.
      }
      if (t == "[") ++bracket;
      if (t == "]") --bracket;
      if (t == ";" && paren <= 0 && brace <= 0 && bracket <= 0) return j + 1;
    }
    return tokens_.size();
  }

  const std::string& path_;
  const std::vector<Token>& tokens_;
  const bool discipline_;
  std::vector<FunctionInfo>* functions_;
  std::vector<Finding>* findings_;

  std::vector<Context> stack_;
  std::vector<Held> held_;
  std::vector<std::vector<Held>> frozen_held_;
  std::set<size_t> lambda_bodies_;
  int current_function_ = -1;
};

// ---- Inter-procedural composition and cycle detection ----------------------

struct AcquireSite {
  std::string file;
  int line = 0;
  std::string function;
};

struct OrderEdge {
  std::string file;
  int line = 0;
  std::string description;
};

using EdgeMap = std::map<std::pair<std::string, std::string>, OrderEdge>;

void AddEdge(EdgeMap* edges, const std::string& from, const std::string& to,
             const std::string& file, int line,
             const std::string& description) {
  OrderEdge& edge = (*edges)[{from, to}];
  if (edge.file.empty()) edge = {file, line, description};  // First witness.
}

/// DFS for a recorded path `from -> ... -> to`; fills `path` with the nodes
/// after `from` (ending with `to`). Deterministic: neighbors visit in map
/// (lexicographic) order.
bool FindPath(const EdgeMap& edges, const std::string& from,
              const std::string& to, std::set<std::string>* visited,
              std::vector<std::string>* path) {
  if (from == to) return true;
  if (!visited->insert(from).second) return false;
  const auto lower = edges.lower_bound({from, std::string()});
  for (auto it = lower; it != edges.end() && it->first.first == from; ++it) {
    path->push_back(it->first.second);
    if (FindPath(edges, it->first.second, to, visited, path)) return true;
    path->pop_back();
  }
  return false;
}

void RunLockOrder(const std::vector<FunctionInfo>& functions,
                  std::vector<Finding>* findings) {
  // Call-matchable functions by base name.
  std::map<std::string, std::vector<size_t>> by_name;
  for (size_t i = 0; i < functions.size(); ++i) {
    if (!functions[i].base.empty()) by_name[functions[i].base].push_back(i);
  }

  // MayAcquire*: every mutex a function may acquire, directly or through
  // any same-named callee, to fixpoint. Keeps the first-seen direct site
  // per mutex as the witness.
  std::vector<std::map<std::string, AcquireSite>> may(functions.size());
  for (size_t i = 0; i < functions.size(); ++i) {
    for (const AcquireEvent& acquire : functions[i].acquires) {
      may[i].emplace(acquire.mutex,
                     AcquireSite{functions[i].file, acquire.line,
                                 functions[i].display});
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < functions.size(); ++i) {
      for (const CallEvent& call : functions[i].calls) {
        const auto targets = by_name.find(call.callee);
        if (targets == by_name.end()) continue;
        for (size_t target : targets->second) {
          if (target == i) continue;
          for (const auto& [mutex, site] : may[target]) {
            if (may[i].emplace(mutex, site).second) changed = true;
          }
        }
      }
    }
  }

  // The global acquisition graph.
  EdgeMap edges;
  for (const FunctionInfo& function : functions) {
    for (const AcquireEvent& acquire : function.acquires) {
      for (const std::string& held : acquire.held) {
        if (held == acquire.mutex) continue;
        AddEdge(&edges, held, acquire.mutex, function.file, acquire.line,
                function.display + " acquires `" + acquire.mutex +
                    "` while holding `" + held + "`");
      }
    }
    for (const CallEvent& call : function.calls) {
      if (call.held.empty()) continue;
      const auto targets = by_name.find(call.callee);
      if (targets == by_name.end()) continue;
      for (size_t target : targets->second) {
        if (functions[target].display == function.display) continue;
        for (const auto& [mutex, site] : may[target]) {
          for (const std::string& held : call.held) {
            if (held == mutex) continue;
            AddEdge(&edges, held, mutex, function.file, call.line,
                    function.display + " calls " + functions[target].display +
                        " (which may acquire `" + mutex + "` at " + site.file +
                        ":" + std::to_string(site.line) +
                        ") while holding `" + held + "`");
          }
        }
      }
    }
  }

  // Every edge that closes a recorded reverse path is a cycle; canonicalize
  // (rotate to the lexicographically smallest node) so each distinct cycle
  // reports exactly once, at its first witness edge.
  std::set<std::string> reported;
  for (const auto& [key, edge] : edges) {
    std::set<std::string> visited;
    std::vector<std::string> back_path;
    if (!FindPath(edges, key.second, key.first, &visited, &back_path)) {
      continue;
    }
    std::vector<std::string> cycle;  // n0 -> n1 -> ... -> n0.
    cycle.push_back(key.first);
    cycle.push_back(key.second);
    for (size_t i = 0; i + 1 < back_path.size(); ++i) {
      cycle.push_back(back_path[i]);
    }
    const size_t smallest =
        std::min_element(cycle.begin(), cycle.end()) - cycle.begin();
    std::rotate(cycle.begin(), cycle.begin() + smallest, cycle.end());
    std::string canonical;
    for (const std::string& node : cycle) canonical += node + "|";
    if (!reported.insert(canonical).second) continue;

    std::string chain;
    const OrderEdge* first_edge = nullptr;
    for (size_t i = 0; i < cycle.size(); ++i) {
      const std::string& from = cycle[i];
      const std::string& to = cycle[(i + 1) % cycle.size()];
      const OrderEdge& witness = edges.at({from, to});
      if (first_edge == nullptr) first_edge = &witness;
      if (!chain.empty()) chain += ", ";
      chain += "`" + from + "` -> `" + to + "` at " + witness.file + ":" +
               std::to_string(witness.line) + " (" + witness.description +
               ")";
    }
    findings->push_back({first_edge->file, first_edge->line, "lock-order",
                         "lock acquisition cycle: " + chain});
  }
}

}  // namespace

std::vector<Finding> RunLockRules(const std::vector<LockRuleInput>& files,
                                  bool order_enabled,
                                  bool discipline_enabled) {
  std::vector<Finding> findings;
  if (!order_enabled && !discipline_enabled) return findings;
  std::vector<FunctionInfo> functions;
  for (const LockRuleInput& file : files) {
    std::vector<Finding> discipline;
    FileScanner scanner(*file.path, *file.tokens, discipline_enabled,
                        &functions, &discipline);
    scanner.Scan();
    for (Finding& finding : discipline) findings.push_back(std::move(finding));
  }
  if (order_enabled) RunLockOrder(functions, &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  return findings;
}

}  // namespace lint
}  // namespace autotune
