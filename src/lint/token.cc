#include "lint/token.h"

namespace autotune {
namespace lint {

std::vector<Token> Tokenize(const std::string& code) {
  std::vector<Token> tokens;
  int line = 1;
  for (size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < code.size() && IsIdentChar(code[j])) ++j;
      tokens.push_back({code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;
      while (j < code.size() && (IsIdentChar(code[j]) || code[j] == '.')) ++j;
      tokens.push_back({code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
      tokens.push_back({"::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
      tokens.push_back({"->", line});
      i += 2;
      continue;
    }
    tokens.push_back({std::string(1, c), line});
    ++i;
  }
  return tokens;
}

bool IsIdentToken(const Token& token) {
  return !token.text.empty() && IsIdentStart(token.text[0]);
}

size_t SkipAngles(const std::vector<Token>& tokens, size_t open) {
  int depth = 0;
  for (size_t i = open; i < tokens.size() && i < open + 64; ++i) {
    const std::string& t = tokens[i].text;
    if (t == "<") ++depth;
    if (t == ">") {
      if (--depth == 0) return i + 1;
    }
    if (t == ";" || t == "{" || t == "}") break;
  }
  return open;
}

}  // namespace lint
}  // namespace autotune
