#ifndef AUTOTUNE_LINT_LOCK_RULES_H_
#define AUTOTUNE_LINT_LOCK_RULES_H_

#include <string>
#include <vector>

#include "lint/token.h"

namespace autotune {
namespace lint {

struct Finding;

/// One linted file as seen by the lock rules: its reporting path and the
/// token stream over the comment/literal/preprocessor-stripped text (the
/// same stream the other token rules consume). Pointers are borrowed and
/// must outlive the `RunLockRules` call.
struct LockRuleInput {
  const std::string* path = nullptr;
  const std::vector<Token>* tokens = nullptr;
};

/// Runs the two lock rules over the whole file set at once:
///
///   lock-order       reconstructs per-function `MutexLock`/`CondVarLock`
///                    acquisition scopes (mutex members resolved by
///                    qualified name), composes them inter-procedurally
///                    along call edges (callees matched by base name) into
///                    one global acquisition graph, and reports every cycle
///                    with a witness chain (`A -> B at f.cc:N, B -> A at
///                    g.cc:M`). Each cycle is one finding, attributed to its
///                    first witness edge, so NOLINT / the baseline apply at
///                    that acquisition site.
///   lock-discipline  flags raw `std::mutex` / `std::lock_guard` /
///                    `.lock()` use outside src/common/mutex.h (the
///                    annotated, sentinel-instrumented wrappers), and
///                    known-blocking calls (condition-variable / future
///                    waits, `Environment::Evaluate`, sleeps, joins, file
///                    flushes) made while a `MutexLock` is in scope.
///
/// The analysis is inter-procedural, so it must see the whole file set
/// (unlike the per-file rules); findings come back sorted by file/line for
/// the caller to merge through the per-file NOLINT filter.
std::vector<Finding> RunLockRules(const std::vector<LockRuleInput>& files,
                                  bool order_enabled,
                                  bool discipline_enabled);

}  // namespace lint
}  // namespace autotune

#endif  // AUTOTUNE_LINT_LOCK_RULES_H_
