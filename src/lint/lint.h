#ifndef AUTOTUNE_LINT_LINT_H_
#define AUTOTUNE_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/table.h"
#include "obs/json.h"

namespace autotune {
namespace lint {

/// One lint violation. `file` is the path as given to the linter
/// (repo-relative when driven by `tools/autotune_lint`), `line` is 1-based.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  /// Renders "file:line: [rule] message" — the grep/editor-friendly format.
  std::string ToString() const;
};

/// The rule names understood by the linter, in reporting order:
///   determinism      ambient randomness / wall clocks outside the sanctioned
///                    shims (src/common/rng.*, the obs timestamp helpers)
///   unchecked-status a call to a Status/Result-returning function used as a
///                    discarded expression statement
///   nodiscard        Status/Result-returning declarations in headers missing
///                    [[nodiscard]]
///   layering         include-graph violations between modules
///   include-hygiene  `using namespace` in headers; missing include guards
///   lock-order       cycles in the global lock-acquisition graph, composed
///                    inter-procedurally from MutexLock/CondVarLock scopes
///                    (each cycle reported with a witness chain)
///   lock-discipline  raw std::mutex/lock_guard/.lock() outside
///                    src/common/mutex.h; blocking calls (waits, Evaluate,
///                    sleeps, joins, flushes) made while a lock is held
const std::vector<std::string>& AllRules();

/// True if `rule` names a known rule.
bool IsKnownRule(const std::string& rule);

/// Token-level linter over a set of source files. Usage:
///   Linter linter;
///   linter.AddFile("src/foo/bar.cc", contents);   // repeat per file
///   std::vector<Finding> findings = linter.Run();
/// `Run` is two-pass: Status/Result-returning function names are collected
/// across every added file first, so `unchecked-status` sees declarations
/// from headers added alongside the implementation files.
class Linter {
 public:
  /// Registers `contents` for linting under path `file` (used both for
  /// reporting and for path-sensitive rules). Files are analyzed in the
  /// order added.
  void AddFile(std::string file, std::string contents);

  /// Restricts `Run` to the given rules (default: all).
  void SetRules(std::vector<std::string> rules);

  /// Lints every added file and returns the findings, ordered by file then
  /// line. Findings on lines carrying `// NOLINT` or `// NOLINT(rule, ...)`
  /// naming the matching rule are dropped (tallied in
  /// `nolint_suppressed()`).
  std::vector<Finding> Run();

  /// Number of findings suppressed by NOLINT comments in the last `Run`.
  int nolint_suppressed() const { return nolint_suppressed_; }

 private:
  struct SourceFile {
    std::string path;
    std::string raw;        ///< Original text.
    std::string code;       ///< Comments and literals blanked.
    std::string code_nopp;  ///< `code` with preprocessor lines blanked too.
    /// line -> rules suppressed on that line ("*" = all).
    std::map<int, std::set<std::string>> nolint;
  };

  bool RuleEnabled(const std::string& rule) const;

  std::vector<SourceFile> files_;
  std::vector<std::string> rules_;
  int nolint_suppressed_ = 0;
};

// ---- Filesystem driver -----------------------------------------------------

/// Recursively collects `.cc` / `.h` files under each of `paths` (a path may
/// also name a single file), resolved against `root`. Returned paths are
/// root-relative with forward slashes, sorted. Directories named `build` or
/// starting with '.' are skipped.
[[nodiscard]] Result<std::vector<std::string>> CollectSourceFiles(
    const std::string& root, const std::vector<std::string>& paths);

/// Reads a whole file. NotFound if it cannot be opened.
[[nodiscard]] Result<std::string> ReadFileToString(const std::string& path);

// ---- Baseline ratchet ------------------------------------------------------

/// Accepted pre-existing debt: (file, rule) -> allowed finding count. The
/// ratchet: findings within the allowance are suppressed; a (file, rule)
/// pair exceeding its allowance reports ALL of its findings (so the
/// offending lines are visible), and new pairs report normally. Counts may
/// only shrink over time — regenerate with `autotune_lint --write-baseline`
/// after paying down debt.
using Baseline = std::map<std::pair<std::string, std::string>, int>;

/// Parses baseline text: one `<count> <rule> <file>` triple per line, '#'
/// comments and blank lines ignored.
[[nodiscard]] Result<Baseline> ParseBaseline(const std::string& text);

/// Serializes a baseline in the `ParseBaseline` format (sorted, with a
/// header comment).
std::string SerializeBaseline(const Baseline& baseline);

/// Collapses findings into their (file, rule) counts.
Baseline BaselineFromFindings(const std::vector<Finding>& findings);

/// Applies the ratchet described at `Baseline`; `suppressed` (optional)
/// receives the number of findings absorbed by the allowance.
std::vector<Finding> ApplyBaseline(const std::vector<Finding>& findings,
                                   const Baseline& baseline,
                                   int* suppressed = nullptr);

// ---- Reporting -------------------------------------------------------------

/// {"findings": [{"file", "line", "rule", "message"}, ...],
///  "counts": {rule: n, ...}, "total": n,
///  "nolint_suppressed": n, "baseline_suppressed": n}
/// All strings pass through obs::Json, which escapes quotes, backslashes,
/// and control characters — pathological paths/messages stay valid JSON.
obs::Json FindingsToJson(const std::vector<Finding>& findings,
                         int nolint_suppressed = 0,
                         int baseline_suppressed = 0);

/// Per-rule summary table (rule | findings) for the human report.
Table SummaryTable(const std::vector<Finding>& findings);

}  // namespace lint
}  // namespace autotune

#endif  // AUTOTUNE_LINT_LINT_H_
