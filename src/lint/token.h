#ifndef AUTOTUNE_LINT_TOKEN_H_
#define AUTOTUNE_LINT_TOKEN_H_

#include <cctype>
#include <string>
#include <vector>

/// The shared token layer under the lint rules: a flat token stream over
/// comment/literal-stripped source (see `StripCommentsAndLiterals` in
/// lint.cc), with line numbers preserved. Split out of lint.cc so the
/// lock-graph rules (lock_rules.cc) can share one tokenizer.
namespace autotune {
namespace lint {

inline bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

inline bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

struct Token {
  std::string text;
  int line = 0;
};

/// Splits stripped code into identifiers, numbers, `::`, `->`, and single
/// punctuation characters. Whitespace (and the blanks left by stripping)
/// separates tokens.
std::vector<Token> Tokenize(const std::string& code);

[[nodiscard]] bool IsIdentToken(const Token& token);

/// From `tokens[open]` == "<", returns the index one past the matching ">"
/// (or `open` if the angles never close sanely — treat as "not a template").
[[nodiscard]] size_t SkipAngles(const std::vector<Token>& tokens, size_t open);

}  // namespace lint
}  // namespace autotune

#endif  // AUTOTUNE_LINT_TOKEN_H_
