#ifndef AUTOTUNE_SERVICE_CONTROL_PLANE_H_
#define AUTOTUNE_SERVICE_CONTROL_PLANE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "service/experiment_manager.h"

namespace autotune {
namespace service {

/// Live control plane for a `serve` shard: dynamic tenant admission over
/// HTTP, durable tenant registry on disk, and lease-based failover across
/// N shard processes sharing one `--journal-dir`.
///
/// On-disk layout (all inside `journal_dir`, all writes tmp + rename):
///   <name>.spec.json    the tenant's raw spec key/value map — the durable
///                       registry. Recovery replays THIS set, not whatever
///                       flags the process was started with.
///   <name>.lease.json   {"owner", "fence", "ts_ms"} — which shard owns the
///                       tenant. The owner re-stamps ts_ms every tick
///                       (heartbeat); a lease whose ts_ms is older than
///                       `lease_timeout_ms` is up for adoption. `fence`
///                       increments on every ownership change.
///   <name>.jsonl        the tenant's journal (owned by the manager).
///
/// Fencing: every owned tenant carries a shared health block (an atomic
/// fenced flag plus the timestamp of the last confirmed heartbeat) that the
/// tenant journal's write gate reads (`obs::Journal::SetWriteGate`). A
/// shard that is deposed — or merely fails to confirm a heartbeat within
/// the lease timeout — stops being able to append to the journal *before*
/// a survivor is allowed to adopt it, so the adopted journal never grows
/// bytes the new owner didn't see. Lease transitions themselves are
/// serialized through an exclusive flock on `<journal_dir>/.leases.lock`,
/// so two shards can never both confirm the same acquisition.
///
/// Lock order: the control-plane mutex sits ABOVE the manager
/// (control_plane -> manager -> pool -> leaves) and is only held for
/// registry bookkeeping — never across file I/O or manager calls.
class ControlPlane {
 public:
  /// One row of the shard endpoint registry (`<shard_id>.shard.json`):
  /// where a shard's HTTP endpoint lives, and when it last heartbeated.
  /// A shard that died without cleanup leaves its file behind with an aging
  /// `ts_ms` — the fleet view renders it as stale rather than erroring.
  struct ShardInfo {
    std::string shard_id;
    std::string host;
    int port = 0;
    int64_t ts_ms = 0;  ///< Last heartbeat (epoch ms).
  };
  /// Builds an `ExperimentSpec` from a raw spec key/value map (the same
  /// keys as the CLI `--experiment` spec string, e.g. name/weight/seed/
  /// cost_budget/deadline_ms/warmstart). The control plane owns
  /// `journal_path` and `journal_gate` — values the factory sets for those
  /// are overwritten. InvalidArgument for malformed specs.
  using SpecFactory = std::function<Result<ExperimentSpec>(
      const std::map<std::string, std::string>& keys)>;

  struct Options {
    /// Shared durable directory: specs, leases, and journals (required).
    std::string journal_dir;
    /// Unique id of this shard process (required; e.g. "shard-0.<pid>").
    /// Appears as the lease "owner" and in log lines.
    std::string shard_id;
    /// A lease whose heartbeat is older than this is adoptable. The owner
    /// self-fences journal writes at the same threshold, so adoption and
    /// fencing can never overlap.
    int64_t lease_timeout_ms = 10000;
    /// Heartbeat/adoption tick period; 0 derives `lease_timeout_ms / 3`.
    int64_t tick_interval_ms = 0;
    /// Start the background tick thread. Tests drive `TickOnce()` manually.
    bool start_tick_thread = true;
  };

  /// One tick's worth of registry work (returned for tests and logging).
  struct TickReport {
    int heartbeats = 0;  ///< Owned leases successfully re-stamped.
    int adopted = 0;     ///< Orphaned tenants taken over (journal replayed).
    int deposed = 0;     ///< Own tenants lost to another shard (abandoned).
    int evicted = 0;     ///< Own tenants whose spec file vanished (cancelled).
  };

  /// Validates options, creates `journal_dir` if missing, and — when
  /// `start_tick_thread` — starts heartbeating. Does NOT adopt existing
  /// tenants by itself; call `RecoverAll()` (startup) or let the tick
  /// thread adopt orphans as their leases expire.
  [[nodiscard]] static Result<std::unique_ptr<ControlPlane>> Start(
      ExperimentManager* manager, SpecFactory make_spec, Options options);

  /// Stops the tick thread. Owned leases are left to expire so a surviving
  /// shard adopts them (a clean handoff journals nothing — the journal is
  /// the tenant's state, the lease only names its operator).
  ~ControlPlane();

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// POST /experiments: admits one tenant from a JSON object body (same
  /// keys as the CLI spec string). Persists the spec file, acquires the
  /// lease, and `AddExperiment`s into the running manager — which resumes
  /// from the tenant's journal if one exists, so re-admitting a crashed
  /// tenant is safe. InvalidArgument for malformed bodies/specs,
  /// FailedPrecondition when the name is already admitted here or leased
  /// by a live shard.
  [[nodiscard]] Status Admit(const std::string& body) EXCLUDES(mutex_);

  /// DELETE /experiments/<name>: cancels the tenant (finalizing its
  /// journal) and removes its spec + lease files. Works from any shard: a
  /// non-owner removes the spec file and the owner's next tick cancels the
  /// tenant locally. Idempotent — deleting an already-finished tenant is
  /// OK; NotFound only when nothing by that name exists here or on disk.
  [[nodiscard]] Status Evict(const std::string& name) EXCLUDES(mutex_);

  /// Startup recovery: adopts every tenant in the durable registry whose
  /// lease is free or expired (journal replay restores each one
  /// bit-exactly). Returns the number adopted.
  [[nodiscard]] Result<int> RecoverAll() EXCLUDES(mutex_);

  /// One synchronous control-plane tick: heartbeat owned leases (detecting
  /// deposition), cancel tenants whose spec file vanished, adopt orphans,
  /// and run the manager's budget/deadline expiry sweep.
  TickReport TickOnce() EXCLUDES(mutex_);

  /// Names of tenants this shard currently operates (sorted).
  std::vector<std::string> OwnedTenants() const EXCLUDES(mutex_);

  /// Publishes this shard's HTTP endpoint into the registry
  /// (`<shard_id>.shard.json`, tmp + rename). Called by `serve` AFTER the
  /// HTTP server is up (the port is only known then); the tick thread
  /// re-stamps the heartbeat from then on, and a clean shutdown removes the
  /// file. A kill -9 leaves it behind with an aging ts_ms — exactly the
  /// "stale shard" signal /fleet/statusz renders.
  void AnnounceEndpoint(const std::string& host, int port) EXCLUDES(mutex_);

  /// Reads every `*.shard.json` in `dir` (sorted by shard id). Malformed
  /// files are skipped — discovery must degrade, not fail.
  static std::vector<ShardInfo> ListShards(const std::string& dir);

  const Options& options() const { return options_; }

 private:
  /// Per-tenant fencing state shared with the journal write gate. The gate
  /// lambda holds the shared_ptr, so the block outlives both the registry
  /// entry and the journal that consults it.
  struct LeaseHealth {
    std::atomic<bool> fenced{false};
    /// Epoch ms of the last heartbeat confirmed under the flock. The write
    /// gate rejects appends once this is older than the lease timeout.
    std::atomic<int64_t> confirmed_ms{0};
    /// Fence value this shard acquired with (stable while owned). Atomic
    /// because admission publishes it under the directory flock while the
    /// tick thread may already hold the health block through the registry.
    std::atomic<int64_t> fence{0};
  };

  struct Tenant {
    std::shared_ptr<LeaseHealth> health;
  };

  ControlPlane(ExperimentManager* manager, SpecFactory make_spec,
               Options options);

  /// Admission core shared by Admit/RecoverAll/adoption: acquires the
  /// lease, wires journal path + write gate, and hands the spec to the
  /// manager. `keys` is the raw spec map (already validated to have a
  /// well-formed name); the caller must already hold the tenant's registry
  /// placeholder. `persist_spec` writes `<name>.spec.json` (fresh
  /// admission) — recovery and adoption read the existing file instead.
  [[nodiscard]] Status AdmitTenant(
      const std::string& name,
      const std::map<std::string, std::string>& keys, bool persist_spec)
      EXCLUDES(mutex_);

  /// Deletes the lease file iff this shard still owns it at `fence`
  /// (serialized through the directory flock).
  void ReleaseLease(const std::string& name, int64_t fence);

  void TickLoop();

  /// Re-writes `<shard_id>.shard.json` with a fresh heartbeat if
  /// `AnnounceEndpoint` has been called (every tick).
  void HeartbeatShardFile() EXCLUDES(mutex_);

  std::string SpecPath(const std::string& name) const;
  std::string LeasePath(const std::string& name) const;
  std::string ShardPath() const;

  ExperimentManager* manager_;
  SpecFactory make_spec_;
  Options options_;

  /// Above the manager mutex in the lock order; guards only the registry
  /// map and shutdown flag (never held across I/O or manager calls).
  mutable Mutex mutex_{"service.control_plane"};
  std::condition_variable cv_;
  std::map<std::string, Tenant> tenants_ GUARDED_BY(mutex_);
  bool stopping_ GUARDED_BY(mutex_) = false;

  /// HTTP endpoint published via AnnounceEndpoint ("" / 0 = not announced).
  std::string announce_host_ GUARDED_BY(mutex_);
  int announce_port_ GUARDED_BY(mutex_) = 0;

  std::thread tick_thread_;
};

}  // namespace service
}  // namespace autotune

#endif  // AUTOTUNE_SERVICE_CONTROL_PLANE_H_
