#ifndef AUTOTUNE_SERVICE_EXPERIMENT_MANAGER_H_
#define AUTOTUNE_SERVICE_EXPERIMENT_MANAGER_H_

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/trace_context.h"
#include "obs/journal.h"
#include "obs/json.h"
#include "service/experiment.h"

namespace autotune {
namespace service {

/// Multi-experiment tuning service: runs N concurrent journaled tuning
/// sessions over ONE shared `ThreadPool`, scheduling at trial granularity.
///
/// Scheduling is weighted fair share (stride scheduling): each experiment
/// carries a virtual time that advances by `1 / weight` per completed trial,
/// and the dispatcher always hands the next free worker slot to the runnable
/// experiment with the smallest virtual time. At most one trial of any
/// experiment is in flight at a time, so each `TuningLoop` only ever runs on
/// one thread — experiments are isolated by construction (own environment,
/// optimizer, runner, journal) and a fault-injected tenant degrades without
/// touching its neighbors' state or budget share.
///
/// Experiments with a journal path are durable: kill the process, construct
/// a new manager, `AddExperiment` the same specs, and every unfinished
/// session resumes bit-exactly (from its last `optimizer_snapshot`
/// checkpoint when present, via linear replay otherwise); sessions whose
/// journal already ends in `experiment_finished` are reported finished and
/// not re-run.
///
/// Thread-safety: all public methods are safe to call from any thread,
/// including the HTTP scrape handler. One manager mutex guards the registry
/// and scheduler state; each experiment's tuning stack (loop, optimizer,
/// runner, environment) is touched only by the thread currently holding
/// that experiment's in-flight token, never under the manager mutex while
/// evaluating.
class ExperimentManager {
 public:
  struct Options {
    /// Cap on concurrently executing trials across ALL experiments;
    /// 0 means `pool->num_threads()`.
    size_t max_concurrent_trials = 0;
  };

  /// `pool` must outlive the manager and is shared: the manager never owns
  /// its workers and other subsystems may submit to it too.
  ExperimentManager(ThreadPool* pool, Options options);
  explicit ExperimentManager(ThreadPool* pool)
      : ExperimentManager(pool, Options()) {}

  /// Waits for in-flight trials to drain, then tears down. Experiments not
  /// yet terminal are left wherever their journal puts them — a later
  /// manager can resume them.
  ~ExperimentManager();

  ExperimentManager(const ExperimentManager&) = delete;
  ExperimentManager& operator=(const ExperimentManager&) = delete;

  /// Registers (and starts scheduling) one experiment. Builds the
  /// environment/optimizer from the spec's factories, opens the journal,
  /// and — if the journal already holds an unfinished session — resumes it.
  /// InvalidArgument for malformed specs, FailedPrecondition for duplicate
  /// names; journal corruption propagates.
  [[nodiscard]] Status AddExperiment(ExperimentSpec spec) EXCLUDES(mutex_);

  /// Stops dispatching new trials for the experiment; its in-flight trial
  /// (if any) completes normally. Idempotent; FailedPrecondition once
  /// terminal.
  [[nodiscard]] Status Pause(const std::string& name) EXCLUDES(mutex_);

  /// Resumes a paused experiment. Its virtual time is caught up to the
  /// current minimum so a long pause does not entitle it to a burst of
  /// make-up trials. Idempotent; FailedPrecondition once terminal.
  [[nodiscard]] Status Resume(const std::string& name) EXCLUDES(mutex_);

  /// Cancels the experiment: no further trials are dispatched, the session
  /// is finalized (experiment_finished journaled, so a restart will not
  /// resume it) and its result becomes available. Idempotent. The in-flight
  /// trial (if any) is cooperatively preempted through the experiment's
  /// cancellation token, so cancellation lands within one retry attempt,
  /// not one full trial.
  [[nodiscard]] Status Cancel(const std::string& name) EXCLUDES(mutex_);

  /// Budget/deadline sweep: transitions every over-budget or past-deadline
  /// experiment to `kExpired` (journaling `budget_exhausted` /
  /// `deadline_exceeded`), preempting in-flight trials via their
  /// cancellation tokens. The same checks run at every trial boundary; this
  /// entry point exists so a control-plane tick can expire tenants that are
  /// idle, paused, or stuck in one long trial.
  void EnforceExpiry() EXCLUDES(mutex_);

  /// Drops the experiment WITHOUT finalizing it: no `experiment_finished`
  /// is journaled, so another process can adopt the journal and resume the
  /// session. Used on lease loss (shard failover — the tenant now belongs
  /// to someone else). The in-flight trial, if any, is preempted via the
  /// cancellation token and the entry is reaped when it completes; the
  /// journal write gate (see `obs::Journal::SetWriteGate`) is what keeps
  /// the preempted trial's late events out of the adopted journal.
  /// NotFound for unknown names; otherwise OK (asynchronous when a trial is
  /// in flight).
  [[nodiscard]] Status Abandon(const std::string& name) EXCLUDES(mutex_);

  /// Blocks until every experiment is finished or cancelled and no trial is
  /// in flight. Paused experiments never finish on their own — resume or
  /// cancel them first.
  void WaitAll() EXCLUDES(mutex_);

  /// The finalized result. FailedPrecondition while the experiment is still
  /// running (or was finished in a *previous* process, where only the
  /// journal — not the in-memory result — survives); NotFound for unknown
  /// names.
  [[nodiscard]] Result<TuningResult> ResultOf(const std::string& name) const
      EXCLUDES(mutex_);

  /// Point-in-time status of one experiment / all experiments (sorted by
  /// name).
  [[nodiscard]] Result<ExperimentStatus> StatusOf(
      const std::string& name) const EXCLUDES(mutex_);
  std::vector<ExperimentStatus> Snapshot() const EXCLUDES(mutex_);

  /// {"experiments": [...], "scheduler": {...}} — the GET /experiments
  /// payload (scheduler block includes the shared pool's stats).
  obs::Json StatusJson() const EXCLUDES(mutex_);

  /// {"name": ..., "trials": [...]} — the GET /experiments/<name>/trials
  /// payload: the most recent per-trial decision records (bounded ring,
  /// newest last), each with decision provenance and phase latencies.
  /// NotFound for unknown names.
  [[nodiscard]] Result<obs::Json> TrialsJson(const std::string& name) const
      EXCLUDES(mutex_);

  ThreadPool* pool() const { return pool_; }
  size_t max_concurrent_trials() const { return max_concurrent_; }

 private:
  /// One managed experiment. The manager mutex guards the scheduler fields
  /// (`state`, `in_flight`, `virtual_time`) and the cached progress mirror;
  /// the tuning stack below them is owned by whichever thread holds the
  /// in-flight token (handed off through the mutex, so access is ordered).
  struct Experiment {
    ExperimentSpec spec;

    ExperimentState state = ExperimentState::kRunning;
    bool in_flight = false;
    bool resumed = false;
    double virtual_time = 0.0;
    std::string message;

    /// Cooperative preemption signal, wired into the runner's options so
    /// Cancel / expiry / lease loss stops the in-flight trial at its next
    /// repetition or retry boundary. Never reset — terminal is terminal.
    CancellationToken cancel_token;

    /// Absolute deadline (epoch ms; 0 = none), anchored at admission — or
    /// at the journal's `experiment_started` timestamp when resuming.
    int64_t deadline_at_ms = 0;

    /// Expiry journal event ("budget_exhausted" / "deadline_exceeded")
    /// awaiting the finalizer, which writes it outside the manager mutex.
    const char* pending_expiry = nullptr;

    /// Lease loss: reap this entry (no finalization) once its in-flight
    /// trial completes.
    bool abandoning = false;

    std::unique_ptr<Environment> env;
    std::unique_ptr<Optimizer> optimizer;
    std::unique_ptr<TrialRunner> runner;
    std::unique_ptr<obs::Journal> journal;
    std::unique_ptr<TuningLoop> loop;
    std::optional<TuningResult> result;

    /// Mirror of the loop's progress accessors, refreshed under the manager
    /// mutex after every trial so status readers never touch the loop.
    bool loop_done = false;
    int trials_run = 0;
    int replayed_trials = 0;
    int failed_trials = 0;
    int64_t faults = 0;  ///< Runner retries + timeouts.
    double total_cost = 0.0;
    std::optional<double> best_objective;
    bool degraded = false;
    bool warm_started = false;  ///< Knowledge-base replay seeded the optimizer.
    int warm_samples = 0;

    /// Trace identity: every trial of this experiment runs under this
    /// context, so the Chrome trace export groups the whole tenant into one
    /// process/tree. Written once in AddExperiment, immutable afterwards.
    TraceContext trace;
    int64_t trace_start_ns = 0;
    bool trace_finalized = false;  ///< Root span recorded (manager mutex).

    /// Most recent trial_decision events (manager mutex; bounded ring,
    /// newest last) — drained from the loop after each trial and served by
    /// GET /experiments/<name>/trials.
    std::deque<obs::Json> recent_decisions;
  };

  static bool IsTerminal(ExperimentState state) {
    return state == ExperimentState::kCancelled ||
           state == ExperimentState::kFinished ||
           state == ExperimentState::kExpired;
  }

  /// Dispatches trials to free worker slots: repeatedly picks the runnable
  /// experiment with the smallest virtual time (ties broken by name) and
  /// submits one StepTrial task for it.
  void PumpLocked() REQUIRES(mutex_);

  /// Worker-task body: runs exactly one trial of `e`, then updates
  /// scheduler state and finalizes the experiment if it became terminal.
  void RunOneTrial(Experiment* e) EXCLUDES(mutex_);

  /// "budget_exhausted" / "deadline_exceeded" if `e` is over its budget or
  /// past its deadline at `now_ms`, nullptr otherwise.
  const char* ExpiryKindLocked(const Experiment& e, int64_t now_ms) const
      REQUIRES(mutex_);

  /// Transitions `e` to kExpired: records the pending journal event and
  /// fires the cancellation token so an in-flight trial preempts.
  void BeginExpiryLocked(Experiment* e, const char* kind) REQUIRES(mutex_);

  /// Writes the pending `budget_exhausted` / `deadline_exceeded` event (if
  /// any) with honest cost/deadline figures, then clears it. Caller must
  /// own the tuning stack and must NOT hold the manager mutex.
  void JournalPendingExpiry(Experiment* e);

  /// Shared finalization tail (Cancel, expiry, natural completion). The
  /// caller must hold `e`'s in-flight token; runs Finish() OUTSIDE the
  /// manager mutex (it may re-evaluate the incumbent), journals the pending
  /// expiry event first, then re-locks to store the result and release the
  /// token.
  void FinalizeWithToken(Experiment* e) EXCLUDES(mutex_);

  /// Smallest virtual time among experiments still competing for workers
  /// (0 when none) — the catch-up point for added/unpaused experiments.
  double MinActiveVirtualTimeLocked() const REQUIRES(mutex_);

  /// Copies the loop's progress accessors into the cached mirror. Caller
  /// must hold the experiment's in-flight token (or otherwise own the
  /// loop).
  void SyncProgressLocked(Experiment* e) REQUIRES(mutex_);

  ExperimentStatus StatusOfLocked(const Experiment& e) const
      REQUIRES(mutex_);

  /// Records the experiment's synthetic root span (parent of all its trial
  /// spans) into the trace buffer, once, when the experiment turns terminal.
  void FinalizeTraceLocked(Experiment* e) REQUIRES(mutex_);

  /// Publishes scheduler + pool gauges to the global metrics registry.
  void UpdateGaugesLocked() REQUIRES(mutex_);

  ThreadPool* pool_;
  size_t max_concurrent_;

  mutable Mutex mutex_{"service.experiment_manager"};
  std::condition_variable cv_;
  std::map<std::string, std::unique_ptr<Experiment>> experiments_
      GUARDED_BY(mutex_);
  size_t in_flight_count_ GUARDED_BY(mutex_) = 0;
  bool shutting_down_ GUARDED_BY(mutex_) = false;
};

}  // namespace service
}  // namespace autotune

#endif  // AUTOTUNE_SERVICE_EXPERIMENT_MANAGER_H_
