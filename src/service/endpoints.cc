#include "service/endpoints.h"

#include "obs/metrics.h"
#include "obs/prometheus.h"

namespace autotune {
namespace service {

HttpServer::Handler MakeServiceHandler(ExperimentManager* manager) {
  return [manager](const std::string& path) {
    HttpResponse response;
    if (path == "/metrics") {
      // Prometheus scrapes declare version=0.0.4 in Accept; serving it in
      // Content-Type lets strict scrapers parse without content sniffing.
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = obs::RenderPrometheus(obs::MetricsRegistry::Global());
    } else if (path == "/experiments") {
      if (manager == nullptr) {
        response.status = 404;
        response.body = "no experiment manager attached\n";
      } else {
        response.content_type = "application/json";
        response.body = manager->StatusJson().Pretty();
        response.body += "\n";
      }
    } else if (path == "/healthz" || path == "/") {
      response.body = "ok\n";
    } else {
      response.status = 404;
      response.body = "not found (try /metrics, /experiments, /healthz)\n";
    }
    return response;
  };
}

}  // namespace service
}  // namespace autotune
