#include "service/endpoints.h"

#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/journal.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "service/statusz.h"
#include "transfer/knowledge_base.h"

namespace autotune {
namespace service {

namespace {

/// JSON error payload, so API clients can always parse the body of a JSON
/// route — success or failure — without sniffing.
HttpResponse JsonError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body =
      obs::Json(obs::Json::Object{{"error", message}}).Dump() + "\n";
  return response;
}

/// "1.5,2,-3e1" -> {1.5, 2, -30}. InvalidArgument on any unparseable piece.
Result<std::vector<double>> ParseEmbedding(const std::string& text) {
  std::vector<double> values;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    const std::string piece = text.substr(begin, end - begin);
    begin = end + 1;
    if (piece.empty()) {
      return Status::InvalidArgument("empty component in embedding");
    }
    char* parse_end = nullptr;
    const double value = std::strtod(piece.c_str(), &parse_end);
    if (parse_end == piece.c_str() || *parse_end != '\0') {
      return Status::InvalidArgument("bad embedding component '" + piece +
                                     "'");
    }
    values.push_back(value);
    if (end == text.size()) break;
  }
  return values;
}

/// Status -> HTTP for the control-plane mutations. FailedPrecondition is
/// the repo's "already exists / owned elsewhere" code, hence 409.
int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kUnavailable:
      return 503;
    default:
      return 500;
  }
}

HttpResponse HandleWarmStart(const HttpRequest& request,
                             const kb::KnowledgeStore* store) {
  if (store == nullptr) {
    return JsonError(404, "no knowledge store attached (serve --kb-dir)");
  }
  const std::map<std::string, std::string> params = request.QueryParams();

  std::vector<double> embedding;
  const auto embedding_it = params.find("embedding");
  const auto workload_it = params.find("workload");
  if (embedding_it != params.end()) {
    Result<std::vector<double>> parsed = ParseEmbedding(embedding_it->second);
    if (!parsed.ok()) return JsonError(400, parsed.status().message());
    embedding = std::move(*parsed);
  } else if (workload_it != params.end()) {
    Result<std::vector<double>> resolved =
        kb::EmbeddingForWorkload(workload_it->second);
    if (!resolved.ok()) return JsonError(400, resolved.status().message());
    embedding = std::move(*resolved);
  } else {
    return JsonError(
        400, "missing query parameter: embedding=v1,v2,... or workload=name");
  }

  transfer::WarmStartPolicy policy;
  int k = 3;
  const auto k_it = params.find("k");
  if (k_it != params.end()) k = std::atoi(k_it->second.c_str());
  const auto good_it = params.find("good");
  if (good_it != params.end()) {
    policy.good_samples = std::atoi(good_it->second.c_str());
  }
  const auto quantile_it = params.find("quantile");
  if (quantile_it != params.end()) {
    policy.poor_quantile = std::atof(quantile_it->second.c_str());
  }
  if (k <= 0 || policy.good_samples < 0 || policy.poor_quantile < 0.0 ||
      policy.poor_quantile > 1.0) {
    return JsonError(400, "bad k/good/quantile parameter");
  }

  Result<obs::Json> payload = store->WarmStartJson(embedding, policy, k);
  if (!payload.ok()) return JsonError(404, payload.status().message());
  HttpResponse response;
  response.content_type = "application/json";
  response.body = payload->Pretty() + "\n";
  return response;
}

}  // namespace

HttpServer::Handler MakeServiceHandler(ExperimentManager* manager,
                                       const kb::KnowledgeStore* store,
                                       ControlPlane* control,
                                       FleetMonitor* monitor) {
  return [manager, store, control, monitor](const HttpRequest& request) {
    const std::string& path = request.path;
    HttpResponse response;

    // Mutations first: the control plane is the only writer surface.
    if (request.method == "POST") {
      if (path != "/experiments") {
        return JsonError(404, "POST is only supported on /experiments");
      }
      if (control == nullptr) {
        return JsonError(404,
                         "no control plane attached (serve --journal-dir "
                         "enables dynamic admission)");
      }
      const Status admitted = control->Admit(request.body);
      if (!admitted.ok()) {
        return JsonError(HttpStatusFor(admitted), admitted.message());
      }
      response.content_type = "application/json";
      response.body =
          obs::Json(obs::Json::Object{{"admitted", true}}).Dump() + "\n";
      return response;
    }
    if (request.method == "DELETE") {
      const std::string prefix = "/experiments/";
      if (path.rfind(prefix, 0) != 0 ||
          path.size() == prefix.size() ||
          path.find('/', prefix.size()) != std::string::npos) {
        return JsonError(404, "DELETE expects /experiments/<name>");
      }
      if (control == nullptr) {
        return JsonError(404,
                         "no control plane attached (serve --journal-dir "
                         "enables dynamic admission)");
      }
      const std::string name = path.substr(prefix.size());
      const Status evicted = control->Evict(name);
      if (!evicted.ok()) {
        return JsonError(HttpStatusFor(evicted), evicted.message());
      }
      response.content_type = "application/json";
      response.body = obs::Json(obs::Json::Object{{"evicted", name}})
                          .Dump() +
                      "\n";
      return response;
    }

    if (path == "/metrics") {
      // Prometheus scrapes declare version=0.0.4 in Accept; serving it in
      // Content-Type lets strict scrapers parse without content sniffing.
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = obs::RenderPrometheus(obs::MetricsRegistry::Global());
    } else if (path == "/metrics/history") {
      if (monitor == nullptr) {
        return JsonError(404,
                         "no fleet monitor attached (serve --health-tick-ms "
                         "enables retained metric history)");
      }
      const std::map<std::string, std::string> params =
          request.QueryParams();
      const auto name_it = params.find("name");
      const std::string name =
          name_it != params.end() ? name_it->second : "";
      int64_t window_ms = monitor->options().window_ms;
      const auto window_it = params.find("window");
      if (window_it != params.end()) {
        window_ms = std::atoll(window_it->second.c_str());
        if (window_ms <= 0) {
          return JsonError(400, "window must be a positive ms count");
        }
      }
      const Result<obs::Json> history =
          monitor->store().HistoryJson(name, window_ms, obs::NowEpochMs());
      if (!history.ok()) {
        return JsonError(HttpStatusFor(history.status()),
                         history.status().message());
      }
      response.content_type = "application/json";
      response.body = history->Dump() + "\n";
    } else if (path == "/alerts") {
      if (monitor == nullptr) {
        return JsonError(404, "no fleet monitor attached");
      }
      response.content_type = "application/json";
      response.body = monitor->health().ToJson().Pretty() + "\n";
    } else if (path == "/statusz" || path == "/statusz.json") {
      const std::string shard_id =
          control != nullptr ? control->options().shard_id : "local";
      const int64_t now_ms = obs::NowEpochMs();
      const obs::Json local =
          LocalStatuszJson(manager, monitor, shard_id, now_ms);
      if (path == "/statusz.json") {
        response.content_type = "application/json";
        response.body = local.Pretty() + "\n";
      } else {
        response.content_type = "text/html; charset=utf-8";
        response.body = RenderStatuszHtml(local, now_ms);
      }
    } else if (path == "/fleet/statusz" || path == "/fleet/alerts") {
      // Peers are fetched over HTTP with per-peer timeouts; the own shard
      // is served from local state (self-HTTP would deadlock the accept
      // thread).
      const int64_t now_ms = obs::NowEpochMs();
      const std::vector<FleetShard> shards =
          GatherFleet(manager, monitor, control, now_ms);
      if (path == "/fleet/alerts") {
        response.content_type = "application/json";
        response.body = FleetAlertsJson(shards).Pretty() + "\n";
      } else {
        response.content_type = "text/html; charset=utf-8";
        response.body = RenderFleetHtml(shards, now_ms);
      }
    } else if (path == "/experiments") {
      if (manager == nullptr) {
        return JsonError(404, "no experiment manager attached");
      }
      response.content_type = "application/json";
      response.body = manager->StatusJson().Pretty();
      response.body += "\n";
    } else if (path.rfind("/experiments/", 0) == 0) {
      // /experiments/<name>/trials — recent per-trial decision records.
      const std::string rest = path.substr(std::string("/experiments/").size());
      const size_t slash = rest.find('/');
      const std::string name = rest.substr(0, slash);
      const std::string sub =
          slash == std::string::npos ? "" : rest.substr(slash);
      if (sub != "/trials") {
        return JsonError(404, "unknown experiment endpoint '" + path +
                                  "' (try /experiments/<name>/trials)");
      }
      if (manager == nullptr) {
        return JsonError(404, "no experiment manager attached");
      }
      Result<obs::Json> trials = manager->TrialsJson(name);
      if (!trials.ok()) {
        return JsonError(404, trials.status().message());
      }
      response.content_type = "application/json";
      response.body = trials->Pretty();
      response.body += "\n";
    } else if (path == "/warmstart") {
      return HandleWarmStart(request, store);
    } else if (path == "/healthz" || path == "/") {
      response.body = "ok\n";
    } else {
      response.status = 404;
      response.body =
          "not found (try /metrics, /metrics/history, /experiments, "
          "/experiments/<name>/trials, /warmstart, /alerts, /statusz, "
          "/fleet/statusz, /fleet/alerts, /healthz)\n";
    }
    return response;
  };
}

}  // namespace service
}  // namespace autotune
