#include "service/endpoints.h"

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"

namespace autotune {
namespace service {

namespace {

/// JSON error payload, so API clients can always parse the body of a JSON
/// route — success or failure — without sniffing.
HttpResponse JsonError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body =
      obs::Json(obs::Json::Object{{"error", message}}).Dump() + "\n";
  return response;
}

}  // namespace

HttpServer::Handler MakeServiceHandler(ExperimentManager* manager) {
  return [manager](const std::string& path) {
    HttpResponse response;
    if (path == "/metrics") {
      // Prometheus scrapes declare version=0.0.4 in Accept; serving it in
      // Content-Type lets strict scrapers parse without content sniffing.
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = obs::RenderPrometheus(obs::MetricsRegistry::Global());
    } else if (path == "/experiments") {
      if (manager == nullptr) {
        return JsonError(404, "no experiment manager attached");
      }
      response.content_type = "application/json";
      response.body = manager->StatusJson().Pretty();
      response.body += "\n";
    } else if (path.rfind("/experiments/", 0) == 0) {
      // /experiments/<name>/trials — recent per-trial decision records.
      const std::string rest = path.substr(std::string("/experiments/").size());
      const size_t slash = rest.find('/');
      const std::string name = rest.substr(0, slash);
      const std::string sub =
          slash == std::string::npos ? "" : rest.substr(slash);
      if (sub != "/trials") {
        return JsonError(404, "unknown experiment endpoint '" + path +
                                  "' (try /experiments/<name>/trials)");
      }
      if (manager == nullptr) {
        return JsonError(404, "no experiment manager attached");
      }
      Result<obs::Json> trials = manager->TrialsJson(name);
      if (!trials.ok()) {
        return JsonError(404, trials.status().message());
      }
      response.content_type = "application/json";
      response.body = trials->Pretty();
      response.body += "\n";
    } else if (path == "/healthz" || path == "/") {
      response.body = "ok\n";
    } else {
      response.status = 404;
      response.body =
          "not found (try /metrics, /experiments, "
          "/experiments/<name>/trials, /healthz)\n";
    }
    return response;
  };
}

}  // namespace service
}  // namespace autotune
