#ifndef AUTOTUNE_SERVICE_EXPERIMENT_H_
#define AUTOTUNE_SERVICE_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "core/trial_runner.h"
#include "core/tuning_loop.h"
#include "env/environment.h"
#include "kb/knowledge_store.h"
#include "transfer/knowledge_base.h"

namespace autotune {
namespace service {

/// Lifecycle of a managed experiment.
///
///   running --(Pause)--> paused --(Resume)--> running
///   running/paused --(Cancel)--> cancelled        [terminal]
///   running --(loop done)--> finished             [terminal]
///   running/paused --(over budget / past deadline)--> expired   [terminal]
enum class ExperimentState {
  kRunning,
  kPaused,
  kCancelled,
  kFinished,
  kExpired,
};

const char* ExperimentStateName(ExperimentState state);

/// Everything the `ExperimentManager` needs to run one tuning session.
/// Environments and optimizers are provided as factories so the spec stays
/// serializable-ish and the manager controls construction order (the
/// optimizer factory receives the environment's space).
struct ExperimentSpec {
  /// Unique experiment id (journal metadata, endpoint paths, log lines).
  std::string name;

  /// Fair-share weight (> 0): an experiment with twice the weight is
  /// dispatched twice the trials per unit of scheduler virtual time.
  double weight = 1.0;

  /// JSONL journal path; empty disables journaling (and crash recovery).
  /// If the file already holds an unfinished session for this experiment,
  /// `AddExperiment` resumes it bit-exactly (checkpoint fast-path when the
  /// journal carries optimizer snapshots).
  std::string journal_path;

  /// Base seed; optimizer and runner seeds derive from it, so the same
  /// spec resumed after a crash continues the same random streams.
  uint64_t seed = 42;

  /// Total-cost budget (simulated seconds; infinity = unlimited). Enforced
  /// by the scheduler at trial boundaries: once the tenant's cumulative
  /// cost reaches the budget it transitions to `kExpired` with an honest
  /// `budget_exhausted` journal event. The check also runs on journal
  /// replay, so a resumed over-budget tenant expires instead of getting
  /// extra trials.
  double cost_budget = std::numeric_limits<double>::infinity();

  /// Wall-clock deadline in milliseconds since admission (0 = none).
  /// Anchored to the journal's `experiment_started` timestamp when
  /// resuming, so a restarted process enforces the same absolute deadline.
  /// Expiry journals `deadline_exceeded`, cancels the in-flight trial via
  /// the cooperative cancellation token, and transitions to `kExpired`.
  int64_t deadline_ms = 0;

  /// Builds the environment (required).
  std::function<std::unique_ptr<Environment>()> make_environment;

  /// Builds the optimizer over the environment's space (required).
  std::function<std::unique_ptr<Optimizer>(const ConfigSpace* space,
                                           uint64_t seed)>
      make_optimizer;

  TrialRunnerOptions runner_options;

  /// Loop budget/convergence/snapshot options. `journal` is ignored — the
  /// manager owns each experiment's journal.
  TuningLoopOptions loop_options;

  /// Optional fencing gate installed on the experiment's journal (see
  /// `obs::Journal::SetWriteGate`): return false and appends are dropped.
  /// The control plane points this at the tenant's lease state so a deposed
  /// shard's late writes never reach an adopted journal. Must be lock-free.
  std::function<bool()> journal_gate;

  /// Opt-in fleet warm start: before the first suggest, query
  /// `warmstart_store` with `warmstart_embedding` and replay the returned
  /// good/bad samples into the fresh optimizer. The applied payload is
  /// journaled (`warmstart_applied`), so a resumed process re-applies the
  /// exact same samples without re-querying the (possibly changed) store.
  /// A failed lookup (empty store, no matching session) logs a warning and
  /// falls back to a cold start — it never fails `AddExperiment`.
  bool warmstart = false;
  const kb::KnowledgeStore* warmstart_store = nullptr;
  std::vector<double> warmstart_embedding;
  transfer::WarmStartPolicy warmstart_policy;
};

/// Point-in-time public view of one experiment (GET /experiments).
struct ExperimentStatus {
  std::string name;
  ExperimentState state = ExperimentState::kRunning;
  double weight = 1.0;
  double virtual_time = 0.0;
  bool in_flight = false;
  bool resumed = false;
  int trials_run = 0;
  int replayed_trials = 0;
  int failed_trials = 0;  ///< Trials whose observation came back failed.
  int64_t faults = 0;     ///< Runner retries + timeouts (fault injections).
  double total_cost = 0.0;
  std::optional<double> best_objective;
  bool degraded = false;
  bool warm_started = false;  ///< Knowledge-base samples were replayed.
  int warm_samples = 0;       ///< How many observations the replay added.
  double cost_budget =
      std::numeric_limits<double>::infinity();  ///< Spec budget (inf = none).
  int64_t deadline_ms = 0;     ///< Spec deadline (0 = none).
  int64_t deadline_at_ms = 0;  ///< Absolute deadline (epoch ms; 0 = none).
  std::string message;
};

}  // namespace service
}  // namespace autotune

#endif  // AUTOTUNE_SERVICE_EXPERIMENT_H_
