#include "service/statusz.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "service/http_client.h"

namespace autotune {
namespace service {

namespace {

using obs::Json;

std::string HtmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string FormatNumber(double value) {
  char buf[64];
  if (std::fabs(value - std::round(value)) < 1e-9 &&
      std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(std::llround(value)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", value);
  }
  return buf;
}

/// [[ts, value], ...] (oldest first) -> a 120x28 inline SVG polyline. Even
/// an empty series renders an (empty) sparkline slot, so pages always carry
/// at least one <svg class="spark">.
std::string Sparkline(const Json& points) {
  std::string svg =
      "<svg class=\"spark\" width=\"120\" height=\"28\" "
      "viewBox=\"0 0 120 28\">";
  if (points.is_array() && points.AsArray().size() >= 2) {
    const auto& array = points.AsArray();
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    for (const Json& point : array) {
      if (!point.is_array() || point.AsArray().size() != 2) continue;
      const double v = point.AsArray()[1].AsDouble();
      min = std::min(min, v);
      max = std::max(max, v);
    }
    if (std::isfinite(min) && std::isfinite(max)) {
      const double span = max > min ? max - min : 1.0;
      std::string line;
      const size_t n = array.size();
      for (size_t i = 0; i < n; ++i) {
        const Json& point = array[i];
        if (!point.is_array() || point.AsArray().size() != 2) continue;
        const double v = point.AsArray()[1].AsDouble();
        const double x = n > 1 ? 120.0 * i / (n - 1) : 0.0;
        const double y = 26.0 - 24.0 * (v - min) / span;
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.1f,%.1f ", x, y);
        line += buf;
      }
      svg += "<polyline fill=\"none\" stroke=\"#36c\" stroke-width=\"1.5\" "
             "points=\"" +
             line + "\"/>";
    }
  }
  svg += "</svg>";
  return svg;
}

const char kStyle[] =
    "<style>"
    "body{font:14px/1.45 system-ui,sans-serif;margin:24px;color:#222}"
    "h1{font-size:20px}h2{font-size:16px;margin-top:24px}"
    "table{border-collapse:collapse}"
    "td,th{border:1px solid #ccc;padding:4px 10px;text-align:left}"
    "th{background:#f2f2f2}"
    ".badge{display:inline-block;padding:1px 8px;border-radius:9px;"
    "color:#fff;font-size:12px}"
    ".ok{background:#2a2}.warn{background:#d90}.bad{background:#c33}"
    ".stale{opacity:.5}"
    ".meta{color:#777;font-size:12px}"
    ".spark{vertical-align:middle}"
    "</style>";

/// Worst alert state among this tenant's rules -> badge markup.
std::string TenantBadge(const Json& alerts, const std::string& tenant) {
  const std::string prefix = "tenant." + tenant + ".";
  bool firing = false;
  bool pending = false;
  const Result<Json> list = alerts.Get("alerts");
  if (list.ok() && list->is_array()) {
    for (const Json& alert : list->AsArray()) {
      if (alert.GetString("name", "").rfind(prefix, 0) != 0) continue;
      const std::string state = alert.GetString("state", "");
      firing = firing || state == "firing";
      pending = pending || state == "pending";
    }
  }
  if (firing) return "<span class=\"badge bad\">alert</span>";
  if (pending) return "<span class=\"badge warn\">pending</span>";
  return "<span class=\"badge ok\">ok</span>";
}

void AppendAlertsSection(const Json& alerts, std::string* out) {
  Json::Array firing;
  const Result<Json> list = alerts.Get("alerts");
  if (list.ok() && list->is_array()) {
    for (const Json& alert : list->AsArray()) {
      const std::string state = alert.GetString("state", "");
      if (state == "firing" || state == "pending") {
        firing.push_back(alert);
      }
    }
  }
  *out += "<h2>Alerts</h2>";
  if (firing.empty()) {
    *out += "<p>none firing</p>";
    return;
  }
  *out +=
      "<table><tr><th>alert</th><th>state</th><th>severity</th>"
      "<th>detail</th></tr>";
  for (const Json& alert : firing) {
    const std::string state = alert.GetString("state", "");
    const char* badge = state == "firing" ? "bad" : "warn";
    *out += "<tr><td>" + HtmlEscape(alert.GetString("name", "")) +
            "</td><td><span class=\"badge " + badge + "\">" +
            HtmlEscape(state) + "</span></td><td>" +
            HtmlEscape(alert.GetString("severity", "")) + "</td><td>" +
            HtmlEscape(alert.GetString("detail", "")) + "</td></tr>";
  }
  *out += "</table>";
}

/// The per-shard body shared by /statusz and each /fleet/statusz section.
void AppendShardBody(const Json& shard, std::string* out) {
  const Result<Json> alerts_result = shard.Get("alerts");
  const Json alerts =
      alerts_result.ok() ? *alerts_result : Json(Json::Object{});
  const Result<Json> sparks_result = shard.Get("sparklines");
  const Json sparks =
      sparks_result.ok() ? *sparks_result : Json(Json::Object{});

  AppendAlertsSection(alerts, out);

  *out += "<h2>Tenants</h2>";
  const Result<Json> experiments = shard.Get("experiments");
  if (!experiments.ok() || !experiments->is_array() ||
      experiments->AsArray().empty()) {
    *out += "<p>no tenants</p>";
  } else {
    *out +=
        "<table><tr><th>tenant</th><th>health</th><th>state</th>"
        "<th>trials</th><th>failed</th><th>faults</th><th>cost</th>"
        "<th>best</th><th>trend</th></tr>";
    for (const Json& tenant : experiments->AsArray()) {
      const std::string name = tenant.GetString("name", "?");
      const Result<Json> trend = sparks.Get("tenant." + name + ".trials");
      *out += "<tr><td>" + HtmlEscape(name) + "</td><td>" +
              TenantBadge(alerts, name) + "</td><td>" +
              HtmlEscape(tenant.GetString("state", "?")) + "</td><td>" +
              FormatNumber(tenant.GetDouble("trials_run", 0)) + "</td><td>" +
              FormatNumber(tenant.GetDouble("failed_trials", 0)) +
              "</td><td>" + FormatNumber(tenant.GetDouble("faults", 0)) +
              "</td><td>" + FormatNumber(tenant.GetDouble("total_cost", 0)) +
              "</td><td>" +
              (tenant.Get("best_objective").ok()
                   ? FormatNumber(tenant.GetDouble("best_objective", 0))
                   : std::string("—")) +
              "</td><td>" +
              Sparkline(trend.ok() ? *trend : Json(Json::Array{})) +
              "</td></tr>";
    }
    *out += "</table>";
  }

  const Result<Json> p99 = sparks.Get("span.loop.suggest.p99");
  *out += "<h2>Suggest p99</h2>" +
          Sparkline(p99.ok() ? *p99 : Json(Json::Array{}));
}

void SparkSeries(const obs::TimeSeriesStore& store, const std::string& name,
                 int64_t window_ms, int64_t now_ms, Json::Object* out) {
  Json::Array points;
  for (const obs::SamplePoint& point : store.Query(name, window_ms, now_ms)) {
    points.push_back(
        Json(Json::Array{Json(point.ts_ms), Json(point.value)}));
  }
  (*out)[name] = Json(std::move(points));
}

}  // namespace

Json LocalStatuszJson(ExperimentManager* manager, FleetMonitor* monitor,
                      const std::string& shard_id, int64_t now_ms) {
  Json::Object out{{"shard_id", Json(shard_id)}, {"now_ms", Json(now_ms)}};

  Json::Array experiments;
  if (manager != nullptr) {
    const Result<Json> list = manager->StatusJson().Get("experiments");
    if (list.ok() && list->is_array()) experiments = list->AsArray();
  }

  Json::Object sparklines;
  if (monitor != nullptr) {
    const int64_t window = monitor->options().window_ms;
    SparkSeries(monitor->store(), "span.loop.suggest.p99", window, now_ms,
                &sparklines);
    for (const Json& tenant : experiments) {
      const std::string name = tenant.GetString("name", "");
      if (name.empty()) continue;
      SparkSeries(monitor->store(), "tenant." + name + ".trials", window,
                  now_ms, &sparklines);
      SparkSeries(monitor->store(), "tenant." + name + ".cost", window,
                  now_ms, &sparklines);
    }
    out["alerts"] = monitor->health().ToJson();
  } else {
    // No monitor: the key still exists so every page has a sparkline slot.
    sparklines["span.loop.suggest.p99"] = Json(Json::Array{});
    out["alerts"] = Json(Json::Object{{"alerts", Json(Json::Array{})},
                                      {"firing", Json(int64_t{0})}});
  }

  out["experiments"] = Json(std::move(experiments));
  out["sparklines"] = Json(std::move(sparklines));
  return Json(std::move(out));
}

std::vector<FleetShard> GatherFleet(ExperimentManager* manager,
                                    FleetMonitor* monitor,
                                    ControlPlane* control, int64_t now_ms) {
  std::vector<FleetShard> shards;
  const std::string self_id =
      control != nullptr ? control->options().shard_id : "local";

  FleetShard self;
  self.info.shard_id = self_id;
  self.info.host = "127.0.0.1";
  self.info.ts_ms = now_ms;
  self.self = true;
  // The own shard NEVER goes through HTTP (the handler runs on the accept
  // thread; fetching our own port would deadlock it).
  self.payload = LocalStatuszJson(manager, monitor, self_id, now_ms);

  if (control == nullptr) {
    shards.push_back(std::move(self));
    return shards;
  }

  const int64_t lease_timeout = control->options().lease_timeout_ms;
  const int64_t timeout_ms =
      monitor != nullptr ? monitor->options().peer_timeout_ms : 1000;
  for (ControlPlane::ShardInfo& info :
       ControlPlane::ListShards(control->options().journal_dir)) {
    if (info.shard_id == self_id) {
      self.info = info;
      continue;
    }
    FleetShard peer;
    peer.info = std::move(info);
    peer.stale = now_ms - peer.info.ts_ms > lease_timeout;
    Result<HttpClientResponse> fetched = HttpGet(
        peer.info.host, peer.info.port, "/statusz.json", timeout_ms);
    if (fetched.ok() && fetched->status_code == 200) {
      Result<Json> parsed = Json::Parse(fetched->body);
      if (parsed.ok()) {
        peer.payload = std::move(*parsed);
      } else {
        peer.stale = true;
        peer.error = "unparseable /statusz.json";
      }
    } else {
      peer.stale = true;
      peer.error = fetched.ok() ? "HTTP " + std::to_string(
                                               fetched->status_code)
                                : std::string(fetched.status().message());
    }
    shards.push_back(std::move(peer));
  }
  shards.push_back(std::move(self));
  std::sort(shards.begin(), shards.end(),
            [](const FleetShard& a, const FleetShard& b) {
              return a.info.shard_id < b.info.shard_id;
            });
  return shards;
}

Json FleetAlertsJson(const std::vector<FleetShard>& shards) {
  Json::Array rows;
  Json::Array firing_alerts;
  int64_t firing_total = 0;
  for (const FleetShard& shard : shards) {
    int64_t firing = 0;
    if (shard.payload.is_object()) {
      const Result<Json> alerts = shard.payload.Get("alerts");
      if (alerts.ok()) {
        firing = alerts->GetInt("firing", 0);
        const Result<Json> list = alerts->Get("alerts");
        if (list.ok() && list->is_array()) {
          for (const Json& alert : list->AsArray()) {
            if (alert.GetString("state", "") != "firing") continue;
            Json::Object annotated = alert.AsObject();
            annotated["shard"] = Json(shard.info.shard_id);
            firing_alerts.push_back(Json(std::move(annotated)));
          }
        }
      }
    }
    firing_total += firing;
    rows.push_back(Json(Json::Object{
        {"shard_id", Json(shard.info.shard_id)},
        {"self", Json(shard.self)},
        {"stale", Json(shard.stale)},
        {"error", Json(shard.error)},
        {"firing", Json(firing)},
    }));
  }
  return Json(Json::Object{{"shards", Json(std::move(rows))},
                           {"alerts", Json(std::move(firing_alerts))},
                           {"firing", Json(firing_total)}});
}

std::string RenderStatuszHtml(const Json& shard, int64_t now_ms) {
  const std::string shard_id = shard.GetString("shard_id", "?");
  std::string out = "<!doctype html><html><head><meta charset=\"utf-8\">";
  out += "<title>autotune statusz</title>";
  out += kStyle;
  out += "</head><body><h1>autotune shard " + HtmlEscape(shard_id) +
         "</h1><p class=\"meta\">now_ms " + std::to_string(now_ms) +
         " &middot; <a href=\"/fleet/statusz\">fleet view</a> &middot; "
         "<a href=\"/alerts\">alerts json</a></p>";
  AppendShardBody(shard, &out);
  out += "</body></html>\n";
  return out;
}

std::string RenderFleetHtml(const std::vector<FleetShard>& shards,
                            int64_t now_ms) {
  std::string out = "<!doctype html><html><head><meta charset=\"utf-8\">";
  out += "<title>autotune fleet</title>";
  out += kStyle;
  out += "</head><body><h1>autotune fleet</h1><p class=\"meta\">now_ms " +
         std::to_string(now_ms) + " &middot; " +
         std::to_string(shards.size()) + " shard(s)</p>";

  out +=
      "<h2>Shards</h2><table><tr><th>shard</th><th>status</th>"
      "<th>endpoint</th><th>firing</th><th>note</th></tr>";
  for (const FleetShard& shard : shards) {
    int64_t firing = 0;
    if (shard.payload.is_object()) {
      const Result<Json> alerts = shard.payload.Get("alerts");
      if (alerts.ok()) firing = alerts->GetInt("firing", 0);
    }
    const std::string status =
        shard.stale ? "<span class=\"badge bad\">stale</span>"
                    : "<span class=\"badge ok\">live</span>";
    out += std::string("<tr") + (shard.stale ? " class=\"stale\"" : "") +
           "><td>" + HtmlEscape(shard.info.shard_id) +
           (shard.self ? " (self)" : "") + "</td><td>" + status +
           "</td><td>" + HtmlEscape(shard.info.host) + ":" +
           std::to_string(shard.info.port) + "</td><td>" +
           std::to_string(firing) + "</td><td>" + HtmlEscape(shard.error) +
           "</td></tr>";
  }
  out += "</table>";

  for (const FleetShard& shard : shards) {
    out += "<hr><h1" + std::string(shard.stale ? " class=\"stale\"" : "") +
           ">shard " + HtmlEscape(shard.info.shard_id) +
           (shard.stale ? " (stale)" : "") + "</h1>";
    if (shard.payload.is_object()) {
      AppendShardBody(shard.payload, &out);
    } else {
      out += "<p class=\"meta\">unreachable: " + HtmlEscape(shard.error) +
             "</p>";
    }
  }
  out += "</body></html>\n";
  return out;
}

}  // namespace service
}  // namespace autotune
