#ifndef AUTOTUNE_SERVICE_HTTP_SERVER_H_
#define AUTOTUNE_SERVICE_HTTP_SERVER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/status.h"

namespace autotune {
namespace service {

/// Response produced by an `HttpServer::Handler`.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// A parsed request line: the path with its query string split off (e.g.
/// "GET /warmstart?workload=tpcc" gives path "/warmstart", query
/// "workload=tpcc").
struct HttpRequest {
  std::string path;
  std::string query;

  /// The query string as key -> value (last wins on duplicates). Keys and
  /// values are percent-decoded; '+' decodes to a space. A bare key maps
  /// to the empty string.
  std::map<std::string, std::string> QueryParams() const;
};

/// Minimal dependency-free HTTP/1.0 server for the tuning service's scrape
/// endpoints (GET /metrics, GET /experiments). One accept thread, one
/// request per connection, no keep-alive — exactly enough for Prometheus
/// scrapes and curl, deliberately nothing more. Not exposed beyond
/// localhost by default.
class HttpServer {
 public:
  /// Maps a request (path + query) to a response. Called on the accept
  /// thread; must be thread-safe with the rest of the process and
  /// reasonably fast (scrapes block each other).
  using Handler = std::function<HttpResponse(const HttpRequest& request)>;

  struct Options {
    /// Interface to bind. Keep loopback unless you know better.
    std::string host = "127.0.0.1";
    /// TCP port; 0 picks a free port (see `port()`).
    int port = 0;
  };

  /// Binds, listens, and starts the accept thread. Unavailable on bind
  /// failure (port taken, permission).
  [[nodiscard]] static Result<std::unique_ptr<HttpServer>> Start(
      const Options& options, Handler handler);

  /// Stops accepting and joins the accept thread.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The actually bound port (useful with Options::port = 0).
  int port() const { return port_; }

 private:
  HttpServer(int listen_fd, int port, Handler handler);

  void AcceptLoop();

  int listen_fd_;
  int port_;
  Handler handler_;
  std::thread accept_thread_;
};

}  // namespace service
}  // namespace autotune

#endif  // AUTOTUNE_SERVICE_HTTP_SERVER_H_
