#ifndef AUTOTUNE_SERVICE_HTTP_SERVER_H_
#define AUTOTUNE_SERVICE_HTTP_SERVER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/status.h"

namespace autotune {
namespace service {

/// Response produced by an `HttpServer::Handler`.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// A parsed request: method, the path with its query string split off
/// (e.g. "GET /warmstart?workload=tpcc" gives path "/warmstart", query
/// "workload=tpcc"), and — for POST — the request body.
struct HttpRequest {
  std::string path;
  std::string query;
  std::string method = "GET";
  std::string body;

  /// The query string as key -> value (last wins on duplicates). Keys and
  /// values are percent-decoded; '+' decodes to a space. A bare key maps
  /// to the empty string.
  std::map<std::string, std::string> QueryParams() const;
};

/// Minimal dependency-free HTTP/1.0 server for the tuning service's scrape
/// and control endpoints (GET /metrics, POST/DELETE /experiments...). One
/// accept thread, one request per connection, no keep-alive — exactly
/// enough for Prometheus scrapes and curl, deliberately nothing more. Not
/// exposed beyond localhost by default.
///
/// Robustness: each connection gets a socket read deadline and a bound on
/// total request size, so a stalled or oversized client is answered with a
/// JSON 408/413 and dropped instead of wedging the accept loop forever.
class HttpServer {
 public:
  /// Maps a request to a response. Called on the accept thread; must be
  /// thread-safe with the rest of the process and reasonably fast
  /// (requests block each other). Only GET/POST/DELETE reach the handler;
  /// other methods are answered 405 by the server itself.
  using Handler = std::function<HttpResponse(const HttpRequest& request)>;

  struct Options {
    /// Interface to bind. Keep loopback unless you know better.
    std::string host = "127.0.0.1";
    /// TCP port; 0 picks a free port (see `port()`).
    int port = 0;
    /// Per-connection socket read deadline (milliseconds; 0 disables). A
    /// client that stalls mid-request gets `408 {"error": ...}`.
    int read_deadline_ms = 5000;
    /// Upper bound on the whole request, head + body (bytes). Beyond it
    /// the client gets `413 {"error": ...}`.
    size_t max_request_bytes = 1 << 20;
  };

  /// Binds, listens, and starts the accept thread. Unavailable on bind
  /// failure (port taken, permission).
  [[nodiscard]] static Result<std::unique_ptr<HttpServer>> Start(
      const Options& options, Handler handler);

  /// Stops accepting and joins the accept thread.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The actually bound port (useful with Options::port = 0).
  int port() const { return port_; }

 private:
  HttpServer(int listen_fd, int port, Options options, Handler handler);

  void AcceptLoop();

  /// Reads, parses, and answers one connection (then the caller closes it).
  void HandleConnection(int client);

  int listen_fd_;
  int port_;
  Options options_;
  Handler handler_;
  std::thread accept_thread_;
};

}  // namespace service
}  // namespace autotune

#endif  // AUTOTUNE_SERVICE_HTTP_SERVER_H_
