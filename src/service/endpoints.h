#ifndef AUTOTUNE_SERVICE_ENDPOINTS_H_
#define AUTOTUNE_SERVICE_ENDPOINTS_H_

#include "kb/knowledge_store.h"
#include "service/experiment_manager.h"
#include "service/http_server.h"

namespace autotune {
namespace service {

/// The tuning service's request handler:
///   GET /metrics                     global metrics registry, Prometheus
///                                    text exposition
///   GET /experiments                 ExperimentManager::StatusJson(),
///                                    pretty JSON
///   GET /experiments/<name>/trials   recent per-trial decision records,
///                                    pretty JSON (404 with a JSON error
///                                    body for unknown names)
///   GET /warmstart                   knowledge-base warm-start lookup
///                                    (`KnowledgeStore::WarmStartJson`).
///                                    Query params: `embedding` (comma-
///                                    separated doubles) or `workload`
///                                    (standard workload name); optional
///                                    `k`, `good`, `quantile`. 404 when no
///                                    store is attached, 400 on bad params.
///   GET /healthz                     "ok"
/// JSON routes always answer with Content-Type application/json, including
/// their 404s. `manager` may be null (metrics-only endpoint) and `store`
/// may be null (no knowledge base); both must outlive the HttpServer the
/// handler is installed on.
HttpServer::Handler MakeServiceHandler(ExperimentManager* manager,
                                       const kb::KnowledgeStore* store =
                                           nullptr);

}  // namespace service
}  // namespace autotune

#endif  // AUTOTUNE_SERVICE_ENDPOINTS_H_
