#ifndef AUTOTUNE_SERVICE_ENDPOINTS_H_
#define AUTOTUNE_SERVICE_ENDPOINTS_H_

#include "kb/knowledge_store.h"
#include "service/control_plane.h"
#include "service/experiment_manager.h"
#include "service/http_server.h"

namespace autotune {
namespace service {

/// The tuning service's request handler:
///   GET /metrics                     global metrics registry, Prometheus
///                                    text exposition
///   GET /experiments                 ExperimentManager::StatusJson(),
///                                    pretty JSON
///   POST /experiments                admit a tenant into the RUNNING
///                                    manager (`ControlPlane::Admit`).
///                                    Body: a JSON object with the same
///                                    keys as the CLI `--experiment` spec
///                                    string (name, weight, seed,
///                                    cost_budget, deadline_ms,
///                                    warmstart, ...). 400 on malformed
///                                    bodies/specs, 409 when the name is
///                                    already admitted or leased by
///                                    another live shard.
///   DELETE /experiments/<name>       cancel + retire the tenant
///                                    (`ControlPlane::Evict`); idempotent
///                                    for already-finished tenants, 404
///                                    for unknown names.
///   GET /experiments/<name>/trials   recent per-trial decision records,
///                                    pretty JSON (404 with a JSON error
///                                    body for unknown names)
///   GET /warmstart                   knowledge-base warm-start lookup
///                                    (`KnowledgeStore::WarmStartJson`).
///                                    Query params: `embedding` (comma-
///                                    separated doubles) or `workload`
///                                    (standard workload name); optional
///                                    `k`, `good`, `quantile`. 404 when no
///                                    store is attached, 400 on bad params.
///   GET /healthz                     "ok"
/// JSON routes always answer with Content-Type application/json, including
/// their 404s. `manager` may be null (metrics-only endpoint), `store` may
/// be null (no knowledge base), and `control` may be null (static tenant
/// set: POST/DELETE answer 404 explaining how to enable the control
/// plane); all must outlive the HttpServer the handler is installed on.
HttpServer::Handler MakeServiceHandler(ExperimentManager* manager,
                                       const kb::KnowledgeStore* store =
                                           nullptr,
                                       ControlPlane* control = nullptr);

}  // namespace service
}  // namespace autotune

#endif  // AUTOTUNE_SERVICE_ENDPOINTS_H_
