#ifndef AUTOTUNE_SERVICE_ENDPOINTS_H_
#define AUTOTUNE_SERVICE_ENDPOINTS_H_

#include "kb/knowledge_store.h"
#include "service/control_plane.h"
#include "service/experiment_manager.h"
#include "service/fleet.h"
#include "service/http_server.h"

namespace autotune {
namespace service {

/// The tuning service's request handler:
///   GET /metrics                     global metrics registry, Prometheus
///                                    text exposition
///   GET /experiments                 ExperimentManager::StatusJson(),
///                                    pretty JSON
///   POST /experiments                admit a tenant into the RUNNING
///                                    manager (`ControlPlane::Admit`).
///                                    Body: a JSON object with the same
///                                    keys as the CLI `--experiment` spec
///                                    string (name, weight, seed,
///                                    cost_budget, deadline_ms,
///                                    warmstart, ...). 400 on malformed
///                                    bodies/specs, 409 when the name is
///                                    already admitted or leased by
///                                    another live shard.
///   DELETE /experiments/<name>       cancel + retire the tenant
///                                    (`ControlPlane::Evict`); idempotent
///                                    for already-finished tenants, 404
///                                    for unknown names.
///   GET /experiments/<name>/trials   recent per-trial decision records,
///                                    pretty JSON (404 with a JSON error
///                                    body for unknown names)
///   GET /warmstart                   knowledge-base warm-start lookup
///                                    (`KnowledgeStore::WarmStartJson`).
///                                    Query params: `embedding` (comma-
///                                    separated doubles) or `workload`
///                                    (standard workload name); optional
///                                    `k`, `good`, `quantile`. 404 when no
///                                    store is attached, 400 on bad params.
///   GET /metrics/history             retained metric history from the
///                                    fleet monitor's time-series store
///                                    (`TimeSeriesStore::HistoryJson`).
///                                    Query params: `name` (one series;
///                                    default all), `window` (ms; default
///                                    the monitor window). 404 when no
///                                    monitor is attached or the series is
///                                    unknown.
///   GET /alerts                      health-engine alert states
///                                    (`HealthEngine::ToJson`), pretty JSON
///   GET /statusz                     dependency-free HTML dashboard for
///                                    THIS shard (tenant table with health
///                                    badges, firing alerts, inline SVG
///                                    sparklines)
///   GET /statusz.json                the machine-readable /statusz payload
///                                    (what /fleet/* fetches from peers)
///   GET /fleet/statusz               aggregated HTML view across every
///                                    shard in the registry directory;
///                                    unreachable shards render stale
///   GET /fleet/alerts                fleet-wide firing alerts, JSON
///   GET /healthz                     "ok"
/// JSON routes always answer with Content-Type application/json, including
/// their 404s. `manager` may be null (metrics-only endpoint), `store` may
/// be null (no knowledge base), `control` may be null (static tenant set:
/// POST/DELETE answer 404 explaining how to enable the control plane, and
/// /fleet/* degrades to a single-shard view), and `monitor` may be null
/// (no retained history: /metrics/history and /alerts answer 404,
/// /statusz renders without sparkline data); all must outlive the
/// HttpServer the handler is installed on.
HttpServer::Handler MakeServiceHandler(ExperimentManager* manager,
                                       const kb::KnowledgeStore* store =
                                           nullptr,
                                       ControlPlane* control = nullptr,
                                       FleetMonitor* monitor = nullptr);

}  // namespace service
}  // namespace autotune

#endif  // AUTOTUNE_SERVICE_ENDPOINTS_H_
