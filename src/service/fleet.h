#ifndef AUTOTUNE_SERVICE_FLEET_H_
#define AUTOTUNE_SERVICE_FLEET_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/health.h"
#include "obs/timeseries.h"
#include "service/experiment_manager.h"

namespace autotune {
namespace service {

/// The serve process's live health loop: a background tick that
///   1. publishes per-tenant progress metrics into the global
///      `MetricsRegistry` (`tenant.<name>.trials/cost/best/active` gauges,
///      `tenant.<name>.failed/faults` counters),
///   2. samples the registry into the in-process `TimeSeriesStore`
///      (GET /metrics/history),
///   3. reconciles the built-in per-tenant alert rules against the
///      manager's current tenant set, and
///   4. evaluates the `HealthEngine`, exporting the firing count as the
///      `alerts.firing` gauge (`autotune_alerts_firing` in the Prometheus
///      exposition, so external scrapers can page on it).
///
/// Built-in rules:
///   tenant.<n>.stall        trial progress flat across the window while
///                           the tenant is active
///   tenant.<n>.fault_spike  runner retries+timeouts jumped in the window
///   tenant.<n>.failure_spike failed trials jumped in the window
///   tenant.<n>.budget_burn  windowed spend rate projects budget
///                           exhaustion before the tenant's deadline
///   service.suggest_p99_regression  span.loop.suggest p99 vs its first
///                           window (frozen baseline)
///   fleet.fenced_appends    journal.appends_fenced grew — a deposed shard
///                           is still trying to write
///   fleet.failover          control_plane.adopted grew — this shard
///                           adopted a tenant from a dead/deposed peer
///
/// Everything here is wall-clock diagnostic state and stays strictly
/// OUTSIDE the bit-exact journal (the sampler reads metrics, it never
/// writes tuning state).
///
/// Lock order: the monitor mutex only guards the tick thread's shutdown
/// flag; a tick takes the manager snapshot first, then the store/health
/// leaf mutexes — the monitor mutex is never held across either.
class FleetMonitor {
 public:
  struct Options {
    /// Sampler/evaluation tick period.
    int64_t tick_ms = 1000;
    /// Rule window and the /statusz sparkline span. The store's per-series
    /// ring is sized to hold `window_ms / tick_ms` samples (plus slack), so
    /// retention ~= the window by construction.
    int64_t window_ms = 60000;
    /// Per-peer budget for /fleet/* fan-out fetches.
    int64_t peer_timeout_ms = 1000;
    /// Windowed fault / failed-trial counts that trip the spike rules.
    double fault_spike_threshold = 8.0;
    double failure_spike_threshold = 5.0;
    /// Fire when suggest p99 exceeds this multiple of its first-window
    /// baseline.
    double suggest_regression_factor = 2.0;
    /// Start the background tick thread. Tests drive `TickOnce` manually.
    bool start_thread = true;
  };

  FleetMonitor(ExperimentManager* manager, Options options);
  ~FleetMonitor();

  FleetMonitor(const FleetMonitor&) = delete;
  FleetMonitor& operator=(const FleetMonitor&) = delete;

  /// One synchronous tick at `now_ms`: publish tenant metrics, sample,
  /// reconcile rules, evaluate alerts. Only the tick thread may call this
  /// while `start_thread` is on; tests construct with `start_thread=false`
  /// and drive ticks manually.
  void TickOnce(int64_t now_ms);

  const obs::TimeSeriesStore& store() const { return store_; }
  obs::HealthEngine& health() { return health_; }
  const obs::HealthEngine& health() const { return health_; }
  const Options& options() const { return options_; }

 private:
  void PublishTenantMetrics(const std::vector<ExperimentStatus>& tenants);
  void ReconcileRules(const std::vector<ExperimentStatus>& tenants);
  void TickLoop();

  ExperimentManager* manager_;
  const Options options_;

  obs::TimeSeriesStore store_;
  obs::HealthEngine health_;

  /// Tick-private state (see TickOnce: exactly one ticking thread). Last
  /// mirrored cumulative failed/fault counts per tenant, so the registry
  /// counters advance by deltas, and the tenant set seen last tick (for
  /// rule retirement).
  std::map<std::string, int64_t> last_failed_;
  std::map<std::string, int64_t> last_faults_;
  std::map<std::string, bool> known_tenants_;

  mutable Mutex mutex_{"service.fleet_monitor"};
  std::condition_variable cv_;
  bool stopping_ GUARDED_BY(mutex_) = false;

  std::thread tick_thread_;
};

}  // namespace service
}  // namespace autotune

#endif  // AUTOTUNE_SERVICE_FLEET_H_
