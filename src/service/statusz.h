#ifndef AUTOTUNE_SERVICE_STATUSZ_H_
#define AUTOTUNE_SERVICE_STATUSZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "service/control_plane.h"
#include "service/experiment_manager.h"
#include "service/fleet.h"

namespace autotune {
namespace service {

/// The machine-readable shard status (`GET /statusz.json`), which is also
/// the payload /fleet/* fetches from each peer:
///   {"shard_id", "now_ms", "experiments": [...], "alerts": {...},
///    "sparklines": {series: [[ts_ms, value], ...]}}
/// `experiments` is the manager's per-tenant status array; `alerts` is the
/// health engine's ToJson; `sparklines` carries the suggest-p99 series plus
/// each tenant's trials/cost series over the monitor window (always
/// includes the suggest-p99 key, possibly empty, so every page renders at
/// least one sparkline slot).
obs::Json LocalStatuszJson(ExperimentManager* manager, FleetMonitor* monitor,
                           const std::string& shard_id, int64_t now_ms);

/// One shard's row in the fleet view.
struct FleetShard {
  ControlPlane::ShardInfo info;
  bool self = false;
  /// Heartbeat older than the lease timeout, or the fetch failed: the
  /// shard is rendered stale (last-known data, dimmed) — never an error.
  bool stale = false;
  std::string error;    ///< Fetch failure detail ("" when reachable).
  obs::Json payload;    ///< /statusz.json body (null JSON when unreachable).
};

/// Discovers peers from the control plane's registry directory and fetches
/// each peer's /statusz.json over HTTP with a per-peer timeout. The OWN
/// shard is served from local state — never over HTTP, which would
/// deadlock the single accept thread. Unreachable/expired peers come back
/// `stale`. With no control plane there is exactly one row: self.
std::vector<FleetShard> GatherFleet(ExperimentManager* manager,
                                    FleetMonitor* monitor,
                                    ControlPlane* control, int64_t now_ms);

/// {"shards": [{"shard_id", "stale", "self", "firing", ...}], "firing": N}
/// — the /fleet/alerts payload (firing = fleet-wide total across
/// reachable shards).
obs::Json FleetAlertsJson(const std::vector<FleetShard>& shards);

/// Dependency-free HTML dashboard for one shard (GET /statusz): tenant
/// table with health badges, firing alerts, inline SVG sparklines.
std::string RenderStatuszHtml(const obs::Json& shard, int64_t now_ms);

/// The aggregated fleet dashboard (GET /fleet/statusz): shard summary
/// table (stale shards dimmed) followed by each reachable shard's section.
std::string RenderFleetHtml(const std::vector<FleetShard>& shards,
                            int64_t now_ms);

}  // namespace service
}  // namespace autotune

#endif  // AUTOTUNE_SERVICE_STATUSZ_H_
