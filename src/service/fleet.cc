#include "service/fleet.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace autotune {
namespace service {

namespace {

bool IsActive(ExperimentState state) {
  return state == ExperimentState::kRunning ||
         state == ExperimentState::kPaused;
}

}  // namespace

FleetMonitor::FleetMonitor(ExperimentManager* manager, Options options)
    : manager_(manager), options_(options), store_([&options]() {
        // Size each ring to the rule window (plus slack for jitter): the
        // retention the dashboard shows IS the window the rules see.
        obs::TimeSeriesStore::Options store_options;
        const int64_t tick = std::max<int64_t>(1, options.tick_ms);
        store_options.samples_per_series = static_cast<size_t>(
            std::max<int64_t>(60, 2 * options.window_ms / tick));
        return store_options;
      }()) {
  // Eagerly create the counters the fleet rules watch: the store's counter
  // sampling swallows a counter's first sighting (delta-baseline priming),
  // so a lazily created counter's 0 -> 1 transition would never produce a
  // point. Touching them here pins the baseline at their current value
  // from the first tick, so the NEXT increment is a visible delta.
  obs::MetricsRegistry::Global().GetCounter("journal.appends_fenced");
  obs::MetricsRegistry::Global().GetCounter("control_plane.adopted");

  // Fleet-wide rules live for the process; per-tenant rules are reconciled
  // each tick.
  obs::AlertRule fenced;
  fenced.name = "fleet.fenced_appends";
  fenced.severity = "critical";
  fenced.description =
      "journal appends rejected by the lease fence — a deposed shard is "
      "still trying to write";
  fenced.kind = obs::RuleKind::kRateOfChange;
  fenced.series = "journal.appends_fenced";
  fenced.threshold = 0.0;
  fenced.window_ms = options_.window_ms;
  fenced.for_ticks = 1;
  health_.UpsertRule(fenced);

  obs::AlertRule failover;
  failover.name = "fleet.failover";
  failover.severity = "critical";
  failover.description =
      "this shard adopted tenants from a dead or deposed peer (journal "
      "fence enforced during takeover)";
  failover.kind = obs::RuleKind::kRateOfChange;
  failover.series = "control_plane.adopted";
  failover.threshold = 0.0;
  failover.window_ms = options_.window_ms;
  failover.for_ticks = 1;
  health_.UpsertRule(failover);

  obs::AlertRule regression;
  regression.name = "service.suggest_p99_regression";
  regression.description =
      "suggest p99 latency regressed vs its first-window baseline";
  regression.kind = obs::RuleKind::kRegression;
  regression.series = "span.loop.suggest.p99";
  regression.threshold = options_.suggest_regression_factor;
  regression.window_ms = options_.window_ms;
  regression.for_ticks = 3;
  health_.UpsertRule(regression);

  if (options_.start_thread) {
    tick_thread_ = std::thread([this]() { TickLoop(); });
  }
}

FleetMonitor::~FleetMonitor() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (tick_thread_.joinable()) tick_thread_.join();
}

void FleetMonitor::PublishTenantMetrics(
    const std::vector<ExperimentStatus>& tenants) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (const ExperimentStatus& tenant : tenants) {
    const std::string prefix = "tenant." + tenant.name + ".";
    registry.SetGauge(prefix + "trials",
                      static_cast<double>(tenant.trials_run));
    registry.SetGauge(prefix + "cost", tenant.total_cost);
    registry.SetGauge(prefix + "active", IsActive(tenant.state) ? 1.0 : 0.0);
    if (tenant.best_objective.has_value()) {
      registry.SetGauge(prefix + "best", *tenant.best_objective);
    }
    // Failed/fault counts mirror cumulative values; advance the registry
    // counters by their delta so the store's counter sampling (per-tick
    // deltas) sees real increments. GetCounter (not a conditional
    // Increment) so the counter exists at 0 from the tenant's first tick —
    // otherwise the store's first-sight priming would swallow the first
    // spike along with the counter's creation.
    obs::Counter* failed_counter = registry.GetCounter(prefix + "failed");
    int64_t& failed = last_failed_[tenant.name];
    if (tenant.failed_trials > failed) {
      failed_counter->Increment(tenant.failed_trials - failed);
    }
    failed = tenant.failed_trials;
    obs::Counter* faults_counter = registry.GetCounter(prefix + "faults");
    int64_t& faults = last_faults_[tenant.name];
    if (tenant.faults > faults) {
      faults_counter->Increment(tenant.faults - faults);
    }
    faults = tenant.faults;
  }
}

void FleetMonitor::ReconcileRules(
    const std::vector<ExperimentStatus>& tenants) {
  std::map<std::string, bool> seen;
  for (const ExperimentStatus& tenant : tenants) {
    seen[tenant.name] = true;
    const std::string prefix = "tenant." + tenant.name + ".";

    obs::AlertRule stall;
    stall.name = prefix + "stall";
    stall.description = "trial progress stalled while active";
    stall.kind = obs::RuleKind::kStall;
    stall.series = prefix + "trials";
    stall.threshold = 0.0;
    stall.window_ms = options_.window_ms;
    stall.for_ticks = 3;
    stall.gate_series = prefix + "active";
    health_.UpsertRule(stall);

    obs::AlertRule faults;
    faults.name = prefix + "fault_spike";
    faults.description = "runner retries/timeouts spiked";
    faults.kind = obs::RuleKind::kRateOfChange;
    faults.series = prefix + "faults";
    faults.threshold = options_.fault_spike_threshold;
    faults.window_ms = options_.window_ms;
    faults.for_ticks = 2;
    faults.gate_series = prefix + "active";
    health_.UpsertRule(faults);

    obs::AlertRule failures;
    failures.name = prefix + "failure_spike";
    failures.description = "failed-trial rate spiked";
    failures.kind = obs::RuleKind::kRateOfChange;
    failures.series = prefix + "failed";
    failures.threshold = options_.failure_spike_threshold;
    failures.window_ms = options_.window_ms;
    failures.for_ticks = 2;
    failures.gate_series = prefix + "active";
    health_.UpsertRule(failures);

    if (std::isfinite(tenant.cost_budget) && tenant.deadline_at_ms > 0) {
      obs::AlertRule burn;
      burn.name = prefix + "budget_burn";
      burn.description =
          "spend rate projects budget exhaustion before the deadline";
      burn.kind = obs::RuleKind::kBudgetBurn;
      burn.series = prefix + "cost";
      burn.window_ms = options_.window_ms;
      burn.for_ticks = 2;
      burn.gate_series = prefix + "active";
      burn.budget = tenant.cost_budget;
      burn.deadline_at_ms = tenant.deadline_at_ms;
      health_.UpsertRule(burn);
    }
  }
  // Tenants reaped from the manager (evicted, abandoned) take their rules
  // with them; a merely-terminal tenant keeps its rules so a firing alert
  // can settle into "resolved" via the active gate first.
  for (const auto& [name, unused] : known_tenants_) {
    if (seen.count(name) == 0) {
      health_.RemoveRulesWithPrefix("tenant." + name + ".");
      last_failed_.erase(name);
      last_faults_.erase(name);
    }
  }
  known_tenants_ = std::move(seen);
}

void FleetMonitor::TickOnce(int64_t now_ms) {
  // The tick's own cost lands in the span.fleet.tick histogram, so the
  // sampler's overhead is itself observable (and benched by E31).
  obs::Span tick_span("fleet.tick");
  const std::vector<ExperimentStatus> tenants = manager_->Snapshot();
  PublishTenantMetrics(tenants);
  store_.Sample(obs::MetricsRegistry::Global(), now_ms);
  ReconcileRules(tenants);
  health_.Evaluate(store_, now_ms);
  obs::MetricsRegistry::Global().SetGauge(
      "alerts.firing", static_cast<double>(health_.FiringCount()));
}

void FleetMonitor::TickLoop() {
  for (;;) {
    {
      CondVarLock lock(mutex_);
      const bool stop = lock.WaitFor(
          cv_, std::chrono::milliseconds(std::max<int64_t>(1,
                                                           options_.tick_ms)),
          [this]() REQUIRES(mutex_) { return stopping_; });
      if (stop) return;
    }
    TickOnce(obs::NowEpochMs());
  }
}

}  // namespace service
}  // namespace autotune
