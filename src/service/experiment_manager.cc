#include "service/experiment_manager.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "kb/warmstart.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "record/codec.h"

namespace autotune {
namespace service {

namespace {

/// Decision records kept per experiment for GET /experiments/<name>/trials.
constexpr size_t kMaxRecentDecisions = 32;

/// Deadlines are diagnostic wall-clock state, so they flow through the
/// sanctioned obs timestamp shim (the determinism lint bans raw clocks).
int64_t NowMs() { return obs::NowEpochMs(); }

}  // namespace

const char* ExperimentStateName(ExperimentState state) {
  switch (state) {
    case ExperimentState::kRunning:
      return "running";
    case ExperimentState::kPaused:
      return "paused";
    case ExperimentState::kCancelled:
      return "cancelled";
    case ExperimentState::kFinished:
      return "finished";
    case ExperimentState::kExpired:
      return "expired";
  }
  return "unknown";
}

ExperimentManager::ExperimentManager(ThreadPool* pool, Options options)
    : pool_(pool),
      max_concurrent_(options.max_concurrent_trials > 0
                          ? options.max_concurrent_trials
                          : (pool != nullptr ? pool->num_threads() : 0)) {
  AUTOTUNE_CHECK(pool_ != nullptr);
  AUTOTUNE_CHECK(max_concurrent_ > 0);
}

ExperimentManager::~ExperimentManager() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;  // PumpLocked stops dispatching.
  }
  CondVarLock lock(mutex_);
  lock.Wait(cv_, [this]() REQUIRES(mutex_) { return in_flight_count_ == 0; });
}

Status ExperimentManager::AddExperiment(ExperimentSpec spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("experiment name must not be empty");
  }
  if (!(spec.weight > 0.0)) {
    return Status::InvalidArgument("experiment '" + spec.name +
                                   "': weight must be > 0");
  }
  if (!spec.make_environment || !spec.make_optimizer) {
    return Status::InvalidArgument(
        "experiment '" + spec.name +
        "': make_environment and make_optimizer are required");
  }
  if (std::isnan(spec.cost_budget) || !(spec.cost_budget > 0.0)) {
    return Status::InvalidArgument("experiment '" + spec.name +
                                   "': cost_budget must be > 0");
  }
  if (spec.deadline_ms < 0) {
    return Status::InvalidArgument("experiment '" + spec.name +
                                   "': deadline_ms must be >= 0");
  }

  // Build the whole tuning stack outside the manager lock — environment
  // construction and journal replay can be arbitrarily expensive.
  auto e = std::make_unique<Experiment>();
  e->spec = std::move(spec);
  // Wire this experiment's preemption token into its runner: Cancel /
  // expiry / lease loss then stops the in-flight trial at the next
  // repetition or retry boundary. The Experiment lives behind a unique_ptr,
  // so the token's address is stable for the runner's lifetime.
  e->spec.runner_options.cancel = &e->cancel_token;
  const ExperimentSpec& s = e->spec;

  e->env = s.make_environment();
  if (e->env == nullptr) {
    return Status::InvalidArgument("experiment '" + s.name +
                                   "': make_environment returned null");
  }
  e->optimizer = s.make_optimizer(&e->env->space(), s.seed);
  if (e->optimizer == nullptr) {
    return Status::InvalidArgument("experiment '" + s.name +
                                   "': make_optimizer returned null");
  }
  AUTOTUNE_RETURN_IF_ERROR(s.runner_options.Validate());
  // The runner's noise stream is derived from (not equal to) the optimizer
  // seed; both derivations are pure functions of the spec so a resumed
  // process reconstructs identical streams.
  e->runner = std::make_unique<TrialRunner>(
      e->env.get(), s.runner_options, s.seed ^ 0x9e3779b97f4a7c15ULL);

  record::JournalReplay replay;
  bool resume = false;
  bool finished_in_journal = false;
  if (!s.journal_path.empty()) {
    Result<record::JournalReplay> replayed =
        record::ReplayJournal(s.journal_path, &e->env->space());
    if (replayed.ok()) {
      replay = std::move(*replayed);
      finished_in_journal = replay.finished;
      resume = !finished_in_journal && (!replay.observations.empty() ||
                                        replay.checkpoint.has_value());
    } else if (replayed.status().code() != StatusCode::kNotFound) {
      return replayed.status();  // Corrupt journal: surface, don't clobber.
    }
  }

  if (s.deadline_ms > 0) {
    // Anchor the deadline at original admission: a resumed tenant keeps the
    // absolute deadline its first process started, rather than earning a
    // fresh allowance per restart.
    int64_t anchor_ms = NowMs();
    if (resume || finished_in_journal) {
      Result<obs::Json> started =
          obs::ReadFirstEvent(s.journal_path, "experiment_started");
      if (started.ok()) anchor_ms = started->GetInt("ts_ms", anchor_ms);
    }
    e->deadline_at_ms = anchor_ms + s.deadline_ms;
  }

  if (finished_in_journal) {
    // Completed in a previous process; report it done instead of re-running.
    // The full history lives in the journal, not in ResultOf().
    e->state = ExperimentState::kFinished;
    e->resumed = true;
    e->loop_done = true;
    e->trials_run = static_cast<int>(replay.observations.size());
    e->replayed_trials = e->trials_run;
    e->message = "finished in a previous session (see journal)";
  } else {
    if (!s.journal_path.empty()) {
      AUTOTUNE_ASSIGN_OR_RETURN(e->journal, obs::Journal::Open(s.journal_path));
      if (s.journal_gate) e->journal->SetWriteGate(s.journal_gate);
      if (!resume) {
        e->journal->Event("experiment_started",
                          {{"name", s.name},
                           {"environment", e->env->name()},
                           {"optimizer", e->optimizer->name()},
                           {"seed", static_cast<int64_t>(s.seed)}});
      }
    }
    // Fleet warm start: replay knowledge-base samples into the optimizer
    // before the loop exists (so before its first suggest). A fresh run
    // queries the store and journals the applied payload; a resumed run
    // re-applies the journaled payload verbatim — the store may have
    // changed since, and a different sample set would break bit-exact
    // replay.
    obs::Json warm_payload;
    bool have_warm_payload = false;
    if (resume) {
      Result<obs::Json> journaled =
          obs::ReadFirstEvent(s.journal_path, "warmstart_applied");
      if (journaled.ok()) {
        warm_payload = std::move(*journaled);
        have_warm_payload = true;
      }
    } else if (s.warmstart) {
      if (s.warmstart_store == nullptr) {
        return Status::InvalidArgument(
            "experiment '" + s.name +
            "': warmstart requested but no knowledge store provided");
      }
      Result<obs::Json> payload = s.warmstart_store->WarmStartJson(
          s.warmstart_embedding, s.warmstart_policy, /*k=*/3);
      if (payload.ok()) {
        warm_payload = std::move(*payload);
        have_warm_payload = true;
        if (e->journal != nullptr) {
          obs::Json::Object fields;
          Result<obs::Json> good = warm_payload.Get("good_samples");
          if (good.ok()) fields["good_samples"] = std::move(*good);
          Result<obs::Json> bad = warm_payload.Get("bad_samples");
          if (bad.ok()) fields["bad_samples"] = std::move(*bad);
          Result<obs::Json> matches = warm_payload.Get("matches");
          if (matches.ok() && matches->is_array() &&
              !matches->AsArray().empty()) {
            fields["matched_session"] =
                matches->AsArray().front().GetString("session", "");
          }
          e->journal->Event("warmstart_applied", std::move(fields));
        }
      } else {
        // Cold-start fallback: a thin or unmatched store must never keep a
        // tenant from starting.
        AUTOTUNE_LOG(kWarning)
            << "experiment '" << s.name << "': warm start unavailable ("
            << payload.status().message() << "), starting cold";
      }
    }
    if (have_warm_payload) {
      AUTOTUNE_ASSIGN_OR_RETURN(
          int applied, kb::ApplyWarmStartSamples(
                           warm_payload, &e->env->space(), e->optimizer.get()));
      e->warm_started = applied > 0;
      e->warm_samples = applied;
      if (resume && replay.checkpoint.has_value()) {
        // The checkpoint's observation prefix covers journaled trials only,
        // not the warm-start Observes — restoring it would desync the
        // optimizer from the original run. Linear replay reproduces both.
        replay.checkpoint.reset();
        AUTOTUNE_LOG(kInfo)
            << "experiment '" << s.name
            << "': warm-started session, resuming via linear replay";
      }
    }

    TuningLoopOptions loop_options = s.loop_options;
    loop_options.journal = e->journal.get();
    e->loop = std::make_unique<TuningLoop>(e->optimizer.get(),
                                           e->runner.get(), loop_options);
    // Every trial of this tenant will run under this trace context, so its
    // spans — whichever pool thread they land on — parent into one tree.
    e->trace = TraceContext{NewTraceId(), NewSpanId()};
    e->trace_start_ns = obs::TraceBuffer::NowOnSpanClockNs();
    obs::TraceBuffer::SetTraceName(e->trace.trace_id,
                                   "experiment:" + s.name);
    if (resume) {
      AUTOTUNE_RETURN_IF_ERROR(e->loop->Resume(replay));
      // Drain the fast-forward tail now instead of lazily through the
      // scheduler: replayed steps are cheap (suggest-and-discard, no
      // environment runs), and only a fully drained loop reports the
      // honest trials_run/total_cost that the budget/deadline enforcement
      // below — and the first status read — depend on.
      while (!e->loop->done() && e->loop->pending_replay_trials() > 0) {
        e->loop->StepTrial();
      }
      e->resumed = true;
      e->message = "resumed from journal";
    }
    if (e->loop->done()) {
      // Journal already covered the whole budget (killed between the last
      // trial and finalization): finalize here, no trials to schedule.
      TuningResult result = e->loop->Finish();
      e->state = ExperimentState::kFinished;
      e->degraded = result.degraded;
      e->result = std::move(result);
    } else {
      // Enforcement on replay: a tenant that was already over budget or
      // past deadline when its process died expires NOW, instead of being
      // granted extra trials the uninterrupted run would never have run.
      const char* kind = nullptr;
      if (std::isfinite(s.cost_budget) &&
          e->loop->total_cost() >= s.cost_budget) {
        kind = "budget_exhausted";
      } else if (e->deadline_at_ms != 0 && NowMs() >= e->deadline_at_ms) {
        kind = "deadline_exceeded";
      }
      if (kind != nullptr) {
        e->state = ExperimentState::kExpired;
        e->message = kind;
        e->pending_expiry = kind;
        (void)e->cancel_token.Cancel(kind);  // First-wins; later causes lose.
        JournalPendingExpiry(e.get());
        TuningResult result = e->loop->Finish();
        e->degraded = result.degraded;
        e->result = std::move(result);
      }
    }
  }

  MutexLock lock(mutex_);
  if (shutting_down_) {
    return Status::FailedPrecondition("manager is shutting down");
  }
  if (experiments_.count(s.name) != 0) {
    return Status::FailedPrecondition("experiment '" + s.name +
                                      "' already exists");
  }
  Experiment* raw = e.get();
  raw->virtual_time = MinActiveVirtualTimeLocked();
  if (raw->loop != nullptr) {
    // Also runs for a tenant that expired on replay above: its status must
    // report the replayed trial count and cost, not zeros.
    SyncProgressLocked(raw);
  }
  if (raw->result.has_value()) {
    FinalizeTraceLocked(raw);  // Nothing left to run or finalize later.
  }
  experiments_[s.name] = std::move(e);
  PumpLocked();
  return Status::OK();
}

Status ExperimentManager::Pause(const std::string& name) {
  MutexLock lock(mutex_);
  auto it = experiments_.find(name);
  if (it == experiments_.end()) {
    return Status::NotFound("no experiment '" + name + "'");
  }
  Experiment* e = it->second.get();
  if (IsTerminal(e->state)) {
    return Status::FailedPrecondition("experiment '" + name + "' is " +
                                      ExperimentStateName(e->state));
  }
  e->state = ExperimentState::kPaused;
  UpdateGaugesLocked();
  return Status::OK();
}

Status ExperimentManager::Resume(const std::string& name) {
  MutexLock lock(mutex_);
  auto it = experiments_.find(name);
  if (it == experiments_.end()) {
    return Status::NotFound("no experiment '" + name + "'");
  }
  Experiment* e = it->second.get();
  if (IsTerminal(e->state)) {
    return Status::FailedPrecondition("experiment '" + name + "' is " +
                                      ExperimentStateName(e->state));
  }
  if (e->state == ExperimentState::kPaused) {
    // Catch the virtual time up so the pause is forgiven, not banked as a
    // claim to a burst of make-up trials.
    e->state = ExperimentState::kRunning;
    e->virtual_time =
        std::max(e->virtual_time, MinActiveVirtualTimeLocked());
  }
  PumpLocked();
  return Status::OK();
}

Status ExperimentManager::Cancel(const std::string& name) {
  Experiment* e = nullptr;
  {
    MutexLock lock(mutex_);
    auto it = experiments_.find(name);
    if (it == experiments_.end()) {
      return Status::NotFound("no experiment '" + name + "'");
    }
    e = it->second.get();
    if (IsTerminal(e->state)) return Status::OK();
    e->state = ExperimentState::kCancelled;
    e->message = "cancelled";
    // Cooperative preemption: an in-flight trial stops at its next
    // repetition/retry boundary instead of running to completion.
    (void)e->cancel_token.Cancel("cancelled");  // First-wins; later causes lose.
    if (e->in_flight || e->loop == nullptr || e->result.has_value()) {
      // Either a worker owns the loop (it observes the cancelled state and
      // finalizes) or there is nothing left to finalize.
      UpdateGaugesLocked();
      cv_.notify_all();
      return Status::OK();
    }
    // Claim the in-flight token: Finish() needs exclusive ownership of the
    // tuning stack, and it must not run under the manager mutex (it may
    // re-evaluate the incumbent, which blocks on pool/environment locks).
    e->in_flight = true;
    ++in_flight_count_;
  }

  FinalizeWithToken(e);
  return Status::OK();
}

void ExperimentManager::EnforceExpiry() {
  const int64_t now_ms = NowMs();
  std::vector<Experiment*> to_finalize;
  {
    MutexLock lock(mutex_);
    for (const auto& [name, e] : experiments_) {
      if (IsTerminal(e->state) || e->loop == nullptr ||
          e->result.has_value()) {
        continue;
      }
      const char* kind = ExpiryKindLocked(*e, now_ms);
      if (kind == nullptr) continue;
      BeginExpiryLocked(e.get(), kind);
      if (e->in_flight) continue;  // The worker finalizes on token return.
      e->in_flight = true;
      ++in_flight_count_;
      to_finalize.push_back(e.get());
    }
    if (!to_finalize.empty()) UpdateGaugesLocked();
  }
  for (Experiment* e : to_finalize) FinalizeWithToken(e);
}

Status ExperimentManager::Abandon(const std::string& name) {
  std::unique_ptr<Experiment> reaped;
  {
    MutexLock lock(mutex_);
    auto it = experiments_.find(name);
    if (it == experiments_.end()) {
      return Status::NotFound("no experiment '" + name + "'");
    }
    Experiment* e = it->second.get();
    (void)e->cancel_token.Cancel("abandoned: lease lost");  // First-wins.
    if (e->in_flight) {
      // A worker owns the tuning stack; it reaps the entry (without
      // finalizing) when the preempted trial returns the token.
      e->abandoning = true;
      return Status::OK();
    }
    reaped = std::move(it->second);
    experiments_.erase(it);
    UpdateGaugesLocked();
    cv_.notify_all();
  }
  // `reaped` destructs here, outside the manager mutex: the journal's
  // destructor joins its writer thread, which must not run under the lock.
  return Status::OK();
}

void ExperimentManager::WaitAll() {
  CondVarLock lock(mutex_);
  lock.Wait(cv_, [this]() REQUIRES(mutex_) {
    if (in_flight_count_ > 0) return false;
    for (const auto& [name, e] : experiments_) {
      if (!IsTerminal(e->state)) return false;
    }
    return true;
  });
}

Result<TuningResult> ExperimentManager::ResultOf(
    const std::string& name) const {
  MutexLock lock(mutex_);
  auto it = experiments_.find(name);
  if (it == experiments_.end()) {
    return Status::NotFound("no experiment '" + name + "'");
  }
  const Experiment* e = it->second.get();
  if (!e->result.has_value()) {
    return Status::FailedPrecondition(
        "experiment '" + name + "' has no in-memory result (state: " +
        std::string(ExperimentStateName(e->state)) + ")");
  }
  return *e->result;
}

Result<ExperimentStatus> ExperimentManager::StatusOf(
    const std::string& name) const {
  MutexLock lock(mutex_);
  auto it = experiments_.find(name);
  if (it == experiments_.end()) {
    return Status::NotFound("no experiment '" + name + "'");
  }
  return StatusOfLocked(*it->second);
}

std::vector<ExperimentStatus> ExperimentManager::Snapshot() const {
  MutexLock lock(mutex_);
  std::vector<ExperimentStatus> out;
  out.reserve(experiments_.size());
  for (const auto& [name, e] : experiments_) {
    out.push_back(StatusOfLocked(*e));
  }
  return out;
}

obs::Json ExperimentManager::StatusJson() const {
  obs::Json::Array experiments;
  size_t in_flight = 0;
  {
    MutexLock lock(mutex_);
    in_flight = in_flight_count_;
    for (const auto& [name, e] : experiments_) {
      const ExperimentStatus status = StatusOfLocked(*e);
      obs::Json::Object entry{
          {"name", status.name},
          {"state", ExperimentStateName(status.state)},
          {"weight", status.weight},
          {"virtual_time", status.virtual_time},
          {"in_flight", status.in_flight},
          {"resumed", status.resumed},
          {"trials_run", status.trials_run},
          {"replayed_trials", status.replayed_trials},
          {"failed_trials", status.failed_trials},
          {"faults", status.faults},
          {"total_cost", status.total_cost},
          {"degraded", status.degraded},
          {"warm_started", status.warm_started},
          {"warm_samples", status.warm_samples},
      };
      if (status.best_objective.has_value()) {
        entry["best_objective"] = *status.best_objective;
      }
      if (std::isfinite(status.cost_budget)) {
        entry["cost_budget"] = status.cost_budget;
      }
      if (status.deadline_ms > 0) {
        entry["deadline_ms"] = status.deadline_ms;
      }
      if (!status.message.empty()) entry["message"] = status.message;
      experiments.push_back(obs::Json(std::move(entry)));
    }
  }
  const ThreadPool::Stats pool_stats = pool_->GetStats();
  return obs::Json(obs::Json::Object{
      {"experiments", std::move(experiments)},
      {"scheduler",
       obs::Json::Object{
           {"in_flight_trials", static_cast<int64_t>(in_flight)},
           {"max_concurrent_trials", static_cast<int64_t>(max_concurrent_)},
           {"pool",
            obs::Json::Object{
                {"num_threads",
                 static_cast<int64_t>(pool_stats.num_threads)},
                {"tasks_submitted", pool_stats.tasks_submitted},
                {"tasks_completed", pool_stats.tasks_completed},
                {"queue_depth", static_cast<int64_t>(pool_stats.queue_depth)},
                {"running", static_cast<int64_t>(pool_stats.running)},
            }},
       }},
  });
}

Result<obs::Json> ExperimentManager::TrialsJson(
    const std::string& name) const {
  MutexLock lock(mutex_);
  auto it = experiments_.find(name);
  if (it == experiments_.end()) {
    return Status::NotFound("no experiment '" + name + "'");
  }
  const Experiment* e = it->second.get();
  obs::Json::Array trials;
  trials.reserve(e->recent_decisions.size());
  for (const obs::Json& decision : e->recent_decisions) {
    trials.push_back(decision);
  }
  return obs::Json(obs::Json::Object{
      {"name", e->spec.name},
      {"state", ExperimentStateName(e->state)},
      {"trials_run", static_cast<int64_t>(e->trials_run)},
      {"trials", std::move(trials)},
  });
}

void ExperimentManager::PumpLocked() {
  if (shutting_down_) return;
  const int64_t now_ms = NowMs();
  while (in_flight_count_ < max_concurrent_) {
    Experiment* pick = nullptr;
    for (const auto& [name, e] : experiments_) {
      if (e->state != ExperimentState::kRunning || e->in_flight ||
          e->loop == nullptr || e->loop_done || e->result.has_value()) {
        continue;
      }
      // Budget/deadline enforcement at the dispatch point: an expired
      // tenant gets a finalize task, never another trial.
      const char* kind = ExpiryKindLocked(*e, now_ms);
      if (kind != nullptr) {
        BeginExpiryLocked(e.get(), kind);
        e->in_flight = true;
        ++in_flight_count_;
        Experiment* doomed = e.get();
        pool_->Submit([this, doomed]() { FinalizeWithToken(doomed); });
        continue;
      }
      // Strict < keeps the tie-break on name order (map iteration order),
      // which makes the schedule deterministic for equal-weight tenants.
      if (pick == nullptr || e->virtual_time < pick->virtual_time) {
        pick = e.get();
      }
    }
    if (pick == nullptr) break;
    pick->in_flight = true;
    ++in_flight_count_;
    pool_->Submit([this, pick]() { RunOneTrial(pick); });
  }
  UpdateGaugesLocked();
}

void ExperimentManager::RunOneTrial(Experiment* e) {
  // This thread holds e's in-flight token: it exclusively owns the tuning
  // stack until it hands the token back under the mutex.
  //
  // The trial runs under the experiment's trace context so its spans (and
  // any the loop fans out through the pool) parent into the tenant's tree
  // regardless of which worker thread picked this task up.
  std::vector<obs::Json> decisions;
  {
    ScopedTraceContext scoped_trace(e->trace);
    obs::Span trial_span("service.trial");
    e->loop->StepTrial();
    decisions = e->loop->TakeDecisionEvents();
  }

  std::unique_ptr<Experiment> reaped;
  {
    MutexLock lock(mutex_);
    e->virtual_time += 1.0 / e->spec.weight;
    for (obs::Json& decision : decisions) {
      e->recent_decisions.push_back(std::move(decision));
      if (e->recent_decisions.size() > kMaxRecentDecisions) {
        e->recent_decisions.pop_front();
      }
    }
    SyncProgressLocked(e);
    if (e->abandoning) {
      // Lease lost mid-trial: reap the entry without finalizing (no
      // experiment_finished — the journal now belongs to the adopter).
      auto it = experiments_.find(e->spec.name);
      AUTOTUNE_CHECK(it != experiments_.end() && it->second.get() == e);
      reaped = std::move(it->second);
      experiments_.erase(it);
      e->in_flight = false;
      --in_flight_count_;
      UpdateGaugesLocked();
      cv_.notify_all();
      PumpLocked();
    } else {
      if (!IsTerminal(e->state)) {
        // Budget/deadline enforcement at the trial boundary.
        const char* kind = ExpiryKindLocked(*e, NowMs());
        if (kind != nullptr) BeginExpiryLocked(e, kind);
      }
      const bool terminal = IsTerminal(e->state) || e->loop_done;
      if (!terminal) {
        e->in_flight = false;
        --in_flight_count_;
        cv_.notify_all();
        PumpLocked();
        return;
      }
      // Keep the in-flight token: Finish() still needs exclusive ownership
      // (it may re-evaluate the incumbent for a degrade redeploy), and it
      // must not run under the manager mutex.
    }
  }
  if (reaped != nullptr) return;  // Journal destructs outside the lock.

  FinalizeWithToken(e);
}

const char* ExperimentManager::ExpiryKindLocked(const Experiment& e,
                                                int64_t now_ms) const {
  if (std::isfinite(e.spec.cost_budget) &&
      e.total_cost >= e.spec.cost_budget) {
    return "budget_exhausted";
  }
  if (e.deadline_at_ms != 0 && now_ms >= e.deadline_at_ms) {
    return "deadline_exceeded";
  }
  return nullptr;
}

void ExperimentManager::BeginExpiryLocked(Experiment* e, const char* kind) {
  e->state = ExperimentState::kExpired;
  e->message = kind;
  e->pending_expiry = kind;
  (void)e->cancel_token.Cancel(kind);  // First-wins; later causes lose.
  obs::MetricsRegistry::Global().Increment("service.experiments.expired");
}

void ExperimentManager::JournalPendingExpiry(Experiment* e) {
  const char* kind = e->pending_expiry;
  e->pending_expiry = nullptr;
  if (kind == nullptr || e->journal == nullptr) return;
  obs::Json::Object fields;
  fields["name"] = obs::Json(e->spec.name);
  fields["total_cost"] = obs::Json(e->loop->total_cost());
  if (std::isfinite(e->spec.cost_budget)) {
    fields["cost_budget"] = obs::Json(e->spec.cost_budget);
  }
  if (e->spec.deadline_ms > 0) {
    fields["deadline_ms"] = obs::Json(int64_t{e->spec.deadline_ms});
    fields["deadline_at_ms"] = obs::Json(int64_t{e->deadline_at_ms});
  }
  e->journal->Event(kind, std::move(fields));
}

void ExperimentManager::FinalizeWithToken(Experiment* e) {
  JournalPendingExpiry(e);
  TuningResult result = e->loop->Finish();

  MutexLock lock(mutex_);
  e->degraded = result.degraded;
  e->result = std::move(result);
  if (!IsTerminal(e->state)) {
    e->state = ExperimentState::kFinished;
  }
  if (e->degraded && e->message.empty()) {
    e->message = "degraded: " + e->result->status.ToString();
  }
  SyncProgressLocked(e);
  FinalizeTraceLocked(e);
  e->in_flight = false;
  --in_flight_count_;
  UpdateGaugesLocked();
  cv_.notify_all();
  PumpLocked();
}

double ExperimentManager::MinActiveVirtualTimeLocked() const {
  double min_vtime = std::numeric_limits<double>::infinity();
  for (const auto& [name, e] : experiments_) {
    if (e->state != ExperimentState::kRunning || e->loop == nullptr ||
        e->loop_done) {
      continue;
    }
    min_vtime = std::min(min_vtime, e->virtual_time);
  }
  return std::isfinite(min_vtime) ? min_vtime : 0.0;
}

void ExperimentManager::SyncProgressLocked(Experiment* e) {
  e->loop_done = e->loop->done();
  e->trials_run = e->loop->trials_run();
  e->replayed_trials = e->loop->replayed_trials();
  e->failed_trials = e->loop->failed_trials();
  e->faults = e->runner->total_retries() + e->runner->total_timeouts();
  e->total_cost = e->loop->total_cost();
  e->best_objective = e->loop->best_objective();
}

ExperimentStatus ExperimentManager::StatusOfLocked(
    const Experiment& e) const {
  ExperimentStatus status;
  status.name = e.spec.name;
  status.state = e.state;
  status.weight = e.spec.weight;
  status.virtual_time = e.virtual_time;
  status.in_flight = e.in_flight;
  status.resumed = e.resumed;
  status.trials_run = e.trials_run;
  status.replayed_trials = e.replayed_trials;
  status.failed_trials = e.failed_trials;
  status.faults = e.faults;
  status.total_cost = e.total_cost;
  status.best_objective = e.best_objective;
  status.degraded = e.degraded;
  status.warm_started = e.warm_started;
  status.warm_samples = e.warm_samples;
  status.cost_budget = e.spec.cost_budget;
  status.deadline_ms = e.spec.deadline_ms;
  status.deadline_at_ms = e.deadline_at_ms;
  status.message = e.message;
  return status;
}

void ExperimentManager::FinalizeTraceLocked(Experiment* e) {
  if (e->trace_finalized || e->trace.trace_id == 0) return;
  e->trace_finalized = true;
  // Synthesize the experiment-lifetime root span. Trial spans recorded its
  // span id as their parent while it was still "open", so the tree is
  // coherent even though this record is written last.
  obs::TraceBuffer::Record(obs::SpanRecord{
      "experiment", /*thread_id=*/0, e->trace_start_ns,
      obs::TraceBuffer::NowOnSpanClockNs() - e->trace_start_ns,
      /*depth=*/0, e->trace.trace_id, e->trace.span_id,
      /*parent_span_id=*/0});
}

void ExperimentManager::UpdateGaugesLocked() {
  int64_t active = 0;
  for (const auto& [name, e] : experiments_) {
    if (!IsTerminal(e->state)) ++active;
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.SetGauge("service.experiments.active",
                    static_cast<double>(active));
  registry.SetGauge("service.scheduler.in_flight_trials",
                    static_cast<double>(in_flight_count_));
  const ThreadPool::Stats stats = pool_->GetStats();
  registry.SetGauge("service.pool.queue_depth",
                    static_cast<double>(stats.queue_depth));
  registry.SetGauge("service.pool.running",
                    static_cast<double>(stats.running));
  registry.SetGauge("service.pool.tasks_submitted",
                    static_cast<double>(stats.tasks_submitted));
  registry.SetGauge("service.pool.tasks_completed",
                    static_cast<double>(stats.tasks_completed));
}

}  // namespace service
}  // namespace autotune
