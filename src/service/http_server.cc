#include "service/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>  // NOLINT(determinism): timeval for SO_RCVTIMEO, not a clock
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/log.h"

namespace autotune {
namespace service {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 409:
      return "Conflict";
    case 413:
      return "Payload Too Large";
    default:
      return "Error";
  }
}

/// JSON error response — even transport-level failures (408/413) answer in
/// JSON so clients never have to sniff the body.
HttpResponse ErrorResponse(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = "{\"error\": \"" + message + "\"}\n";
  return response;
}

void WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return;  // Client went away; nothing to do.
    sent += static_cast<size_t>(n);
  }
}

/// Percent-decodes one query component in place ('+' means space).
std::string DecodeComponent(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < text.size() &&
               std::isxdigit(static_cast<unsigned char>(text[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(text[i + 2]))) {
      const std::string hex = text.substr(i + 1, 2);
      out.push_back(
          static_cast<char>(std::strtol(hex.c_str(), nullptr, 16)));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::map<std::string, std::string> HttpRequest::QueryParams() const {
  std::map<std::string, std::string> params;
  size_t begin = 0;
  while (begin <= query.size()) {
    size_t end = query.find('&', begin);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(begin, end - begin);
    begin = end + 1;
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      params[DecodeComponent(pair)] = "";
    } else {
      params[DecodeComponent(pair.substr(0, eq))] =
          DecodeComponent(pair.substr(eq + 1));
    }
  }
  return params;
}

Result<std::unique_ptr<HttpServer>> HttpServer::Start(const Options& options,
                                                      Handler handler) {
  if (!handler) return Status::InvalidArgument("null handler");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address '" + options.host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable("cannot bind " + options.host + ":" +
                               std::to_string(options.port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::Unavailable("listen() failed");
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  int port = options.port;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port = ntohs(bound.sin_port);
  }
  return std::unique_ptr<HttpServer>(
      new HttpServer(fd, port, options, std::move(handler)));
}

HttpServer::HttpServer(int listen_fd, int port, Options options,
                       Handler handler)
    : listen_fd_(listen_fd),
      port_(port),
      options_(std::move(options)),
      handler_(std::move(handler)) {
  accept_thread_ = std::thread([this]() { AcceptLoop(); });
}

HttpServer::~HttpServer() {
  // shutdown() unblocks the accept(2) in the accept thread; close after
  // the join so the fd cannot be recycled while still in use.
  ::shutdown(listen_fd_, SHUT_RDWR);
  accept_thread_.join();
  ::close(listen_fd_);
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) return;  // Shut down (or unrecoverable).
    HandleConnection(client);
    ::close(client);
  }
}

void HttpServer::HandleConnection(int client) {
  // Per-connection read deadline: a client that connects and then stalls
  // must not wedge the (single) accept loop — recv() returns EAGAIN at the
  // deadline and the client is answered 408 and dropped.
  if (options_.read_deadline_ms > 0) {
    timeval tv;
    tv.tv_sec = options_.read_deadline_ms / 1000;
    tv.tv_usec = (options_.read_deadline_ms % 1000) * 1000;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  std::string request;
  char buf[4096];
  bool timed_out = false;
  bool oversized = false;
  const auto read_until =
      [&](const std::function<bool(const std::string&)>& complete) {
        while (true) {
          // Cap first: a request over the limit is rejected even when a
          // single recv() delivered it terminator and all.
          if (request.size() > options_.max_request_bytes) {
            oversized = true;
            return;
          }
          if (complete(request)) return;
          const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            timed_out = true;
            return;
          }
          if (n <= 0) return;  // Client closed (or hard error).
          request.append(buf, static_cast<size_t>(n));
        }
      };

  read_until([](const std::string& r) {
    return r.find("\r\n\r\n") != std::string::npos;
  });
  size_t head_end = request.find("\r\n\r\n");

  HttpRequest parsed;
  parsed.path = "/";
  const size_t line_end = request.find("\r\n");
  if (line_end != std::string::npos) {
    const std::string line = request.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos) {
      parsed.method = line.substr(0, sp1);
      parsed.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const size_t query = parsed.path.find('?');
      if (query != std::string::npos) {
        parsed.query = parsed.path.substr(query + 1);
        parsed.path = parsed.path.substr(0, query);
      }
    }
  }

  // Body (POST): bounded by Content-Length, the request cap, and the same
  // read deadline as the head.
  size_t content_length = 0;
  if (head_end != std::string::npos && line_end != std::string::npos) {
    std::string head = request.substr(0, head_end);
    for (char& c : head) c = static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));
    const size_t key = head.find("\r\ncontent-length:");
    if (key != std::string::npos) {
      content_length = static_cast<size_t>(std::strtoull(
          head.c_str() + key + sizeof("\r\ncontent-length:") - 1, nullptr,
          10));
    }
  }
  if (!timed_out && !oversized && content_length > 0 &&
      head_end != std::string::npos) {
    const size_t total = head_end + 4 + content_length;
    if (total > options_.max_request_bytes) {
      oversized = true;
    } else {
      read_until([total](const std::string& r) { return r.size() >= total; });
      if (!timed_out && !oversized && request.size() >= total) {
        parsed.body = request.substr(head_end + 4, content_length);
      } else if (!oversized) {
        timed_out = true;  // Short body: the client stalled or gave up.
      }
    }
  }

  HttpResponse response;
  if (oversized) {
    response = ErrorResponse(413, "request exceeds " +
                                      std::to_string(
                                          options_.max_request_bytes) +
                                      " bytes");
  } else if (timed_out) {
    response = ErrorResponse(408, "read deadline exceeded");
  } else if (parsed.method != "GET" && parsed.method != "POST" &&
             parsed.method != "DELETE") {
    response = ErrorResponse(405, "method not allowed");
  } else {
    response = handler_(parsed);
  }
  std::string out = "HTTP/1.0 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) +
         "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  WriteAll(client, out);
}

}  // namespace service
}  // namespace autotune
