#include "service/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace autotune {
namespace service {
namespace {

/// Closes `fd` on every exit path.
struct FdCloser {
  int fd;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

Status ConnectWithTimeout(int fd, const sockaddr_in& addr,
                          int64_t timeout_ms) {
  // Non-blocking connect + poll: a plain connect() against a dropped-packet
  // host blocks for the kernel's SYN retry budget (minutes), far past any
  // per-peer deadline.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return Status::Unavailable(std::string("connect: ") +
                               std::strerror(errno));
  }
  if (rc != 0) {
    pollfd pfd = {fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (rc == 0) return Status::Unavailable("connect timed out");
    if (rc < 0) {
      return Status::Unavailable(std::string("poll: ") +
                                 std::strerror(errno));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      return Status::Unavailable(std::string("connect: ") +
                                 std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // Back to blocking for send/recv.
  return Status::OK();
}

}  // namespace

Result<HttpClientResponse> HttpGet(const std::string& host, int port,
                                   const std::string& path,
                                   int64_t timeout_ms) {
  if (timeout_ms <= 0) timeout_ms = 1000;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  FdCloser closer{fd};

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host '" + host +
                                   "' (numeric IPv4 only)");
  }
  AUTOTUNE_RETURN_IF_ERROR(ConnectWithTimeout(fd, addr, timeout_ms));

  timeval tv = {};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    return Status::Unavailable(std::string("send: ") + std::strerror(errno));
  }

  std::string raw;
  char buffer[4096];
  ssize_t got = 0;
  while ((got = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    raw.append(buffer, static_cast<size_t>(got));
  }
  if (got < 0) {
    return (errno == EAGAIN || errno == EWOULDBLOCK)
               ? Status::Unavailable("read timed out")
               : Status::Unavailable(std::string("recv: ") +
                                     std::strerror(errno));
  }

  // "HTTP/1.0 200 OK\r\n<headers>\r\n\r\n<body>".
  if (raw.compare(0, 5, "HTTP/") != 0) {
    return Status::Internal("malformed response (no status line)");
  }
  const size_t space = raw.find(' ');
  if (space == std::string::npos) {
    return Status::Internal("malformed status line");
  }
  HttpClientResponse response;
  response.status_code = std::atoi(raw.c_str() + space + 1);
  const size_t blank = raw.find("\r\n\r\n");
  response.body = blank == std::string::npos ? "" : raw.substr(blank + 4);
  return response;
}

}  // namespace service
}  // namespace autotune
