#ifndef AUTOTUNE_SERVICE_HTTP_CLIENT_H_
#define AUTOTUNE_SERVICE_HTTP_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace autotune {
namespace service {

/// A parsed HTTP response from `HttpGet`.
struct HttpClientResponse {
  int status_code = 0;
  std::string body;
};

/// Blocking one-shot HTTP/1.0 GET (Connection: close semantics — read until
/// EOF, matching `HttpServer`). `timeout_ms` bounds EACH of connect and
/// socket reads, so a hung peer costs at most ~2x the timeout, not forever.
/// Errors (refused, timeout, malformed status line) come back as non-OK
/// status — the fleet fan-out turns them into "stale", never a crash.
///
/// Never call this against the server running on the CURRENT thread: the
/// HTTP server handles requests on its accept thread, so a handler fetching
/// its own port would deadlock. Fleet endpoints serve local data directly
/// and only fetch PEER shards.
[[nodiscard]] Result<HttpClientResponse> HttpGet(const std::string& host,
                                                 int port,
                                                 const std::string& path,
                                                 int64_t timeout_ms);

}  // namespace service
}  // namespace autotune

#endif  // AUTOTUNE_SERVICE_HTTP_CLIENT_H_
