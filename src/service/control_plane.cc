#include "service/control_plane.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "obs/journal.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace autotune {
namespace service {

namespace {

using obs::Json;

int64_t NowMs() { return obs::NowEpochMs(); }

/// Tenant names become file names and URL path segments, so they are
/// restricted to a filename-safe alphabet and must not start with a dot.
bool ValidName(const std::string& name) {
  if (name.empty() || name.size() > 128 || name.front() == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

/// One parsed `<name>.lease.json`.
struct Lease {
  std::string owner;
  int64_t fence = 0;
  int64_t ts_ms = 0;
};

Result<Lease> ReadLease(const std::string& path) {
  AUTOTUNE_ASSIGN_OR_RETURN(std::string text, obs::ReadJournalText(path));
  AUTOTUNE_ASSIGN_OR_RETURN(Json parsed, Json::Parse(text));
  if (!parsed.is_object()) {
    return Status::InvalidArgument("lease file '" + path +
                                   "' is not a JSON object");
  }
  Lease lease;
  lease.owner = parsed.GetString("owner", "");
  lease.fence = parsed.GetInt("fence", 0);
  lease.ts_ms = parsed.GetInt("ts_ms", 0);
  if (lease.owner.empty() || lease.fence <= 0) {
    return Status::InvalidArgument("lease file '" + path + "' is malformed");
  }
  return lease;
}

/// tmp + rename so readers (and adopters racing on other shards) never see
/// a half-written file. The tmp name carries the writer id: two shards
/// writing the same target never collide on the tmp path either.
Status WriteFileAtomic(const std::string& path, const std::string& writer_id,
                       const std::string& text) {
  const std::string tmp = path + ".tmp." + writer_id;
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::Unavailable("cannot open '" + tmp + "' for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != text.size() || !closed) {
    ::unlink(tmp.c_str());
    return Status::Unavailable("short write to '" + tmp + "'");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::Unavailable("cannot rename '" + tmp + "' into place");
  }
  return Status::OK();
}

Status WriteLease(const std::string& path, const std::string& writer_id,
                  const Lease& lease) {
  const Json body(Json::Object{{"owner", Json(lease.owner)},
                               {"fence", Json(lease.fence)},
                               {"ts_ms", Json(lease.ts_ms)}});
  return WriteFileAtomic(path, writer_id, body.Dump() + "\n");
}

/// Exclusive advisory lock on `<dir>/.leases.lock`, serializing lease
/// transitions (acquire / heartbeat / release) across every shard process
/// sharing the directory. Read-modify-write on a lease file is only
/// correct under this lock.
class DirLock {
 public:
  explicit DirLock(const std::string& dir) {
    const std::string path = dir + "/.leases.lock";
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
    if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~DirLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;
  bool ok() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

/// JSON body -> raw spec key/value map. Strings pass through; numbers and
/// bools are stringified so the map feeds the same spec parser as the CLI
/// `--experiment` string.
Result<std::map<std::string, std::string>> SpecMapFromJson(const Json& body) {
  if (!body.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  std::map<std::string, std::string> keys;
  for (const auto& [key, value] : body.AsObject()) {
    if (value.is_string()) {
      keys[key] = value.AsString();
    } else if (value.is_bool()) {
      keys[key] = value.AsBool() ? "1" : "0";
    } else if (value.is_number()) {
      keys[key] = value.Dump();
    } else {
      return Status::InvalidArgument(
          "spec key '" + key + "' must be a string, number, or boolean");
    }
  }
  return keys;
}

/// Tenant names in `dir` that have a durable spec file (sorted).
std::vector<std::string> ListSpecNames(const std::string& dir) {
  std::vector<std::string> names;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return names;
  const std::string suffix = ".spec.json";
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      names.push_back(name.substr(0, name.size() - suffix.size()));
    }
  }
  ::closedir(handle);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

Result<std::unique_ptr<ControlPlane>> ControlPlane::Start(
    ExperimentManager* manager, SpecFactory make_spec, Options options) {
  if (manager == nullptr) return Status::InvalidArgument("null manager");
  if (!make_spec) return Status::InvalidArgument("null spec factory");
  if (options.journal_dir.empty()) {
    return Status::InvalidArgument("journal_dir is required");
  }
  if (options.shard_id.empty() || !ValidName(options.shard_id)) {
    return Status::InvalidArgument(
        "shard_id is required (filename-safe characters only)");
  }
  if (options.lease_timeout_ms <= 0) {
    return Status::InvalidArgument("lease_timeout_ms must be > 0");
  }
  if (::mkdir(options.journal_dir.c_str(), 0755) != 0) {
    struct stat st;
    if (::stat(options.journal_dir.c_str(), &st) != 0 ||
        !S_ISDIR(st.st_mode)) {
      return Status::Unavailable("cannot create journal directory '" +
                                 options.journal_dir + "'");
    }
  }
  return std::unique_ptr<ControlPlane>(
      new ControlPlane(manager, std::move(make_spec), std::move(options)));
}

ControlPlane::ControlPlane(ExperimentManager* manager, SpecFactory make_spec,
                           Options options)
    : manager_(manager),
      make_spec_(std::move(make_spec)),
      options_(std::move(options)) {
  if (options_.start_tick_thread) {
    tick_thread_ = std::thread([this]() { TickLoop(); });
  }
}

ControlPlane::~ControlPlane() {
  bool announced = false;
  {
    MutexLock lock(mutex_);
    stopping_ = true;
    announced = announce_port_ > 0;
  }
  cv_.notify_all();
  if (tick_thread_.joinable()) tick_thread_.join();
  // Clean shutdown retires the endpoint row; a crash leaves it to go stale.
  if (announced) ::unlink(ShardPath().c_str());
}

std::string ControlPlane::SpecPath(const std::string& name) const {
  return options_.journal_dir + "/" + name + ".spec.json";
}

std::string ControlPlane::LeasePath(const std::string& name) const {
  return options_.journal_dir + "/" + name + ".lease.json";
}

std::string ControlPlane::ShardPath() const {
  return options_.journal_dir + "/" + options_.shard_id + ".shard.json";
}

void ControlPlane::AnnounceEndpoint(const std::string& host, int port) {
  {
    MutexLock lock(mutex_);
    announce_host_ = host;
    announce_port_ = port;
  }
  HeartbeatShardFile();
}

void ControlPlane::HeartbeatShardFile() {
  std::string host;
  int port = 0;
  {
    MutexLock lock(mutex_);
    host = announce_host_;
    port = announce_port_;
  }
  if (port <= 0) return;
  const Json body(Json::Object{{"shard_id", Json(options_.shard_id)},
                               {"host", Json(host)},
                               {"port", Json(int64_t{port})},
                               {"ts_ms", Json(NowMs())}});
  const Status wrote =
      WriteFileAtomic(ShardPath(), options_.shard_id, body.Dump() + "\n");
  if (!wrote.ok()) {
    AUTOTUNE_LOG(kWarning) << "control plane: cannot heartbeat shard file: "
                           << wrote.message();
  }
}

std::vector<ControlPlane::ShardInfo> ControlPlane::ListShards(
    const std::string& dir) {
  std::vector<ShardInfo> shards;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return shards;
  const std::string suffix = ".shard.json";
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string file = entry->d_name;
    if (file.size() <= suffix.size() ||
        file.compare(file.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const Result<std::string> text = obs::ReadJournalText(dir + "/" + file);
    if (!text.ok()) continue;
    const Result<Json> parsed = Json::Parse(*text);
    if (!parsed.ok() || !parsed->is_object()) continue;
    ShardInfo info;
    info.shard_id = parsed->GetString("shard_id", "");
    info.host = parsed->GetString("host", "");
    info.port = static_cast<int>(parsed->GetInt("port", 0));
    info.ts_ms = parsed->GetInt("ts_ms", 0);
    if (info.shard_id.empty() || info.host.empty() || info.port <= 0) {
      continue;
    }
    shards.push_back(std::move(info));
  }
  ::closedir(handle);
  std::sort(shards.begin(), shards.end(),
            [](const ShardInfo& a, const ShardInfo& b) {
              return a.shard_id < b.shard_id;
            });
  return shards;
}

Status ControlPlane::Admit(const std::string& body) {
  AUTOTUNE_ASSIGN_OR_RETURN(Json parsed, Json::Parse(body));
  AUTOTUNE_ASSIGN_OR_RETURN(auto keys, SpecMapFromJson(parsed));
  const auto name_it = keys.find("name");
  if (name_it == keys.end() || !ValidName(name_it->second)) {
    return Status::InvalidArgument(
        "spec needs a 'name' of filename-safe characters "
        "([A-Za-z0-9_.-], not starting with '.')");
  }
  const std::string name = name_it->second;
  {
    MutexLock lock(mutex_);
    if (stopping_) return Status::Unavailable("control plane shutting down");
    if (tenants_.count(name) > 0) {
      return Status::FailedPrecondition("experiment '" + name +
                                        "' is already admitted");
    }
    tenants_[name].health = std::make_shared<LeaseHealth>();
  }
  const Status admitted = AdmitTenant(name, keys, /*persist_spec=*/true);
  if (!admitted.ok()) {
    MutexLock lock(mutex_);
    tenants_.erase(name);
    return admitted;
  }
  obs::MetricsRegistry::Global().Increment("control_plane.admitted");
  return Status::OK();
}

Status ControlPlane::AdmitTenant(
    const std::string& name, const std::map<std::string, std::string>& keys,
    bool persist_spec) {
  std::shared_ptr<LeaseHealth> health;
  {
    MutexLock lock(mutex_);
    const auto it = tenants_.find(name);
    AUTOTUNE_CHECK_MSG(it != tenants_.end(),
                       "AdmitTenant without a registry placeholder");
    health = it->second.health;
  }

  // Build the spec before touching the lease: a malformed spec must be a
  // clean 400 with no on-disk side effects.
  AUTOTUNE_ASSIGN_OR_RETURN(ExperimentSpec spec, make_spec_(keys));
  if (spec.name != name) {
    return Status::InvalidArgument("spec factory renamed '" + name +
                                   "' to '" + spec.name + "'");
  }

  // Lease acquisition (read -> bump fence -> write) under the directory
  // flock, so two shards can never both conclude they own the tenant.
  const int64_t now = NowMs();
  {
    DirLock dir_lock(options_.journal_dir);
    if (!dir_lock.ok()) {
      return Status::Unavailable("cannot lock lease directory '" +
                                 options_.journal_dir + "'");
    }
    int64_t prev_fence = 0;
    const Result<Lease> current = ReadLease(LeasePath(name));
    if (current.ok()) {
      const bool live = now - current->ts_ms <= options_.lease_timeout_ms;
      if (live && current->owner != options_.shard_id) {
        return Status::FailedPrecondition(
            "experiment '" + name + "' is leased by shard '" +
            current->owner + "'");
      }
      prev_fence = current->fence;
    }
    Lease next;
    next.owner = options_.shard_id;
    next.fence = prev_fence + 1;
    next.ts_ms = now;
    AUTOTUNE_RETURN_IF_ERROR(
        WriteLease(LeasePath(name), options_.shard_id, next));
    health->fence.store(next.fence, std::memory_order_release);
    health->fenced.store(false, std::memory_order_release);
    health->confirmed_ms.store(now, std::memory_order_release);
  }

  if (persist_spec) {
    Json::Object encoded;
    for (const auto& [key, value] : keys) encoded[key] = Json(value);
    const Status wrote =
        WriteFileAtomic(SpecPath(name), options_.shard_id,
                        Json(std::move(encoded)).Pretty() + "\n");
    if (!wrote.ok()) {
      ReleaseLease(name, health->fence.load(std::memory_order_acquire));
      return wrote;
    }
  }

  // The control plane owns durability wiring: the tenant journals into the
  // shared directory and every append is fenced by this shard's lease
  // health. The gate reads two atomics and the clock shim — nothing that
  // can take a lock (see obs::Journal::SetWriteGate).
  spec.journal_path = options_.journal_dir + "/" + name + ".jsonl";
  const int64_t timeout_ms = options_.lease_timeout_ms;
  spec.journal_gate = [health, timeout_ms]() {
    return !health->fenced.load(std::memory_order_acquire) &&
           obs::NowEpochMs() -
                   health->confirmed_ms.load(std::memory_order_acquire) <=
               timeout_ms;
  };

  const Status added = manager_->AddExperiment(std::move(spec));
  if (!added.ok()) {
    if (persist_spec) ::unlink(SpecPath(name).c_str());
    ReleaseLease(name, health->fence.load(std::memory_order_acquire));
    return added;
  }
  return Status::OK();
}

void ControlPlane::ReleaseLease(const std::string& name, int64_t fence) {
  DirLock dir_lock(options_.journal_dir);
  if (!dir_lock.ok()) return;
  const Result<Lease> current = ReadLease(LeasePath(name));
  if (current.ok() && current->owner == options_.shard_id &&
      current->fence == fence) {
    ::unlink(LeasePath(name).c_str());
  }
}

Status ControlPlane::Evict(const std::string& name) {
  if (!ValidName(name)) {
    return Status::InvalidArgument("malformed experiment name '" + name +
                                   "'");
  }
  const Status cancelled = manager_->Cancel(name);
  if (cancelled.ok()) {
    // Ours (or at least hosted here): finalize, then retire the registry
    // entry so the name can be re-admitted later.
    ::unlink(SpecPath(name).c_str());
    int64_t fence = 0;
    {
      MutexLock lock(mutex_);
      const auto it = tenants_.find(name);
      if (it != tenants_.end()) {
        fence = it->second.health->fence.load(std::memory_order_acquire);
        tenants_.erase(it);
      }
    }
    if (fence > 0) ReleaseLease(name, fence);
    obs::MetricsRegistry::Global().Increment("control_plane.evicted");
    return Status::OK();
  }
  if (cancelled.code() == StatusCode::kNotFound) {
    // Not hosted on this shard. If the durable registry knows the tenant,
    // removing its spec file IS the eviction: the owning shard's next tick
    // sees the spec vanish and cancels locally.
    struct stat st;
    if (::stat(SpecPath(name).c_str(), &st) == 0) {
      ::unlink(SpecPath(name).c_str());
      obs::MetricsRegistry::Global().Increment("control_plane.evicted");
      return Status::OK();
    }
    return Status::NotFound("no experiment named '" + name + "'");
  }
  return cancelled;
}

Result<int> ControlPlane::RecoverAll() {
  int adopted = 0;
  for (const std::string& name : ListSpecNames(options_.journal_dir)) {
    {
      MutexLock lock(mutex_);
      if (stopping_) break;
      if (tenants_.count(name) > 0) continue;
    }
    if (manager_->StatusOf(name).ok()) continue;  // Hosted outside us.
    const Result<std::string> text = obs::ReadJournalText(SpecPath(name));
    if (!text.ok()) continue;  // Evicted between listing and reading.
    Result<Json> parsed = Json::Parse(*text);
    if (!parsed.ok()) {
      AUTOTUNE_LOG(kWarning) << "control plane: unparseable spec for '"
                             << name << "': " << parsed.status().message();
      continue;
    }
    Result<std::map<std::string, std::string>> keys =
        SpecMapFromJson(*parsed);
    if (!keys.ok() || ValidName(name) == false) {
      AUTOTUNE_LOG(kWarning) << "control plane: bad spec for '" << name
                             << "', skipping";
      continue;
    }
    {
      MutexLock lock(mutex_);
      tenants_[name].health = std::make_shared<LeaseHealth>();
    }
    const Status admitted = AdmitTenant(name, *keys, /*persist_spec=*/false);
    if (!admitted.ok()) {
      MutexLock lock(mutex_);
      tenants_.erase(name);
      // FailedPrecondition = another live shard owns it; that is the system
      // working, not a recovery failure.
      if (admitted.code() != StatusCode::kFailedPrecondition) {
        AUTOTUNE_LOG(kWarning) << "control plane: cannot recover '" << name
                               << "': " << admitted.message();
      }
      continue;
    }
    ++adopted;
    obs::MetricsRegistry::Global().Increment("control_plane.adopted");
  }
  return adopted;
}

ControlPlane::TickReport ControlPlane::TickOnce() {
  TickReport report;
  std::map<std::string, std::shared_ptr<LeaseHealth>> owned;
  {
    MutexLock lock(mutex_);
    for (const auto& [name, tenant] : tenants_) {
      owned[name] = tenant.health;
    }
  }

  for (const auto& [name, health] : owned) {
    // Spec file gone = evicted from another shard: finalize locally. The
    // journal (with its experiment_finished) outlives the tenant.
    struct stat st;
    if (::stat(SpecPath(name).c_str(), &st) != 0) {
      const Status cancelled = manager_->Cancel(name);
      if (!cancelled.ok() &&
          cancelled.code() != StatusCode::kNotFound) {
        AUTOTUNE_LOG(kWarning) << "control plane: evict-cancel of '" << name
                               << "' failed: " << cancelled.message();
      }
      {
        MutexLock lock(mutex_);
        tenants_.erase(name);
      }
      ReleaseLease(name, health->fence.load(std::memory_order_acquire));
      ++report.evicted;
      obs::MetricsRegistry::Global().Increment("control_plane.evicted");
      continue;
    }

    // Heartbeat. Reading back a different owner or fence means another
    // shard adopted the tenant while we were stalled: fence our journal
    // writes FIRST, then drop the tenant without finalizing — its state
    // belongs to the new owner now.
    bool deposed = false;
    {
      DirLock dir_lock(options_.journal_dir);
      if (!dir_lock.ok()) continue;  // Transient; retry next tick.
      const Result<Lease> current = ReadLease(LeasePath(name));
      if (!current.ok() || current->owner != options_.shard_id ||
          current->fence != health->fence.load(std::memory_order_acquire)) {
        deposed = true;
      } else {
        Lease next = *current;
        next.ts_ms = NowMs();
        if (WriteLease(LeasePath(name), options_.shard_id, next).ok()) {
          health->confirmed_ms.store(next.ts_ms,
                                     std::memory_order_release);
          ++report.heartbeats;
        }
      }
    }
    if (deposed) {
      health->fenced.store(true, std::memory_order_release);
      const Status abandoned = manager_->Abandon(name);
      if (!abandoned.ok() &&
          abandoned.code() != StatusCode::kNotFound) {
        AUTOTUNE_LOG(kWarning) << "control plane: abandon of deposed '"
                               << name << "' failed: "
                               << abandoned.message();
      }
      MutexLock lock(mutex_);
      tenants_.erase(name);
      ++report.deposed;
      obs::MetricsRegistry::Global().Increment("control_plane.deposed");
    }
  }

  // Orphan adoption: any registered tenant whose lease is missing or past
  // the timeout lost its shard — RecoverAll does exactly the right dance
  // (it skips live leases via the acquire-time check).
  const Result<int> adopted = RecoverAll();
  if (adopted.ok()) report.adopted = *adopted;

  HeartbeatShardFile();
  manager_->EnforceExpiry();
  return report;
}

std::vector<std::string> ControlPlane::OwnedTenants() const {
  std::vector<std::string> names;
  MutexLock lock(mutex_);
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;
}

void ControlPlane::TickLoop() {
  const int64_t interval_ms = options_.tick_interval_ms > 0
                                  ? options_.tick_interval_ms
                                  : std::max<int64_t>(
                                        1, options_.lease_timeout_ms / 3);
  for (;;) {
    {
      CondVarLock lock(mutex_);
      const bool stop = lock.WaitFor(
          cv_, std::chrono::milliseconds(interval_ms),
          [this]() REQUIRES(mutex_) { return stopping_; });
      if (stop) return;
    }
    TickOnce();
  }
}

}  // namespace service
}  // namespace autotune
