#ifndef AUTOTUNE_SPACE_PROJECTED_SPACE_H_
#define AUTOTUNE_SPACE_PROJECTED_SPACE_H_

#include <memory>

#include "common/rng.h"
#include "common/status.h"
#include "math/projection.h"
#include "space/config_space.h"

namespace autotune {

/// LlamaTune-style low-dimensional search-space adapter (tutorial slide 62).
/// Exposes a synthetic `low_space()` of `low_dim` float parameters in
/// [0, 1]; any optimizer can search that small space, and `Lift` maps each
/// low-dim configuration through a random linear embedding into the real
/// (high-dimensional) target space. Special-value biasing and bucketization
/// are inherited from the target space's `ParameterSpec`s, which apply
/// during the unit-cube decode.
class ProjectedSpace {
 public:
  /// Options for the adapter.
  struct Options {
    RandomProjection::Kind kind = RandomProjection::Kind::kHesbo;
    /// If > 0, quantizes each low dimension to this many buckets
    /// (LlamaTune's "knob values bucketization").
    size_t buckets = 0;
  };

  /// Creates an adapter searching `low_dim` dimensions of `target` (which
  /// must outlive the adapter). Fails if low_dim is 0 or exceeds the target
  /// dimension.
  [[nodiscard]] static Result<std::unique_ptr<ProjectedSpace>> Create(
      const ConfigSpace* target, size_t low_dim, const Options& options,
      Rng* rng);

  /// The synthetic low-dimensional space optimizers should search.
  const ConfigSpace& low_space() const { return *low_space_; }

  /// The real space configurations are deployed in.
  const ConfigSpace& target_space() const { return *target_; }

  /// Maps a configuration of `low_space()` to one of the target space.
  [[nodiscard]] Result<Configuration> Lift(const Configuration& low_config) const;

 private:
  ProjectedSpace(const ConfigSpace* target, RandomProjection projection,
                 size_t buckets);

  const ConfigSpace* target_;
  RandomProjection projection_;
  size_t buckets_;
  std::unique_ptr<ConfigSpace> low_space_;
};

}  // namespace autotune

#endif  // AUTOTUNE_SPACE_PROJECTED_SPACE_H_
