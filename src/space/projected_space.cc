#include "space/projected_space.h"

#include <cmath>
#include <string>
#include <utility>

#include "common/check.h"

namespace autotune {

ProjectedSpace::ProjectedSpace(const ConfigSpace* target,
                               RandomProjection projection, size_t buckets)
    : target_(target),
      projection_(std::move(projection)),
      buckets_(buckets),
      low_space_(std::make_unique<ConfigSpace>()) {}

Result<std::unique_ptr<ProjectedSpace>> ProjectedSpace::Create(
    const ConfigSpace* target, size_t low_dim, const Options& options,
    Rng* rng) {
  if (target == nullptr) return Status::InvalidArgument("null target space");
  if (low_dim == 0 || low_dim > target->size()) {
    return Status::InvalidArgument(
        "low_dim must be in [1, target dimension]");
  }
  AUTOTUNE_ASSIGN_OR_RETURN(
      RandomProjection projection,
      RandomProjection::Create(options.kind, low_dim, target->size(), rng));
  // Cannot use make_unique: the constructor is private.
  std::unique_ptr<ProjectedSpace> adapter(
      new ProjectedSpace(target, std::move(projection), options.buckets));
  for (size_t d = 0; d < low_dim; ++d) {
    AUTOTUNE_ASSIGN_OR_RETURN(
        ParameterSpec spec,
        ParameterSpec::Float("z" + std::to_string(d), 0.0, 1.0));
    AUTOTUNE_RETURN_IF_ERROR(adapter->low_space_->Add(std::move(spec)));
  }
  return adapter;
}

Result<Configuration> ProjectedSpace::Lift(
    const Configuration& low_config) const {
  if (&low_config.space() != low_space_.get()) {
    return Status::InvalidArgument(
        "configuration is not from this adapter's low space");
  }
  AUTOTUNE_ASSIGN_OR_RETURN(Vector low_u, low_space_->ToUnit(low_config));
  if (buckets_ > 1) {
    // Snap each coordinate to the center of its bucket.
    const double k = static_cast<double>(buckets_);
    for (double& u : low_u) {
      const double slot = std::min(std::floor(u * k), k - 1.0);
      u = (slot + 0.5) / k;
    }
  }
  return target_->FromUnit(projection_.Up(low_u));
}

}  // namespace autotune
