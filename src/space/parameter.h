#ifndef AUTOTUNE_SPACE_PARAMETER_H_
#define AUTOTUNE_SPACE_PARAMETER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace autotune {

/// The value of a single tunable parameter. The alternative types mirror the
/// parameter kinds a real system exposes: numeric knobs (buffer sizes,
/// timeouts), enumerations (`innodb_flush_method`), and switches.
using ParamValue = std::variant<double, int64_t, std::string, bool>;

/// Renders a `ParamValue` for logs and CSV storage.
std::string ParamValueToString(const ParamValue& value);

/// Equality with exact semantics per alternative (doubles compared exactly;
/// quantized spaces produce identical doubles for identical grid points).
bool ParamValueEquals(const ParamValue& a, const ParamValue& b);

/// Parameter kinds.
enum class ParameterType { kFloat, kInt, kCategorical, kBool };

/// Returns e.g. "float" for logging.
const char* ParameterTypeToString(ParameterType type);

/// Static description of one tunable parameter ("knob"): its domain plus the
/// search-space hints the tutorial catalogs (slides 28, 51, 60-62): log
/// scaling, quantization, special/sentinel values with biased probability
/// mass, sampling priors, and conditional activation on a parent knob
/// (e.g. PostgreSQL `jit_*` knobs are only active when `jit=on`).
class ParameterSpec {
 public:
  /// Factory for a continuous parameter on [min, max] (min < max).
  [[nodiscard]] static Result<ParameterSpec> Float(std::string name, double min, double max);

  /// Factory for an integer parameter on [min, max] inclusive (min <= max).
  [[nodiscard]] static Result<ParameterSpec> Int(std::string name, int64_t min, int64_t max);

  /// Factory for a categorical parameter (>= 1 distinct category).
  [[nodiscard]] static Result<ParameterSpec> Categorical(std::string name,
                                           std::vector<std::string> categories);

  /// Factory for a boolean switch.
  static ParameterSpec Bool(std::string name);

  // ----- Fluent modifiers (return *this; CHECK on misuse). ---------------

  /// Samples/maps on a log scale (numeric only; requires min > 0).
  ParameterSpec& WithLogScale();

  /// Quantizes a float to multiples of `step` from min (step > 0).
  ParameterSpec& WithQuantization(double step);

  /// Adds sentinel values (e.g. -1 = "disabled") that receive `prob_mass`
  /// of the unit interval collectively (0 < prob_mass < 1). LlamaTune's
  /// "special knob values handling". Numeric only.
  ParameterSpec& WithSpecialValues(std::vector<double> values,
                                   double prob_mass);

  /// Sets the system default value, used for baseline configs and for
  /// imputing inactive conditional parameters.
  ParameterSpec& WithDefault(ParamValue value);

  /// Biases sampling toward `mean` with spread `stddev` (numeric only;
  /// truncated-normal in unit space). Encodes DBA prior knowledge.
  ParameterSpec& WithPrior(double mean, double stddev);

  /// Makes this parameter conditional: active only when parameter `parent`
  /// (a categorical/bool declared earlier) takes one of `values`.
  ParameterSpec& WithCondition(std::string parent,
                               std::vector<std::string> values);

  // ----- Accessors. -------------------------------------------------------

  const std::string& name() const { return name_; }
  ParameterType type() const { return type_; }
  double min() const { return min_; }
  double max() const { return max_; }
  bool log_scale() const { return log_scale_; }
  double quantization() const { return quantization_; }
  const std::vector<std::string>& categories() const { return categories_; }
  const std::vector<double>& special_values() const { return special_values_; }
  double special_prob_mass() const { return special_prob_mass_; }
  const std::optional<std::pair<double, double>>& prior() const {
    return prior_;
  }
  const std::string& condition_parent() const { return condition_parent_; }
  const std::vector<std::string>& condition_values() const {
    return condition_values_;
  }
  bool is_conditional() const { return !condition_parent_.empty(); }

  /// Number of categories (categorical), 2 (bool), or 0 (numeric).
  size_t cardinality() const;

  /// The configured default, or a canonical one (mid-range / first category /
  /// false).
  ParamValue DefaultValue() const;

  // ----- Unit-interval mapping. -------------------------------------------

  /// Maps u in [0, 1] to a parameter value, honoring log scale,
  /// quantization, and special-value mass.
  ParamValue FromUnit(double u) const;

  /// Inverse of `FromUnit` (returns the canonical unit coordinate; special
  /// values map to their slot centers). Fails if `value` has the wrong
  /// alternative or is out of domain.
  [[nodiscard]] Result<double> ToUnit(const ParamValue& value) const;

  /// Checks that `value` has the right type and is within the domain.
  [[nodiscard]] Status Validate(const ParamValue& value) const;

  /// Parses a string produced by `ParamValueToString` into this parameter's
  /// value type.
  [[nodiscard]] Result<ParamValue> Parse(const std::string& text) const;

 private:
  explicit ParameterSpec(std::string name, ParameterType type);

  std::string name_;
  ParameterType type_;
  double min_ = 0.0;
  double max_ = 1.0;
  bool log_scale_ = false;
  double quantization_ = 0.0;
  std::vector<std::string> categories_;
  std::vector<double> special_values_;
  double special_prob_mass_ = 0.0;
  std::optional<ParamValue> default_value_;
  std::optional<std::pair<double, double>> prior_;
  std::string condition_parent_;
  std::vector<std::string> condition_values_;
};

}  // namespace autotune

#endif  // AUTOTUNE_SPACE_PARAMETER_H_
