#include "space/parameter.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "common/table.h"

namespace autotune {

std::string ParamValueToString(const ParamValue& value) {
  if (std::holds_alternative<double>(value)) {
    return FormatDouble(std::get<double>(value), 17);
  }
  if (std::holds_alternative<int64_t>(value)) {
    return std::to_string(std::get<int64_t>(value));
  }
  if (std::holds_alternative<std::string>(value)) {
    return std::get<std::string>(value);
  }
  return std::get<bool>(value) ? "true" : "false";
}

bool ParamValueEquals(const ParamValue& a, const ParamValue& b) {
  return a == b;
}

const char* ParameterTypeToString(ParameterType type) {
  switch (type) {
    case ParameterType::kFloat:
      return "float";
    case ParameterType::kInt:
      return "int";
    case ParameterType::kCategorical:
      return "categorical";
    case ParameterType::kBool:
      return "bool";
  }
  return "?";
}

ParameterSpec::ParameterSpec(std::string name, ParameterType type)
    : name_(std::move(name)), type_(type) {}

Result<ParameterSpec> ParameterSpec::Float(std::string name, double min,
                                           double max) {
  if (name.empty()) return Status::InvalidArgument("empty parameter name");
  if (!(min < max)) {
    return Status::InvalidArgument("Float '" + name + "': min must be < max");
  }
  ParameterSpec spec(std::move(name), ParameterType::kFloat);
  spec.min_ = min;
  spec.max_ = max;
  return spec;
}

Result<ParameterSpec> ParameterSpec::Int(std::string name, int64_t min,
                                         int64_t max) {
  if (name.empty()) return Status::InvalidArgument("empty parameter name");
  if (min > max) {
    return Status::InvalidArgument("Int '" + name + "': min must be <= max");
  }
  ParameterSpec spec(std::move(name), ParameterType::kInt);
  spec.min_ = static_cast<double>(min);
  spec.max_ = static_cast<double>(max);
  return spec;
}

Result<ParameterSpec> ParameterSpec::Categorical(
    std::string name, std::vector<std::string> categories) {
  if (name.empty()) return Status::InvalidArgument("empty parameter name");
  if (categories.empty()) {
    return Status::InvalidArgument("Categorical '" + name +
                                   "': needs >= 1 category");
  }
  std::set<std::string> unique(categories.begin(), categories.end());
  if (unique.size() != categories.size()) {
    return Status::InvalidArgument("Categorical '" + name +
                                   "': duplicate categories");
  }
  ParameterSpec spec(std::move(name), ParameterType::kCategorical);
  spec.categories_ = std::move(categories);
  return spec;
}

ParameterSpec ParameterSpec::Bool(std::string name) {
  AUTOTUNE_CHECK(!name.empty());
  return ParameterSpec(std::move(name), ParameterType::kBool);
}

ParameterSpec& ParameterSpec::WithLogScale() {
  AUTOTUNE_CHECK_MSG(
      type_ == ParameterType::kFloat || type_ == ParameterType::kInt,
      "log scale requires a numeric parameter");
  AUTOTUNE_CHECK_MSG(min_ > 0.0, "log scale requires min > 0");
  log_scale_ = true;
  return *this;
}

ParameterSpec& ParameterSpec::WithQuantization(double step) {
  AUTOTUNE_CHECK_MSG(type_ == ParameterType::kFloat,
                     "quantization applies to float parameters");
  AUTOTUNE_CHECK(step > 0.0);
  quantization_ = step;
  return *this;
}

ParameterSpec& ParameterSpec::WithSpecialValues(std::vector<double> values,
                                                double prob_mass) {
  AUTOTUNE_CHECK_MSG(
      type_ == ParameterType::kFloat || type_ == ParameterType::kInt,
      "special values require a numeric parameter");
  AUTOTUNE_CHECK(!values.empty());
  AUTOTUNE_CHECK(prob_mass > 0.0 && prob_mass < 1.0);
  special_values_ = std::move(values);
  special_prob_mass_ = prob_mass;
  return *this;
}

ParameterSpec& ParameterSpec::WithDefault(ParamValue value) {
  AUTOTUNE_CHECK_MSG(Validate(value).ok() ||
                         (type_ != ParameterType::kCategorical &&
                          !special_values_.empty()),
                     "default value invalid for parameter domain");
  default_value_ = std::move(value);
  return *this;
}

ParameterSpec& ParameterSpec::WithPrior(double mean, double stddev) {
  AUTOTUNE_CHECK_MSG(
      type_ == ParameterType::kFloat || type_ == ParameterType::kInt,
      "priors require a numeric parameter");
  AUTOTUNE_CHECK(stddev > 0.0);
  prior_ = std::make_pair(mean, stddev);
  return *this;
}

ParameterSpec& ParameterSpec::WithCondition(std::string parent,
                                            std::vector<std::string> values) {
  AUTOTUNE_CHECK(!parent.empty());
  AUTOTUNE_CHECK(!values.empty());
  condition_parent_ = std::move(parent);
  condition_values_ = std::move(values);
  return *this;
}

size_t ParameterSpec::cardinality() const {
  switch (type_) {
    case ParameterType::kCategorical:
      return categories_.size();
    case ParameterType::kBool:
      return 2;
    default:
      return 0;
  }
}

ParamValue ParameterSpec::DefaultValue() const {
  if (default_value_.has_value()) return *default_value_;
  switch (type_) {
    case ParameterType::kFloat:
      return FromUnit(0.5);
    case ParameterType::kInt:
      return FromUnit(0.5);
    case ParameterType::kCategorical:
      return categories_[0];
    case ParameterType::kBool:
      return false;
  }
  return false;
}

namespace {

double MapNumericUnit(double u, double min, double max, bool log_scale) {
  if (log_scale) {
    const double log_min = std::log(min);
    const double log_max = std::log(max);
    return std::exp(log_min + u * (log_max - log_min));
  }
  return min + u * (max - min);
}

double UnmapNumericUnit(double value, double min, double max,
                        bool log_scale) {
  if (log_scale) {
    const double log_min = std::log(min);
    const double log_max = std::log(max);
    return (std::log(value) - log_min) / (log_max - log_min);
  }
  return (value - min) / (max - min);
}

}  // namespace

ParamValue ParameterSpec::FromUnit(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  switch (type_) {
    case ParameterType::kFloat:
    case ParameterType::kInt: {
      // Special-value region occupies the leading prob mass, split evenly.
      if (!special_values_.empty() && u < special_prob_mass_) {
        const size_t count = special_values_.size();
        size_t slot = static_cast<size_t>(u / special_prob_mass_ *
                                          static_cast<double>(count));
        slot = std::min(slot, count - 1);
        const double sv = special_values_[slot];
        if (type_ == ParameterType::kInt) {
          return static_cast<int64_t>(std::llround(sv));
        }
        return sv;
      }
      double scaled = u;
      if (!special_values_.empty()) {
        scaled = (u - special_prob_mass_) / (1.0 - special_prob_mass_);
        scaled = std::clamp(scaled, 0.0, 1.0);
      }
      double value = MapNumericUnit(scaled, min_, max_, log_scale_);
      if (type_ == ParameterType::kInt) {
        value = std::clamp(std::round(value), min_, max_);
        return static_cast<int64_t>(std::llround(value));
      }
      if (quantization_ > 0.0) {
        value = min_ + std::round((value - min_) / quantization_) *
                           quantization_;
      }
      return std::clamp(value, min_, max_);
    }
    case ParameterType::kCategorical: {
      const size_t k = categories_.size();
      size_t idx = static_cast<size_t>(u * static_cast<double>(k));
      idx = std::min(idx, k - 1);
      return categories_[idx];
    }
    case ParameterType::kBool:
      return u >= 0.5;
  }
  return false;
}

Result<double> ParameterSpec::ToUnit(const ParamValue& value) const {
  AUTOTUNE_RETURN_IF_ERROR(Validate(value));
  switch (type_) {
    case ParameterType::kFloat:
    case ParameterType::kInt: {
      const double v = type_ == ParameterType::kFloat
                           ? std::get<double>(value)
                           : static_cast<double>(std::get<int64_t>(value));
      if (!special_values_.empty()) {
        for (size_t i = 0; i < special_values_.size(); ++i) {
          if (v == special_values_[i]) {
            // Center of the slot's sub-interval.
            return special_prob_mass_ * (static_cast<double>(i) + 0.5) /
                   static_cast<double>(special_values_.size());
          }
        }
      }
      double u = UnmapNumericUnit(v, min_, max_, log_scale_);
      u = std::clamp(u, 0.0, 1.0);
      if (!special_values_.empty()) {
        u = special_prob_mass_ + u * (1.0 - special_prob_mass_);
      }
      return u;
    }
    case ParameterType::kCategorical: {
      const std::string& cat = std::get<std::string>(value);
      for (size_t i = 0; i < categories_.size(); ++i) {
        if (categories_[i] == cat) {
          return (static_cast<double>(i) + 0.5) /
                 static_cast<double>(categories_.size());
        }
      }
      return Status::Internal("validated category missing");
    }
    case ParameterType::kBool:
      return std::get<bool>(value) ? 0.75 : 0.25;
  }
  return Status::Internal("unreachable");
}

Status ParameterSpec::Validate(const ParamValue& value) const {
  switch (type_) {
    case ParameterType::kFloat: {
      if (!std::holds_alternative<double>(value)) {
        return Status::InvalidArgument("'" + name_ + "' expects a double");
      }
      const double v = std::get<double>(value);
      for (double sv : special_values_) {
        if (v == sv) return Status::OK();
      }
      if (v < min_ || v > max_ || !std::isfinite(v)) {
        return Status::OutOfRange("'" + name_ + "' value " +
                                  FormatDouble(v) + " outside [" +
                                  FormatDouble(min_) + ", " +
                                  FormatDouble(max_) + "]");
      }
      return Status::OK();
    }
    case ParameterType::kInt: {
      if (!std::holds_alternative<int64_t>(value)) {
        return Status::InvalidArgument("'" + name_ + "' expects an int64");
      }
      const double v = static_cast<double>(std::get<int64_t>(value));
      for (double sv : special_values_) {
        if (v == sv) return Status::OK();
      }
      if (v < min_ || v > max_) {
        return Status::OutOfRange("'" + name_ + "' value " +
                                  FormatDouble(v) + " outside [" +
                                  FormatDouble(min_) + ", " +
                                  FormatDouble(max_) + "]");
      }
      return Status::OK();
    }
    case ParameterType::kCategorical: {
      if (!std::holds_alternative<std::string>(value)) {
        return Status::InvalidArgument("'" + name_ + "' expects a category");
      }
      const std::string& cat = std::get<std::string>(value);
      if (std::find(categories_.begin(), categories_.end(), cat) ==
          categories_.end()) {
        return Status::OutOfRange("'" + name_ + "': unknown category '" +
                                  cat + "'");
      }
      return Status::OK();
    }
    case ParameterType::kBool:
      if (!std::holds_alternative<bool>(value)) {
        return Status::InvalidArgument("'" + name_ + "' expects a bool");
      }
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Result<ParamValue> ParameterSpec::Parse(const std::string& text) const {
  switch (type_) {
    case ParameterType::kFloat: {
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("'" + name_ + "': cannot parse '" +
                                       text + "' as double");
      }
      ParamValue value = v;
      AUTOTUNE_RETURN_IF_ERROR(Validate(value));
      return value;
    }
    case ParameterType::kInt: {
      char* end = nullptr;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("'" + name_ + "': cannot parse '" +
                                       text + "' as int64");
      }
      ParamValue value = static_cast<int64_t>(v);
      AUTOTUNE_RETURN_IF_ERROR(Validate(value));
      return value;
    }
    case ParameterType::kCategorical: {
      ParamValue value = text;
      AUTOTUNE_RETURN_IF_ERROR(Validate(value));
      return value;
    }
    case ParameterType::kBool: {
      if (text == "true") return ParamValue(true);
      if (text == "false") return ParamValue(false);
      return Status::InvalidArgument("'" + name_ + "': cannot parse '" +
                                     text + "' as bool");
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace autotune
