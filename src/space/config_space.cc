#include "space/config_space.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace autotune {

// ----------------------------------------------------------- Configuration

Result<ParamValue> Configuration::Get(const std::string& name) const {
  AUTOTUNE_ASSIGN_OR_RETURN(size_t idx, space_->Index(name));
  return values_[idx];
}

double Configuration::GetDouble(const std::string& name) const {
  auto value = Get(name);
  AUTOTUNE_CHECK_MSG(value.ok(), name.c_str());
  AUTOTUNE_CHECK_MSG(std::holds_alternative<double>(*value), name.c_str());
  return std::get<double>(*value);
}

int64_t Configuration::GetInt(const std::string& name) const {
  auto value = Get(name);
  AUTOTUNE_CHECK_MSG(value.ok(), name.c_str());
  AUTOTUNE_CHECK_MSG(std::holds_alternative<int64_t>(*value), name.c_str());
  return std::get<int64_t>(*value);
}

const std::string& Configuration::GetCategory(const std::string& name) const {
  auto idx = space_->Index(name);
  AUTOTUNE_CHECK_MSG(idx.ok(), name.c_str());
  const ParamValue& value = values_[*idx];
  AUTOTUNE_CHECK_MSG(std::holds_alternative<std::string>(value),
                     name.c_str());
  return std::get<std::string>(value);
}

bool Configuration::GetBool(const std::string& name) const {
  auto value = Get(name);
  AUTOTUNE_CHECK_MSG(value.ok(), name.c_str());
  AUTOTUNE_CHECK_MSG(std::holds_alternative<bool>(*value), name.c_str());
  return std::get<bool>(*value);
}

double Configuration::GetNumeric(const std::string& name) const {
  auto value = Get(name);
  AUTOTUNE_CHECK_MSG(value.ok(), name.c_str());
  if (std::holds_alternative<double>(*value)) return std::get<double>(*value);
  AUTOTUNE_CHECK_MSG(std::holds_alternative<int64_t>(*value), name.c_str());
  return static_cast<double>(std::get<int64_t>(*value));
}

bool Configuration::IsActive(const std::string& name) const {
  auto idx = space_->Index(name);
  AUTOTUNE_CHECK_MSG(idx.ok(), name.c_str());
  return space_->IsActiveIndex(values_, *idx);
}

bool Configuration::IsActiveIndex(size_t index) const {
  return space_->IsActiveIndex(values_, index);
}

const ParamValue& Configuration::ValueAt(size_t index) const {
  AUTOTUNE_CHECK(index < values_.size());
  return values_[index];
}

std::string Configuration::ToString() const {
  std::string out;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += space_->param(i).name();
    out += "=";
    out += ParamValueToString(values_[i]);
    if (!IsActiveIndex(i)) out += " (inactive)";
  }
  return out;
}

bool Configuration::operator==(const Configuration& other) const {
  return space_ == other.space_ && values_ == other.values_;
}

// -------------------------------------------------------------- ConfigSpace

Status ConfigSpace::Add(ParameterSpec spec) {
  if (index_.count(spec.name()) > 0) {
    return Status::InvalidArgument("duplicate parameter '" + spec.name() +
                                   "'");
  }
  if (spec.is_conditional()) {
    auto parent_it = index_.find(spec.condition_parent());
    if (parent_it == index_.end()) {
      return Status::InvalidArgument(
          "conditional parameter '" + spec.name() + "': parent '" +
          spec.condition_parent() + "' must be declared first");
    }
    const ParameterSpec& parent = params_[parent_it->second];
    if (parent.type() != ParameterType::kCategorical &&
        parent.type() != ParameterType::kBool) {
      return Status::InvalidArgument(
          "conditional parameter '" + spec.name() +
          "': parent must be categorical or bool");
    }
  }
  index_[spec.name()] = params_.size();
  params_.push_back(std::move(spec));
  return Status::OK();
}

void ConfigSpace::AddOrDie(Result<ParameterSpec> spec) {
  AUTOTUNE_CHECK_MSG(spec.ok(), spec.status().ToString().c_str());
  AddOrDie(std::move(spec).value());
}

void ConfigSpace::AddOrDie(ParameterSpec spec) {
  Status status = Add(std::move(spec));
  AUTOTUNE_CHECK_MSG(status.ok(), status.ToString().c_str());
}

const ParameterSpec& ConfigSpace::param(size_t index) const {
  AUTOTUNE_CHECK(index < params_.size());
  return params_[index];
}

Result<size_t> ConfigSpace::Index(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no parameter named '" + name + "'");
  }
  return it->second;
}

bool ConfigSpace::Has(const std::string& name) const {
  return index_.count(name) > 0;
}

void ConfigSpace::AddConstraint(
    std::function<bool(const Configuration&)> predicate,
    std::string description) {
  AUTOTUNE_CHECK(predicate != nullptr);
  constraints_.push_back(std::move(predicate));
  constraint_descriptions_.push_back(std::move(description));
}

const std::string& ConfigSpace::constraint_description(size_t i) const {
  AUTOTUNE_CHECK(i < constraint_descriptions_.size());
  return constraint_descriptions_[i];
}

bool ConfigSpace::IsFeasible(const Configuration& config) const {
  for (const auto& constraint : constraints_) {
    if (!constraint(config)) return false;
  }
  return true;
}

Configuration ConfigSpace::Default() const {
  std::vector<ParamValue> values;
  values.reserve(params_.size());
  for (const auto& spec : params_) values.push_back(spec.DefaultValue());
  return Configuration(this, std::move(values));
}

Result<Configuration> ConfigSpace::Make(
    const std::vector<std::pair<std::string, ParamValue>>& values) const {
  std::vector<ParamValue> out;
  out.reserve(params_.size());
  for (const auto& spec : params_) out.push_back(spec.DefaultValue());
  for (const auto& [name, value] : values) {
    AUTOTUNE_ASSIGN_OR_RETURN(size_t idx, Index(name));
    AUTOTUNE_RETURN_IF_ERROR(params_[idx].Validate(value));
    out[idx] = value;
  }
  return Configuration(this, std::move(out));
}

Configuration ConfigSpace::FromUnit(const Vector& u) const {
  AUTOTUNE_CHECK(u.size() == params_.size());
  std::vector<ParamValue> values;
  values.reserve(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    values.push_back(params_[i].FromUnit(u[i]));
  }
  return Configuration(this, std::move(values));
}

Result<Vector> ConfigSpace::ToUnit(const Configuration& config) const {
  if (&config.space() != this) {
    return Status::InvalidArgument("configuration from a different space");
  }
  Vector u(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    AUTOTUNE_ASSIGN_OR_RETURN(u[i], params_[i].ToUnit(config.ValueAt(i)));
  }
  return u;
}

Configuration ConfigSpace::Sample(Rng* rng) const {
  AUTOTUNE_CHECK(rng != nullptr);
  Vector u(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    const auto& prior = params_[i].prior();
    if (prior.has_value() &&
        (params_[i].type() == ParameterType::kFloat ||
         params_[i].type() == ParameterType::kInt)) {
      // Truncated-normal sampling in value space, then canonical unit coord.
      const auto [mean, stddev] = *prior;
      double value = 0.0;
      bool accepted = false;
      for (int attempt = 0; attempt < 100; ++attempt) {
        value = rng->Normal(mean, stddev);
        if (value >= params_[i].min() && value <= params_[i].max()) {
          accepted = true;
          break;
        }
      }
      if (!accepted) {
        value = std::clamp(value, params_[i].min(), params_[i].max());
      }
      ParamValue pv = params_[i].type() == ParameterType::kInt
                          ? ParamValue(static_cast<int64_t>(
                                std::llround(value)))
                          : ParamValue(value);
      auto unit = params_[i].ToUnit(pv);
      u[i] = unit.ok() ? *unit : rng->Uniform();
    } else {
      u[i] = rng->Uniform();
    }
  }
  return FromUnit(u);
}

Result<Configuration> ConfigSpace::SampleFeasible(Rng* rng,
                                                  int max_tries) const {
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    Configuration config = Sample(rng);
    if (IsFeasible(config)) return config;
  }
  return Status::Unavailable("no feasible sample in " +
                             std::to_string(max_tries) + " tries");
}

std::vector<Configuration> ConfigSpace::Grid(size_t points_per_numeric,
                                             size_t max_points) const {
  AUTOTUNE_CHECK(points_per_numeric >= 1);
  // Levels per parameter, expressed as unit coordinates.
  std::vector<std::vector<double>> levels(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    const ParameterSpec& spec = params_[i];
    const size_t card = spec.cardinality();
    if (card > 0) {
      for (size_t c = 0; c < card; ++c) {
        levels[i].push_back((static_cast<double>(c) + 0.5) /
                            static_cast<double>(card));
      }
    } else if (points_per_numeric == 1) {
      levels[i].push_back(0.5);
    } else {
      for (size_t c = 0; c < points_per_numeric; ++c) {
        levels[i].push_back(static_cast<double>(c) /
                            static_cast<double>(points_per_numeric - 1));
      }
    }
  }
  std::vector<Configuration> out;
  std::vector<size_t> cursor(params_.size(), 0);
  for (;;) {
    Vector u(params_.size());
    for (size_t i = 0; i < params_.size(); ++i) {
      u[i] = levels[i][cursor[i]];
    }
    Configuration config = FromUnit(u);
    if (IsFeasible(config)) out.push_back(std::move(config));
    if (out.size() >= max_points) break;
    // Odometer increment.
    size_t i = 0;
    for (; i < params_.size(); ++i) {
      if (++cursor[i] < levels[i].size()) break;
      cursor[i] = 0;
    }
    if (i == params_.size()) break;
  }
  return out;
}

Configuration ConfigSpace::Neighbor(const Configuration& config, double scale,
                                    Rng* rng) const {
  AUTOTUNE_CHECK(rng != nullptr);
  AUTOTUNE_CHECK(&config.space() == this);
  auto unit = ToUnit(config);
  AUTOTUNE_CHECK(unit.ok());
  Vector u = *unit;
  const size_t target =
      static_cast<size_t>(rng->UniformInt(0, params_.size() - 1));
  const ParameterSpec& spec = params_[target];
  if (spec.cardinality() > 0) {
    u[target] = rng->Uniform();
  } else {
    u[target] = std::clamp(u[target] + rng->Normal(0.0, scale), 0.0, 1.0);
  }
  return FromUnit(u);
}

bool ConfigSpace::IsActiveIndex(const std::vector<ParamValue>& values,
                                size_t index) const {
  AUTOTUNE_CHECK(index < params_.size());
  const ParameterSpec& spec = params_[index];
  if (!spec.is_conditional()) return true;
  auto parent_it = index_.find(spec.condition_parent());
  AUTOTUNE_CHECK(parent_it != index_.end());
  const size_t parent_idx = parent_it->second;
  if (!IsActiveIndex(values, parent_idx)) return false;
  const std::string parent_value = ParamValueToString(values[parent_idx]);
  return std::find(spec.condition_values().begin(),
                   spec.condition_values().end(),
                   parent_value) != spec.condition_values().end();
}

}  // namespace autotune
