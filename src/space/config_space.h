#ifndef AUTOTUNE_SPACE_CONFIG_SPACE_H_
#define AUTOTUNE_SPACE_CONFIG_SPACE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "math/matrix.h"
#include "space/parameter.h"

namespace autotune {

class ConfigSpace;

/// A complete assignment of values to every parameter of a `ConfigSpace`.
/// Configurations are value types; they keep a pointer to their space (which
/// must outlive them, the usual arrangement for a tuning session).
class Configuration {
 public:
  /// Value of parameter `name`; NotFound for unknown names.
  [[nodiscard]] Result<ParamValue> Get(const std::string& name) const;

  /// Typed accessors. CHECK-fail on unknown name or wrong type — intended
  /// for simulator/benchmark code where the space is statically known.
  double GetDouble(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  const std::string& GetCategory(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// Reads a numeric parameter (float or int) as double.
  double GetNumeric(const std::string& name) const;

  /// Whether the parameter is active under this configuration's values
  /// (conditional parameters may be inactive; see
  /// `ParameterSpec::WithCondition`).
  bool IsActive(const std::string& name) const;
  bool IsActiveIndex(size_t index) const;

  /// Raw value by index (always present, even for inactive parameters).
  const ParamValue& ValueAt(size_t index) const;

  /// The owning space.
  const ConfigSpace& space() const { return *space_; }

  /// Renders "name=value, ..." for logs.
  std::string ToString() const;

  /// Structural equality (same space instance and equal values).
  bool operator==(const Configuration& other) const;

 private:
  friend class ConfigSpace;
  Configuration(const ConfigSpace* space, std::vector<ParamValue> values)
      : space_(space), values_(std::move(values)) {}

  const ConfigSpace* space_;
  std::vector<ParamValue> values_;
};

/// The search space: an ordered set of parameters plus feasibility
/// constraints. Provides the unit-cube view optimizers work in (tutorial
/// slide 28: "configuration space") and the sampling/grid/neighborhood
/// primitives classic search needs.
class ConfigSpace {
 public:
  ConfigSpace() = default;

  /// Spaces are referenced by Configurations; keep them stable.
  ConfigSpace(const ConfigSpace&) = delete;
  ConfigSpace& operator=(const ConfigSpace&) = delete;
  ConfigSpace(ConfigSpace&&) = delete;
  ConfigSpace& operator=(ConfigSpace&&) = delete;

  /// Adds a parameter. Fails on duplicate names or on conditional parameters
  /// whose parent is unknown, declared later, or not categorical/bool.
  [[nodiscard]] Status Add(ParameterSpec spec);

  /// Convenience: adds and CHECK-fails on error (for statically-known
  /// spaces in examples and tests).
  void AddOrDie(Result<ParameterSpec> spec);
  void AddOrDie(ParameterSpec spec);

  /// Number of parameters == dimensionality of the unit-cube view.
  size_t size() const { return params_.size(); }

  /// Parameter metadata.
  const ParameterSpec& param(size_t index) const;
  [[nodiscard]] Result<size_t> Index(const std::string& name) const;
  bool Has(const std::string& name) const;

  /// Registers a feasibility predicate with a human-readable description,
  /// e.g. "chunk_size <= pool_size / instances" (tutorial slide 60).
  void AddConstraint(std::function<bool(const Configuration&)> predicate,
                     std::string description);

  size_t num_constraints() const { return constraints_.size(); }
  const std::string& constraint_description(size_t i) const;

  /// True when all constraints pass.
  bool IsFeasible(const Configuration& config) const;

  /// The system-default configuration.
  Configuration Default() const;

  /// Builds a configuration from explicit values (unspecified parameters get
  /// defaults). Validates every value.
  [[nodiscard]] Result<Configuration> Make(
      const std::vector<std::pair<std::string, ParamValue>>& values) const;

  /// Maps a unit-cube point (one coordinate per parameter) to a
  /// configuration. `u.size()` must equal `size()` (CHECKed).
  Configuration FromUnit(const Vector& u) const;

  /// Inverse mapping to canonical unit coordinates.
  [[nodiscard]] Result<Vector> ToUnit(const Configuration& config) const;

  /// Uniform (or prior-weighted, for parameters with priors) sample.
  Configuration Sample(Rng* rng) const;

  /// Rejection-samples a feasible configuration; Unavailable if
  /// `max_tries` consecutive samples are infeasible.
  [[nodiscard]] Result<Configuration> SampleFeasible(Rng* rng, int max_tries = 1000) const;

  /// Full-factorial grid: `points_per_numeric` levels per numeric parameter
  /// and every category/bool level, capped at `max_points` configurations
  /// (excess dropped; infeasible points filtered out).
  std::vector<Configuration> Grid(size_t points_per_numeric,
                                  size_t max_points = 100000) const;

  /// A neighbor for local search: perturbs one random parameter's unit
  /// coordinate by N(0, scale) (categoricals resample uniformly).
  Configuration Neighbor(const Configuration& config, double scale,
                         Rng* rng) const;

  /// Whether parameter `index` is active given `values` (resolves the
  /// conditional-parameter chain).
  bool IsActiveIndex(const std::vector<ParamValue>& values,
                     size_t index) const;

 private:
  std::vector<ParameterSpec> params_;
  std::map<std::string, size_t> index_;
  std::vector<std::function<bool(const Configuration&)>> constraints_;
  std::vector<std::string> constraint_descriptions_;
};

}  // namespace autotune

#endif  // AUTOTUNE_SPACE_CONFIG_SPACE_H_
