#ifndef AUTOTUNE_SPACE_ENCODING_H_
#define AUTOTUNE_SPACE_ENCODING_H_

#include <cstddef>

#include "common/status.h"
#include "math/matrix.h"
#include "space/config_space.h"

namespace autotune {

/// Turns configurations into numeric feature vectors for surrogate models.
/// Two categorical treatments are supported (tutorial slide 51, "adapt
/// features to continuous space: impose order, one-hot"):
///   - kOrdinal: each parameter contributes its unit-cube coordinate (1 dim).
///   - kOneHot: categoricals/bools expand to one indicator dim per level.
/// Inactive conditional parameters are imputed with their default value's
/// coordinates so the feature vector has fixed dimension.
class SpaceEncoder {
 public:
  enum class CategoricalMode { kOrdinal, kOneHot };

  /// `space` must outlive the encoder. `impute_inactive` (the default)
  /// replaces inactive conditional parameters with their defaults so two
  /// configs that differ only in dead knobs encode identically — the
  /// simple treatment of tree-structured dependencies (slide 61); pass
  /// false to ablate it (dead-knob values leak into the features).
  SpaceEncoder(const ConfigSpace* space, CategoricalMode mode,
               bool impute_inactive = true);

  /// Dimension of encoded vectors.
  size_t encoded_dim() const { return encoded_dim_; }

  CategoricalMode mode() const { return mode_; }

  /// Encodes a configuration (must belong to the encoder's space).
  [[nodiscard]] Result<Vector> Encode(const Configuration& config) const;

 private:
  const ConfigSpace* space_;
  CategoricalMode mode_;
  bool impute_inactive_;
  size_t encoded_dim_;
};

}  // namespace autotune

#endif  // AUTOTUNE_SPACE_ENCODING_H_
