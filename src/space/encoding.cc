#include "space/encoding.h"

#include "common/check.h"

namespace autotune {

namespace {

size_t DimsForParam(const ParameterSpec& spec,
                    SpaceEncoder::CategoricalMode mode) {
  if (mode == SpaceEncoder::CategoricalMode::kOneHot &&
      spec.cardinality() > 0) {
    return spec.cardinality();
  }
  return 1;
}

}  // namespace

SpaceEncoder::SpaceEncoder(const ConfigSpace* space, CategoricalMode mode,
                           bool impute_inactive)
    : space_(space),
      mode_(mode),
      impute_inactive_(impute_inactive),
      encoded_dim_(0) {
  AUTOTUNE_CHECK(space != nullptr);
  for (size_t i = 0; i < space->size(); ++i) {
    encoded_dim_ += DimsForParam(space->param(i), mode);
  }
}

Result<Vector> SpaceEncoder::Encode(const Configuration& config) const {
  if (&config.space() != space_) {
    return Status::InvalidArgument("configuration from a different space");
  }
  Vector out;
  out.reserve(encoded_dim_);
  for (size_t i = 0; i < space_->size(); ++i) {
    const ParameterSpec& spec = space_->param(i);
    // Impute inactive conditional parameters with their default (unless
    // ablated), so dead knobs do not alias distinct feature vectors.
    const ParamValue value =
        (!impute_inactive_ || config.IsActiveIndex(i))
            ? config.ValueAt(i)
            : spec.DefaultValue();
    if (mode_ == CategoricalMode::kOneHot && spec.cardinality() > 0) {
      const size_t card = spec.cardinality();
      size_t active_level = 0;
      if (spec.type() == ParameterType::kBool) {
        active_level = std::get<bool>(value) ? 1 : 0;
      } else {
        const std::string& cat = std::get<std::string>(value);
        for (size_t c = 0; c < card; ++c) {
          if (spec.categories()[c] == cat) {
            active_level = c;
            break;
          }
        }
      }
      for (size_t c = 0; c < card; ++c) {
        out.push_back(c == active_level ? 1.0 : 0.0);
      }
    } else {
      AUTOTUNE_ASSIGN_OR_RETURN(double u, spec.ToUnit(value));
      out.push_back(u);
    }
  }
  return out;
}

}  // namespace autotune
